"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.hypergraph import read_hmetis, write_hmetis, load_circuit


@pytest.fixture
def netlist_file(tmp_path):
    path = tmp_path / "circ.hgr"
    write_hmetis(load_circuit("struct", scale=0.05, seed=0), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "x.hgr"])
        assert args.algorithm == "mlc"
        assert args.k == 2
        assert args.ratio == 0.5
        assert args.threshold == 35

    def test_generate_rejects_unknown_circuit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "nonsense"])


class TestInfo:
    def test_prints_characteristics(self, netlist_file, capsys):
        assert main(["info", netlist_file]) == 0
        out = capsys.readouterr().out
        assert "modules:" in out
        assert "98" in out  # struct at 0.05 scale

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent.hgr"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerate:
    def test_writes_hmetis(self, tmp_path, capsys):
        out = str(tmp_path / "balu.hgr")
        assert main(["generate", "balu", "--scale", "0.05",
                     "-o", out]) == 0
        hg = read_hmetis(out)
        assert hg.num_modules == 40

    def test_writes_json(self, tmp_path):
        out = str(tmp_path / "balu.json")
        assert main(["generate", "balu", "--scale", "0.05",
                     "-o", out]) == 0
        from repro.hypergraph import read_json
        assert read_json(out).num_modules == 40


class TestPartition:
    @pytest.mark.parametrize("algorithm",
                             ["mlc", "mlf", "fm", "clip", "spectral"])
    def test_algorithms_run(self, netlist_file, capsys, algorithm):
        assert main(["partition", netlist_file,
                     "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "min cut:" in out
        assert "feasible: True" in out

    def test_lsmc_with_descents(self, netlist_file, capsys):
        assert main(["partition", netlist_file, "--algorithm", "lsmc",
                     "--descents", "2"]) == 0
        assert "min cut:" in capsys.readouterr().out

    def test_multirun_reports_average(self, netlist_file, capsys):
        assert main(["partition", netlist_file, "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg cut:" in out
        assert "all cuts:" in out

    def test_quadrisection(self, netlist_file, capsys):
        assert main(["partition", netlist_file, "-k", "4",
                     "--algorithm", "mlf"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out

    def test_k4_with_flat_algorithm_fails(self, netlist_file, capsys):
        assert main(["partition", netlist_file, "-k", "4",
                     "--algorithm", "fm"]) == 2
        assert "requires a multilevel" in capsys.readouterr().err

    def test_assignment_output(self, netlist_file, tmp_path, capsys):
        out = tmp_path / "parts.txt"
        assert main(["partition", netlist_file,
                     "--output", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 98
        assert set(lines) <= {"0", "1"}

    def test_vcycles_option(self, netlist_file, capsys):
        assert main(["partition", netlist_file, "--vcycles", "1"]) == 0
        assert "min cut:" in capsys.readouterr().out

    def test_deterministic_across_invocations(self, netlist_file, capsys):
        main(["partition", netlist_file, "--seed", "9"])
        first = capsys.readouterr().out
        main(["partition", netlist_file, "--seed", "9"])
        second = capsys.readouterr().out
        # CPU line differs; cut lines must match
        assert [l for l in first.splitlines() if "cut" in l] == \
            [l for l in second.splitlines() if "cut" in l]


class TestBench:
    def test_table_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "42"])

    def test_regenerates_table1(self, capsys):
        assert main(["bench", "1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "struct" in out

    def test_regenerates_table3(self, capsys):
        assert main(["bench", "3", "--scale", "0.05", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "AVG CLIP" in out
