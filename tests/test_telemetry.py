"""Unit tests for the request-scoped telemetry primitives.

Everything in-process: the thread-local trace context, histogram
quantiles and the exposition lint, the sampling/memory profilers, the
service-trace regrouper, and the ops-console renderer.  The end-to-end
daemon behaviour (IDs across real sockets and forked workers) lives in
``test_service_telemetry.py``.
"""

import json
import math
import threading
import time

import pytest

from repro.obs import (read_jsonl_objects, render_status, set_tracer,
                       summarize_service_trace, trace_context,
                       trace_scope)
from repro.obs.metrics import (Histogram, MetricsRegistry,
                               SERVICE_BUCKETS, lint_prometheus)
from repro.obs.profile import (SamplingProfiler, enable_memory_profiling,
                               memory_peak, memory_profiling_enabled)
from repro.obs.trace import BufferTracer


class TestTraceContext:
    def test_empty_by_default(self):
        assert trace_context() == {}

    def test_scope_merges_and_restores(self):
        with trace_scope(trace_id="t1"):
            assert trace_context() == {"trace_id": "t1"}
            with trace_scope(exec_id="e1"):
                assert trace_context() == {"trace_id": "t1",
                                           "exec_id": "e1"}
            assert trace_context() == {"trace_id": "t1"}
        assert trace_context() == {}

    def test_none_values_dropped(self):
        with trace_scope(trace_id=None, exec_id="e1"):
            assert trace_context() == {"exec_id": "e1"}

    def test_context_stamped_into_span_args(self):
        tracer = BufferTracer()
        previous = set_tracer(tracer)
        try:
            with trace_scope(trace_id="t-9"):
                t0 = tracer.begin()
                tracer.end("phase", t0, {"cut": 3})
                tracer.instant("tick")
            t0 = tracer.begin()
            tracer.end("outside", t0, {"cut": 4})
        finally:
            set_tracer(previous)
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["phase"]["args"]["trace_id"] == "t-9"
        assert by_name["phase"]["args"]["cut"] == 3
        assert by_name["tick"]["args"]["trace_id"] == "t-9"
        assert "trace_id" not in by_name["outside"]["args"]

    def test_explicit_args_override_context(self):
        tracer = BufferTracer()
        previous = set_tracer(tracer)
        try:
            with trace_scope(trace_id="ambient"):
                t0 = tracer.begin()
                tracer.end("phase", t0, {"trace_id": "explicit"})
        finally:
            set_tracer(previous)
        assert tracer.events[0]["args"]["trace_id"] == "explicit"

    def test_thread_local_isolation(self):
        seen = {}

        def worker():
            seen["worker"] = trace_context()

        with trace_scope(trace_id="main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["worker"] == {}


class TestHistogramQuantile:
    def test_empty_is_nan(self):
        h = Histogram()
        assert math.isnan(h.quantile(0.5))

    def test_interpolates_within_bucket(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # rank 2 of 4 lands in the (1, 2] bucket holding 2 samples.
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_overflow_clamps_to_last_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_summary_keys(self):
        h = Histogram(buckets=SERVICE_BUCKETS)
        h.observe(0.002)
        summary = h.summary()
        assert set(summary) == {"count", "sum", "p50", "p90", "p99"}
        assert summary["count"] == 1

    def test_registry_summaries(self):
        registry = MetricsRegistry()
        registry.histogram("lat", "x", endpoint="a").observe(0.01)
        registry.histogram("lat", "x", endpoint="b").observe(0.02)
        rows = registry.histogram_summaries("lat")
        assert [r["labels"]["endpoint"] for r in rows] == ["a", "b"]
        assert registry.histogram_summaries("missing") == []
        registry.counter("c", "x").inc()
        assert registry.histogram_summaries("c") == []


class TestPrometheusLint:
    def _real_exposition(self) -> str:
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests.",
                         code="200").inc(3)
        registry.gauge("repro_depth", "Queue depth.").set(2)
        hist = registry.histogram("repro_lat_seconds", "Latency.",
                                  buckets=SERVICE_BUCKETS,
                                  endpoint="partition")
        for v in (0.0002, 0.004, 2.0):
            hist.observe(v)
        return registry.render_prometheus()

    def test_real_output_is_clean(self):
        assert lint_prometheus(self._real_exposition()) == []

    def test_label_escaping_is_clean_and_roundtrips(self):
        registry = MetricsRegistry()
        hostile = 'a"b\\c\nd'
        registry.counter("repro_evil_total", 'help with "quotes"\nand',
                         circuit=hostile).inc()
        text = registry.render_prometheus()
        assert lint_prometheus(text) == []
        assert '\\"' in text and "\\n" in text

    def test_detects_duplicate_type(self):
        text = ("# TYPE x counter\n# TYPE x counter\nx 1\n")
        assert any("duplicate # TYPE" in p for p in lint_prometheus(text))

    def test_detects_metadata_after_samples(self):
        text = "x 1\n# TYPE x counter\n"
        assert any("after samples" in p for p in lint_prometheus(text))

    def test_detects_non_monotone_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 4\n"
                "h_count 5\n")
        assert any("not monotone" in p for p in lint_prometheus(text))

    def test_detects_missing_inf_and_count_mismatch(self):
        missing_inf = ("# TYPE h histogram\n"
                       'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n')
        assert any("+Inf" in p for p in lint_prometheus(missing_inf))
        mismatch = ("# TYPE h histogram\n"
                    'h_bucket{le="+Inf"} 4\nh_sum 1\nh_count 5\n')
        assert any("!= +Inf" in p for p in lint_prometheus(mismatch))

    def test_detects_non_contiguous_family(self):
        text = ("# TYPE a counter\n# TYPE b counter\n"
                "a 1\nb 1\na 2\n")
        assert any("not contiguous" in p for p in lint_prometheus(text))

    def test_detects_unparseable_sample(self):
        assert any("unparseable" in p
                   for p in lint_prometheus("not a sample!!\n"))

    def test_missing_trailing_newline(self):
        assert any("newline" in p for p in lint_prometheus("x 1"))


class TestSamplingProfiler:
    def test_collects_samples_and_renders_collapsed(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.start()
        try:
            deadline = time.monotonic() + 1.0
            while profiler.samples < 3 and time.monotonic() < deadline:
                sum(i * i for i in range(2000))
        finally:
            profiler.stop()
        assert profiler.samples >= 1
        collapsed = profiler.collapsed()
        line = collapsed.splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack
        stats = profiler.stats()
        assert stats["running"] is False
        assert stats["unique_stacks"] >= 1

    def test_write(self, tmp_path):
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.sample_once()
        out = tmp_path / "p" / "profile.collapsed"
        profiler.write(out)
        assert out.exists()

    def test_idempotent_start_stop(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.start()
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert profiler.running is False


class TestMemoryPeak:
    def test_noop_when_disabled(self):
        assert memory_profiling_enabled() is False
        with memory_peak() as peak:
            [0] * 10_000
        assert peak.peak_bytes is None

    def test_captures_peak_when_enabled(self):
        enable_memory_profiling(True)
        try:
            with memory_peak() as peak:
                blob = [0] * 50_000
                del blob
        finally:
            enable_memory_profiling(False)
        assert peak.peak_bytes is not None
        assert peak.peak_bytes > 50_000 * 4


def _span(name, ts, dur, **args):
    return {"ph": "X", "name": name, "ts": ts, "dur": dur, "pid": 1,
            "tid": 1, "args": args}


class TestServiceTraceSummary:
    def _write(self, tmp_path, events):
        path = tmp_path / "svc.trace.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_regroups_requests_by_execution(self, tmp_path):
        events = [
            _span("fm.pass", 10, 5, trace_id="t1"),
            _span("service.execute", 5, 100, exec_id="r1",
                  trace_id="t1", batch=1),
            _span("service.request", 0, 120, request_id="q1",
                  trace_id="t1", method="POST", endpoint="partition",
                  status=200, exec_id="r1"),
            _span("service.request", 50, 10, request_id="q2",
                  trace_id="t2", method="POST", endpoint="partition",
                  status=200, exec_id="r1", cached=True),
            _span("service.request", 200, 1, request_id="q3",
                  trace_id="t3", method="GET", endpoint="metrics",
                  status=200),
        ]
        summary = summarize_service_trace(self._write(tmp_path, events))
        assert summary.is_service_trace
        assert len(summary.requests) == 3
        tree = summary.executions["r1"]
        assert [r.request_id for r in tree.requests] == ["q1", "q2"]
        assert tree.phases["fm.pass"].count == 1
        rendered = summary.render()
        assert "execution r1" in rendered
        assert "served 2 request(s)" in rendered
        assert "[cached]" in rendered
        assert "q3" in rendered

    def test_non_service_trace_is_empty(self, tmp_path):
        events = [_span("ml.coarsen", 0, 10)]
        summary = summarize_service_trace(self._write(tmp_path, events))
        assert not summary.is_service_trace


class TestConsoleRender:
    def _status(self):
        return {
            "status": "ok", "uptime_seconds": 125.0,
            "counters": {"requests": 10, "coalesced": 2,
                         "degraded_served": 0, "errors": 1},
            "result_cache": {"hits": 8, "misses": 2},
            "lane": {"queued": 1, "max_queued": 32, "busy": True,
                     "shed": 0, "expired": 0},
            "breaker": {"open_keys": 0, "trips": 0},
            "connections": 3, "jobs_live": 0,
            "latency": {"latency": [
                {"labels": {"endpoint": "partition"}, "count": 10,
                 "sum": 0.5, "p50": 0.0008, "p90": 0.002, "p99": 0.03}],
                "queue_wait": [], "execution": []},
            "in_flight": [
                {"id": "r1", "state": "executing", "age_seconds": 1.2,
                 "deadline_in_seconds": 28.8, "trace_id": "t-abc"}],
            "profiler": {"enabled": True, "samples": 42,
                         "unique_stacks": 7},
        }

    def test_renders_all_sections_plain(self):
        frame = render_status(self._status(), server="host:1", color=False)
        assert "repro top — host:1" in frame
        assert "cache hit: 80.0%" in frame
        assert "partition" in frame and "800µs" in frame
        assert "r1" in frame and "t-abc" in frame
        assert "42 samples" in frame
        assert "\x1b[" not in frame

    def test_color_mode_emits_ansi(self):
        frame = render_status(self._status(), color=True)
        assert "\x1b[1m" in frame

    def test_tolerates_missing_sections(self):
        frame = render_status({"status": "ok"}, color=False)
        assert "(no samples yet)" in frame
        assert "(idle)" in frame


class TestTolerantJsonlReader:
    def test_skips_truncated_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n'
                        'not json\n'
                        '[1, 2]\n'
                        '{"b": 2}\n'
                        '{"trunc')
        rows = list(read_jsonl_objects(path))
        assert rows == [{"a": 1}, {"b": 2}]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_jsonl_objects(tmp_path / "absent.jsonl")) == []
