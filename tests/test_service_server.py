"""End-to-end daemon tests: real sockets, real signals.

The in-process tests run a :class:`PartitionServer` on a background
thread (its own event loop, port 0) and talk to it with the stdlib
:class:`ServiceClient` — the same path ``repro client``, the service
benchmark, and the CI smoke step use.  The shutdown test goes further
and runs ``repro serve`` as a subprocess, SIGTERMs it mid-life, and
asserts a clean exit with an untruncated ledger.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.hypergraph import write_json
from repro.service import (PartitionServer, ServiceClient, ServiceEngine,
                           ServiceError, inline_netlist)

pytestmark = pytest.mark.service

_SRC = str(Path(repro.__file__).resolve().parents[1])


class _ServerThread:
    """A live daemon on a background thread, port picked by the OS."""

    def __init__(self, server_kw=None, **engine_kw):
        engine_kw.setdefault("jobs", 1)
        server_kw = dict(server_kw or {})
        server_kw.setdefault("host", "127.0.0.1")
        server_kw.setdefault("port", 0)
        server_kw.setdefault("drain_seconds", 10.0)
        self.server = PartitionServer(ServiceEngine(**engine_kw),
                                      **server_kw)
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever(install_signals=False)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(10), "server did not come up"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(15)
        assert not self._thread.is_alive(), "server did not drain"

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kw) -> ServiceClient:
        kw.setdefault("timeout", 60.0)
        return ServiceClient("127.0.0.1", self.port, **kw)


def _body(tiny_hg, **overrides) -> dict:
    body = {"netlist": {"inline": inline_netlist(tiny_hg)},
            "algorithm": "fm", "runs": 2, "seed": 5}
    body.update(overrides)
    return body


class TestEndpoints:
    def test_health_version_metrics(self):
        with _ServerThread() as srv, srv.client() as client:
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["lane"]["draining"] is False
            version = client.version()
            assert version["name"] == "repro"
            assert version["version"] == repro.__version__
            # git_sha matches the CLI's probe (both may be None
            # outside a checkout, but they must agree).
            from repro.obs import git_sha
            assert version["git_sha"] == git_sha()
            text = client.metrics()
            assert "repro_service_requests_total" in text
            assert "repro_service_cache_entries" in text

    def test_partition_roundtrip_and_cache_hit(self, tiny_hg):
        with _ServerThread() as srv, srv.client() as client:
            first = client.partition(_body(tiny_hg))
            assert first["cached"] is False
            assert first["min_cut"] == min(first["cuts"])
            assert len(first["cuts"]) == 2
            second = client.partition(_body(tiny_hg))
            assert second["cached"] is True
            assert second["fingerprint"] == first["fingerprint"]
            assert client.metric_value(
                "repro_service_cache_hits_total") == 1.0
            assert client.metric_value(
                "repro_service_executed_portfolios_total") == 1.0

    def test_served_fingerprint_matches_cli_run(self, tiny_hg, tmp_path,
                                                monkeypatch):
        netlist = tmp_path / "tiny.json"
        write_json(tiny_hg, str(netlist))
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        with _ServerThread() as srv, srv.client() as client:
            served = client.partition(_body(tiny_hg))
        # Same (netlist, config, seed) through the CLI entry point.
        assert main(["partition", str(netlist), "--algorithm", "fm",
                     "--runs", "2", "--seed", "5"]) == 0
        entries = [json.loads(line)
                   for line in ledger.read_text().splitlines()]
        assert len(entries) == 2  # one served, one CLI
        assert entries[0]["fingerprint"] == served["fingerprint"]
        assert entries[1]["fingerprint"] == served["fingerprint"]
        assert entries[0]["cuts"] == entries[1]["cuts"] == served["cuts"]

    def test_served_fingerprint_matches_cli_run_numpy_mode(
            self, tmp_path, monkeypatch):
        # `repro serve --kernels numpy` pins the mode in the engine;
        # the same netlist/config/seed through `repro partition
        # --kernels numpy` must land on the same fingerprint — the
        # served answer is the standalone answer, per mode.  A
        # 300-module circuit so the numpy batch engine actually
        # engages (>=128-module gate) instead of degenerating to the
        # scalar path.
        from repro.hypergraph import hierarchical_circuit
        from repro.kernels import kernel_mode, set_kernel_mode
        hg = hierarchical_circuit(300, 360, seed=2024, name="hier300")
        netlist = tmp_path / "hier300.json"
        write_json(hg, str(netlist))
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        prior = kernel_mode()
        try:
            with _ServerThread(kernels="numpy") as srv, \
                    srv.client() as client:
                served = client.partition(_body(hg))
            assert main(["partition", str(netlist), "--algorithm", "fm",
                         "--runs", "2", "--seed", "5",
                         "--kernels", "numpy"]) == 0
        finally:
            set_kernel_mode(prior)
        entries = [json.loads(line)
                   for line in ledger.read_text().splitlines()]
        assert len(entries) == 2  # one served, one CLI
        assert all(e["kernel_mode"] == "numpy" for e in entries)
        assert entries[0]["fingerprint"] == served["fingerprint"]
        assert entries[1]["fingerprint"] == served["fingerprint"]
        assert entries[0]["cuts"] == entries[1]["cuts"] == served["cuts"]

    def test_sweep_batches_and_reports_job(self, tiny_hg):
        with _ServerThread() as srv, srv.client() as client:
            job_id = client.sweep(
                [_body(tiny_hg, seed=s, runs=1) for s in range(4)])
            done = client.wait_job(job_id, timeout=60)
            assert done["state"] == "done"
            assert done["done"] == done["total"] == 4
            results = done["result"]["results"]
            assert len({r["fingerprint"] for r in results}) == 4
            # All four distinct-seed requests were merged into one (or
            # at worst two — the first may start before the rest
            # queue) executor invocations.
            executed = client.metric_value(
                "repro_service_executed_portfolios_total")
            assert executed <= 2
            assert client.metric_value(
                "repro_service_executed_starts_total") == 4.0

    def test_trace_download(self, tiny_hg, tmp_path):
        from repro.obs import read_trace
        with _ServerThread() as srv, srv.client() as client:
            payload = client.partition(_body(tiny_hg, trace=True))
            assert payload["trace"].startswith("/trace/")
            raw = client.trace(payload["id"])
        copy = tmp_path / "downloaded.trace.jsonl"
        copy.write_bytes(raw)
        events = list(read_trace(str(copy)))
        assert events, "trace stream is empty"
        assert any(e.get("ph") == "X" for e in events)

    def test_record_download(self, tiny_hg, tmp_path):
        from repro.obs import read_record, replay_recording
        with _ServerThread() as srv, srv.client() as client:
            payload = client.partition(_body(tiny_hg, record=True))
            assert payload["record"] == f"/record/{payload['id']}"
            raw = client.record(payload["id"])
            with pytest.raises(ServiceError) as exc:
                client.record("r999999-deadbeef")
            assert exc.value.status == 404
        copy = tmp_path / "downloaded.record.jsonl"
        copy.write_bytes(raw)
        events = list(read_record(str(copy)))
        assert {e["t"] for e in events} >= {"start", "mv", "result"}
        # The downloaded stream is a full flight recording: it replays
        # clean against the same netlist, final partitions included.
        report = replay_recording(str(copy), tiny_hg)
        assert report.ok, report.render()
        assert report.results_verified == 2

    def test_error_paths(self, tiny_hg):
        with _ServerThread() as srv, srv.client() as client:
            with pytest.raises(ServiceError) as exc:
                client.partition({"algorithm": "fm"})  # no netlist
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                client._json("GET", "/no-such-endpoint")
            assert exc.value.status == 404
            with pytest.raises(ServiceError) as exc:
                client._json("GET", "/partition")  # wrong method
            assert exc.value.status == 405
            with pytest.raises(ServiceError) as exc:
                client.job("j999999-deadbeef")
            assert exc.value.status == 404
            with pytest.raises(ServiceError) as exc:
                client.trace("r999999-deadbeef")
            assert exc.value.status == 404
            # The connection survives all of the above.
            assert client.healthz()["status"] == "ok"


class TestGracefulShutdown:
    def _spawn(self, tmp_path: Path, ledger: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        env["REPRO_LEDGER"] = str(ledger)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--drain-seconds", "20"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            cwd=str(tmp_path), env=env, text=True)
        line = proc.stdout.readline()
        assert "listening on" in line, f"no readiness line: {line!r}"
        port = int(line.rstrip().rsplit(":", 1)[1])
        return proc, port

    def test_sigterm_drains_and_leaves_no_truncated_ledger(
            self, tiny_hg, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        proc, port = self._spawn(tmp_path, ledger)
        try:
            with ServiceClient("127.0.0.1", port, timeout=60) as client:
                # A couple of real runs so the ledger has content.
                for seed in (1, 2):
                    payload = client.partition(_body(tiny_hg, seed=seed))
                    assert payload["cached"] is False
                proc.send_signal(signal.SIGTERM)
                # Once draining, new work is refused with 503 (the
                # socket may also just be closed, which is fine too).
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    try:
                        client.partition(_body(tiny_hg, seed=99))
                    except ServiceError as exc:
                        assert exc.status == 503
                        break
                    except OSError:
                        break
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, proc.stderr.read()
        lines = ledger.read_text().splitlines()
        assert len(lines) >= 2
        for line in lines:  # every line parses -> nothing truncated
            entry = json.loads(line)
            assert entry["fingerprint"]

    def test_sigterm_waits_for_inflight_portfolio(self, tmp_path):
        # Submit a slow request, SIGTERM while it executes, and expect
        # the response to still arrive and its ledger line to be
        # complete: drain waits for the in-flight portfolio.
        ledger = tmp_path / "ledger.jsonl"
        proc, port = self._spawn(tmp_path, ledger)
        result: dict = {}

        def slow_request():
            with ServiceClient("127.0.0.1", port, timeout=120) as client:
                result["payload"] = client.partition({
                    "netlist": {"generate": {"name": "primary1",
                                             "scale": 0.3, "seed": 1}},
                    "algorithm": "mlc", "runs": 4, "seed": 3})

        try:
            worker = threading.Thread(target=slow_request)
            worker.start()
            time.sleep(0.4)  # let the request reach the lane
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=120)
            assert not worker.is_alive()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, proc.stderr.read()
        assert result["payload"]["min_cut"] >= 0
        lines = ledger.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["fingerprint"] == \
            result["payload"]["fingerprint"]


class TestPoolWorkerSignals:
    """Regression: seed wedge under ``repro serve --jobs 2``.

    The daemon's event loop installs SIGTERM/SIGINT handlers and a
    signal wakeup fd; ``fork``-started pool workers inherited both, so
    ``Pool.terminate()``'s SIGTERM at portfolio teardown was swallowed
    and the *second* multi-start request wedged the service forever.
    ``_pool_worker_init`` restores default signal dispositions in
    every worker — this test drives a live daemon through the exact
    sequence that used to hang.
    """

    @pytest.mark.parallel
    def test_second_pooled_request_completes(self, tiny_hg, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        env["REPRO_LEDGER"] = "off"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--jobs", "2", "--drain-seconds", "10"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            cwd=str(tmp_path), env=env, text=True)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, f"no readiness line: {line!r}"
            port = int(line.rstrip().rsplit(":", 1)[1])
            # retries=0: if the wedge regresses, fail on the client
            # timeout instead of hanging through the retry budget.
            with ServiceClient("127.0.0.1", port, timeout=90,
                               retries=0) as client:
                # Distinct seeds so both requests execute a pooled
                # portfolio (no cache hit); the second is the one that
                # used to hang on the wedged pool teardown.
                for seed in (11, 12):
                    payload = client.partition(
                        _body(tiny_hg, seed=seed, runs=4))
                    assert payload["cached"] is False
                    assert len(payload["cuts"]) == 4
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, proc.stderr.read()
