"""Property-based tests (hypothesis) on the core invariants.

These cover the load-bearing correctness properties:

* incremental :class:`PartitionState` bookkeeping equals recomputation
  under arbitrary move sequences;
* bucket structures always surface a maximum-gain item;
* the multilevel cut invariant: Induce + Project preserve the cut;
* Match always emits a valid <=2-module-per-cluster clustering whose
  matched fraction respects the ratio;
* FM/CLIP report exact cuts and respect balance on arbitrary inputs;
* hMETIS round-trips arbitrary hypergraphs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.clustering import Clustering, induce, match, project
from repro.fm import FMConfig, fm_bipartition, make_buckets
from repro.hypergraph import (Hypergraph, assert_same_structure,
                              check_consistency, read_hmetis, write_hmetis)
from repro.partition import (BalanceConstraint, Partition, PartitionState,
                             cut, random_partition, soed)
from repro.partition.rebalance import rebalance_random


@st.composite
def hypergraphs(draw, max_modules=12, max_nets=14, weighted=False):
    """Random small hypergraphs, optionally with weights and areas."""
    n = draw(st.integers(min_value=2, max_value=max_modules))
    num_nets = draw(st.integers(min_value=1, max_value=max_nets))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(4, n)))
        pins = draw(st.lists(st.integers(0, n - 1), min_size=size,
                             max_size=size, unique=True))
        if len(pins) < 2:
            pins = [0, 1]
        nets.append(pins)
    areas = None
    net_weights = None
    if weighted:
        areas = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
        net_weights = draw(st.lists(st.integers(1, 4), min_size=num_nets,
                                    max_size=num_nets))
    return Hypergraph(nets, num_modules=n, areas=areas,
                      net_weights=net_weights)


@st.composite
def hypergraph_with_moves(draw, k=2):
    hg = draw(hypergraphs(weighted=True))
    n = hg.num_modules
    assignment = draw(st.lists(st.integers(0, k - 1), min_size=n,
                               max_size=n))
    moves = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, k - 1)),
        max_size=30))
    return hg, Partition(assignment, k), moves


class TestStateProperties:
    @settings(max_examples=60, deadline=None)
    @given(hypergraph_with_moves(k=2))
    def test_incremental_matches_recompute_k2(self, case):
        hg, partition, moves = case
        state = PartitionState(hg, partition)
        for v, dst in moves:
            state.move(v, dst)
        state.verify()
        p = state.to_partition()
        assert state.cut_weight == cut(hg, p)
        assert state.soed_weight == soed(hg, p)

    @settings(max_examples=40, deadline=None)
    @given(hypergraph_with_moves(k=4))
    def test_incremental_matches_recompute_k4(self, case):
        hg, partition, moves = case
        state = PartitionState(hg, partition)
        for v, dst in moves:
            state.move(v, dst)
        state.verify()

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(2, 4))
    def test_soed_bounds(self, hg, k):
        p = random_partition(hg, k=k, seed=0)
        c, s = cut(hg, p), soed(hg, p)
        assert 2 * c <= s <= k * c


class TestBucketProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2),
                              st.integers(0, 19),
                              st.integers(-6, 6)),
                    max_size=80),
           st.sampled_from(["lifo", "fifo", "random"]))
    def test_max_always_correct(self, ops, policy):
        buckets = make_buckets(20, 6, policy, rng=random.Random(0))
        model = {}
        for op, item, gain in ops:
            if op == 0 and item not in model:
                buckets.insert(item, gain)
                model[item] = gain
            elif op == 1 and item in model:
                buckets.update(item, gain)
                model[item] = gain
            elif op == 2 and item in model:
                buckets.remove(item)
                del model[item]
            assert len(buckets) == len(model)
            if model:
                top = next(iter(buckets.iter_desc()))
                assert model[top] == max(model.values())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=15,
                    unique_by=lambda x: x))
    def test_iter_desc_sorted(self, gains):
        buckets = make_buckets(len(gains), 5, "lifo")
        for item, gain in enumerate(gains):
            buckets.insert(item, gain)
        seen = [gains[i] for i in buckets.iter_desc()]
        assert seen == sorted(gains, reverse=True)


class TestClusteringProperties:
    @settings(max_examples=60, deadline=None)
    @given(hypergraphs(weighted=True), st.floats(0.1, 1.0),
           st.integers(0, 10_000))
    def test_match_invariants(self, hg, ratio, seed):
        clustering = match(hg, ratio=ratio, seed=seed)
        assert clustering.num_modules == hg.num_modules
        assert clustering.max_cluster_size() <= 2
        # matched fraction stays within the ratio stopping rule: at most
        # R*n + 2 modules live in pairs (the final pair may overshoot).
        pair_modules = sum(len(g) for g in clustering.groups()
                           if len(g) == 2)
        assert pair_modules <= ratio * hg.num_modules + 2

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(0, 10_000))
    def test_induce_preserves_area_and_pins_bound(self, hg, seed):
        clustering = match(hg, ratio=1.0, seed=seed)
        coarse = induce(hg, clustering)
        check_consistency(coarse)
        assert coarse.total_area == hg.total_area
        assert coarse.total_net_weight <= hg.total_net_weight

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(0, 10_000),
           st.integers(0, 10_000))
    def test_cut_invariant(self, hg, match_seed, part_seed):
        clustering = match(hg, ratio=1.0, seed=match_seed)
        coarse = induce(hg, clustering)
        coarse_solution = random_partition(coarse, seed=part_seed)
        fine = project(coarse_solution, clustering)
        assert cut(coarse, coarse_solution) == cut(hg, fine)
        assert soed(coarse, coarse_solution) == soed(hg, fine)

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(), st.integers(0, 10_000))
    def test_project_identity_clustering(self, hg, seed):
        identity = Clustering(list(range(hg.num_modules)))
        p = random_partition(hg, seed=seed)
        assert project(p, identity).assignment == p.assignment


class TestEngineProperties:
    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(0, 10_000),
           st.booleans())
    def test_fm_reports_exact_cut_and_balance(self, hg, seed, clip):
        config = FMConfig(clip=clip)
        result = fm_bipartition(hg, config=config, seed=seed)
        assert result.cut == cut(hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(hg))

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(), st.integers(0, 10_000))
    def test_fm_never_worsens_feasible_initial(self, hg, seed):
        initial = random_partition(hg, seed=seed)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        initial = rebalance_random(hg, initial, constraint, seed=seed)
        before = cut(hg, initial)
        result = fm_bipartition(hg, initial=initial, seed=seed)
        assert result.cut <= before

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(2, 4),
           st.integers(0, 10_000))
    def test_rebalance_reaches_feasibility(self, hg, k, seed):
        constraint = BalanceConstraint.from_tolerance(hg, 0.1, k=k)
        skewed = Partition([0] * hg.num_modules, k=k)
        try:
            result = rebalance_random(hg, skewed, constraint, seed=seed)
        except Exception:
            return  # genuinely unsatisfiable area profile
        assert constraint.is_feasible(result.part_areas(hg))


class TestKWayProperties:
    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(max_modules=10), st.integers(2, 4),
           st.integers(0, 10_000))
    def test_kway_valid_on_arbitrary_inputs(self, hg, k, seed):
        from repro.fm import kway_partition
        if hg.num_modules < k:
            return
        result = kway_partition(hg, k=k, seed=seed)
        assert result.cut == cut(hg, result.partition)
        assert result.soed == soed(hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1, k=k)
        assert constraint.is_feasible(result.partition.part_areas(hg))


class TestMetricsProperties:
    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(0, 10_000))
    def test_absorption_bounds(self, hg, seed):
        from repro.partition import absorption
        p = random_partition(hg, seed=seed)
        value = absorption(hg, p)
        assert -1e-9 <= value <= hg.total_net_weight + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(0, 10_000))
    def test_absorption_max_iff_uncut(self, hg, seed):
        from repro.partition import absorption
        p = random_partition(hg, seed=seed)
        full = absorption(hg, Partition([0] * hg.num_modules, 2))
        assert full == hg.total_net_weight
        if cut(hg, p) == 0:
            assert absorption(hg, p) == full

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True), st.integers(0, 10_000))
    def test_scaled_cost_zero_iff_uncut(self, hg, seed):
        from repro.partition import scaled_cost
        p = random_partition(hg, seed=seed)
        sizes = p.part_sizes()
        if 0 in sizes:
            return
        value = scaled_cost(hg, p)
        assert value >= 0
        assert (value == 0) == (cut(hg, p) == 0)


class TestMultilevelProperties:
    @settings(max_examples=20, deadline=None)
    @given(hypergraphs(max_modules=12, max_nets=16), st.integers(0, 10_000))
    def test_ml_valid_on_arbitrary_inputs(self, hg, seed):
        from repro.core import ml_bipartition
        result = ml_bipartition(hg, seed=seed)
        assert result.cut == cut(hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(hg))

    @settings(max_examples=15, deadline=None)
    @given(hypergraphs(max_modules=12, max_nets=16), st.integers(0, 10_000))
    def test_vcycle_never_worse_than_its_first_cut(self, hg, seed):
        from repro.core import ml_vcycle
        result = ml_vcycle(hg, cycles=1, seed=seed)
        assert result.cut <= result.cycle_cuts[0]
        assert result.cut == cut(hg, result.partition)


class TestIOProperties:
    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(weighted=True))
    def test_hmetis_roundtrip(self, hg):
        import tempfile
        from pathlib import Path
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "h.hgr"
            write_hmetis(hg, path)
            assert_same_structure(hg, read_hmetis(path))
