"""Service-layer tests: protocol, caches, coalescing, batching.

Everything here carries the ``service`` marker and stays in-process
(no sockets — the HTTP layer has its own file).  The tests run the
engine's asyncio pipeline via ``asyncio.run`` so the suite needs no
async plugin.
"""

import asyncio

import pytest

from repro.hypergraph import Hypergraph, write_json
from repro.runtime import (Portfolio, execute, fingerprint_digest,
                           FINGERPRINT_DIGEST_LENGTH)
from repro.service import (Coalescer, LRUCache, NetlistSpec,
                           PartitionRequest, ProtocolError, ServiceEngine,
                           inline_netlist, netlist_digest)
from repro.solvers import build_algorithm

pytestmark = pytest.mark.service


def _request(**overrides) -> PartitionRequest:
    body = {
        "netlist": {"generate": {"name": "primary1", "scale": 0.05,
                                 "seed": 1}},
        "algorithm": "fm",
        "runs": 2,
        "seed": 7,
    }
    body.update(overrides)
    return PartitionRequest.from_json(body)


class TestFingerprintDigest:
    def test_golden_pin(self):
        # The ledger's key convention, frozen: changing the digest
        # function silently orphans every existing ledger entry and
        # cached result.  This literal must never change.
        fp = "fm|tiny|runs=2\n0:11:ok:3:1\n1:22:ok:4:1"
        assert fingerprint_digest(fp) == "f2f4aea915d33ebf"
        assert len(fingerprint_digest(fp)) == FINGERPRINT_DIGEST_LENGTH

    def test_ledger_uses_shared_helper(self, tiny_hg):
        from repro.obs.ledger import build_entry
        portfolio = Portfolio(
            algorithm=build_algorithm("fm"), hg=tiny_hg, runs=2, seed=3)
        result = execute(portfolio)
        entry = build_entry(result, portfolio, jobs=1)
        assert entry["fingerprint"] == fingerprint_digest(
            result.fingerprint())
        assert entry["fingerprint"] == result.fingerprint_digest()


class TestProtocol:
    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            _request(frobnicate=1)

    def test_missing_netlist_rejected(self):
        with pytest.raises(ProtocolError, match="netlist"):
            PartitionRequest.from_json({"algorithm": "fm"})

    def test_bool_does_not_pass_as_int(self):
        with pytest.raises(ProtocolError, match="must be int"):
            _request(runs=True)

    @pytest.mark.parametrize("overrides", [
        {"algorithm": "nope"},
        {"k": 1},
        {"runs": 0},
        {"runs": 10_001},
        {"ratio": 0.0},
        {"ratio": 1.5},
        {"tolerance": 1.0},
        {"mode": "warp"},
        {"mode": "ml-reuse", "algorithm": "fm"},
        {"mode": "ml-reuse", "algorithm": "mlc", "k": 4},
        {"netlist": {"inline": {"nets": [[0, 1]]}}},  # no num_modules
        {"netlist": {}},
        {"netlist": {"inline": {"nets": [], "num_modules": 1},
                     "path": "x.hgr"}},
    ])
    def test_invalid_requests_rejected(self, overrides):
        with pytest.raises(ProtocolError):
            _request(**overrides)

    def test_request_key_is_stable_and_seed_sensitive(self):
        assert _request().request_key() == _request().request_key()
        assert _request().request_key() != \
            _request(seed=8).request_key()
        assert _request().request_key() != \
            _request(runs=3).request_key()
        assert _request().request_key() != \
            _request(algorithm="clip").request_key()

    def test_request_key_ignores_scheduling_knobs(self):
        # The determinism contract: worker count and tracing never
        # change outcomes, so they must never split cache entries.
        assert _request().request_key() == \
            _request(trace=True).request_key()
        assert _request().request_key() == \
            _request(include_assignment=True).request_key()

    def test_batch_key_groups_across_seeds_only(self):
        assert _request(seed=1).batch_key() == _request(seed=2).batch_key()
        assert _request(seed=1, runs=9).batch_key() == \
            _request(seed=2).batch_key()
        assert _request().batch_key() != \
            _request(algorithm="clip").batch_key()

    def test_netlist_digest_is_submission_independent(self, tiny_hg):
        spec = NetlistSpec.from_json({"inline": inline_netlist(tiny_hg)})
        assert netlist_digest(spec.load()) == netlist_digest(tiny_hg)

    def test_path_spec_keys_on_content(self, tiny_hg, tmp_path):
        path = tmp_path / "tiny.json"
        write_json(tiny_hg, str(path))
        first = NetlistSpec.from_json({"path": str(path)})
        hg = first.load()
        assert hg.num_modules == tiny_hg.num_modules
        # Same bytes -> same key; changed bytes -> different key, so a
        # file rewritten on disk can never be served from a stale
        # cache entry.
        assert NetlistSpec.from_json({"path": str(path)}).key == first.key
        altered = Hypergraph(
            nets=[list(tiny_hg.pins(e)) for e in tiny_hg.all_nets()],
            num_modules=tiny_hg.num_modules, areas=[2.0] * 6, name="tiny")
        write_json(altered, str(path))
        assert NetlistSpec.from_json({"path": str(path)}).key != first.key

    def test_unreadable_path_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="not readable"):
            NetlistSpec.from_json({"path": "/does/not/exist.hgr"})


class TestLRUCache:
    def test_eviction_order_and_stats(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)           # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["misses"] == 1

    def test_eviction_never_serves_wrong_key(self):
        # Regression guard for the cache-correctness acceptance
        # criterion: after arbitrary churn, every hit carries the value
        # stored under exactly that key.
        cache = LRUCache(max_entries=4)
        for i in range(100):
            cache.put(f"k{i}", f"v{i}")
            for j in range(max(0, i - 6), i + 1):
                hit = cache.get(f"k{j}")
                assert hit is None or hit == f"v{j}"

    def test_get_or_build_builds_once(self):
        cache = LRUCache(max_entries=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or 42)
        assert value == 42 and len(calls) == 1


class TestEngineServing:
    def _engine(self, **kw) -> ServiceEngine:
        kw.setdefault("jobs", 1)
        return ServiceEngine(**kw)

    def _serve_all(self, engine, requests):
        async def main():
            engine.start()
            try:
                return await asyncio.gather(
                    *(engine.serve(r) for r in requests))
            finally:
                await engine.drain(10)
        return asyncio.run(main())

    def test_repeat_request_is_a_cache_hit(self):
        engine = self._engine()

        async def main():
            engine.start()
            try:
                first = await engine.serve(_request())
                second = await engine.serve(_request())
            finally:
                await engine.drain(10)
            return first, second

        first, second = asyncio.run(main())
        assert first["cached"] is False and second["cached"] is True
        assert first["fingerprint"] == second["fingerprint"]
        assert first["cuts"] == second["cuts"]
        assert engine.counters()["executed_portfolios"] == 1
        assert engine.counters()["cache_hits"] == 1

    def test_concurrent_identical_requests_execute_once(self):
        engine = self._engine()
        payloads = self._serve_all(engine, [_request() for _ in range(6)])
        assert len({p["fingerprint"] for p in payloads}) == 1
        counters = engine.counters()
        # The acceptance criterion: N identical concurrent requests
        # collapse into exactly one executed portfolio.
        assert counters["executed_portfolios"] == 1
        assert counters["coalesced"] == 5
        assert sum(p["coalesced"] for p in payloads) == 5

    def test_batched_seeds_match_standalone_fingerprints(self, tiny_hg):
        engine = self._engine()
        seeds = (11, 22, 33)
        requests = [
            PartitionRequest.from_json({
                "netlist": {"inline": inline_netlist(tiny_hg)},
                "algorithm": "fm", "runs": 2, "seed": s})
            for s in seeds
        ]
        payloads = self._serve_all(engine, requests)
        counters = engine.counters()
        assert counters["executed_portfolios"] == 1
        assert counters["batched_requests"] == len(seeds)
        assert counters["executed_starts"] == 2 * len(seeds)
        for seed, payload in zip(seeds, payloads):
            standalone = execute(Portfolio(
                algorithm=build_algorithm("fm"), hg=tiny_hg, runs=2,
                seed=seed), jobs=1)
            assert payload["fingerprint"] == \
                standalone.fingerprint_digest()
            assert payload["cuts"] == standalone.cuts
            assert payload["seed"] == seed

    def test_mixed_config_requests_do_not_merge(self, tiny_hg):
        engine = self._engine()
        requests = [
            PartitionRequest.from_json({
                "netlist": {"inline": inline_netlist(tiny_hg)},
                "algorithm": algo, "runs": 1, "seed": 3})
            for algo in ("fm", "clip")
        ]
        payloads = self._serve_all(engine, requests)
        assert engine.counters()["executed_portfolios"] == 2
        assert engine.counters()["batched_requests"] == 0
        assert payloads[0]["fingerprint"] != payloads[1]["fingerprint"]

    def test_assignment_honored_per_request_not_per_cache_entry(self):
        engine = self._engine()

        async def main():
            engine.start()
            try:
                bare = await engine.serve(_request())
                withasg = await engine.serve(
                    _request(include_assignment=True))
            finally:
                await engine.drain(10)
            return bare, withasg

        bare, withasg = asyncio.run(main())
        assert "assignment" not in bare
        assert withasg["cached"] is True  # same request key
        assert len(withasg["assignment"]) > 0
        assert set(withasg["assignment"]) == set(range(withasg["k"]))

    def test_netlist_cache_shares_parsed_hypergraph(self, tiny_hg):
        engine = self._engine()
        body = {"netlist": {"inline": inline_netlist(tiny_hg)},
                "algorithm": "fm", "runs": 1}
        requests = [PartitionRequest.from_json({**body, "seed": s})
                    for s in range(4)]
        # Serve sequentially so every request re-resolves the netlist.
        async def main():
            engine.start()
            try:
                for request in requests:
                    await engine.serve(request)
            finally:
                await engine.drain(10)
        asyncio.run(main())
        stats = engine.netlists.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == len(requests) - 1

    def test_ml_reuse_shares_one_hierarchy(self, medium_hg):
        engine = self._engine(jobs=1)
        body = {"netlist": {"inline": inline_netlist(medium_hg)},
                "algorithm": "mlc", "mode": "ml-reuse", "runs": 1}
        requests = [PartitionRequest.from_json({**body, "seed": s})
                    for s in range(3)]
        async def main():
            engine.start()
            try:
                for request in requests:
                    await engine.serve(request)
            finally:
                await engine.drain(10)
        asyncio.run(main())
        assert engine.hierarchies.misses == 1
        assert engine.hierarchies.hits == len(requests) - 1

    def test_failing_request_surfaces_as_protocol_error(self):
        # An unknown generator name parses (the spec is lazy) but fails
        # at load time, on the lane's worker thread; the error must
        # come back through the future as a ProtocolError, and the key
        # must be retryable (not poisoned in cache or coalescer).
        engine = self._engine()
        bad = PartitionRequest.from_json({
            "netlist": {"generate": {"name": "no-such-circuit"}},
            "algorithm": "fm"})

        async def main():
            engine.start()
            try:
                with pytest.raises(ProtocolError):
                    await engine.serve(bad)
                with pytest.raises(ProtocolError):
                    await engine.serve(bad)
            finally:
                await engine.drain(10)
        asyncio.run(main())
        assert engine.counters()["cache_hits"] == 0
        assert not engine.coalescer.inflight(bad.request_key())


class TestCoalescer:
    def test_followers_share_leader_result(self):
        coalescer = Coalescer()
        calls = []

        async def main():
            async def factory():
                calls.append(1)
                await asyncio.sleep(0.01)
                return "payload"
            return await asyncio.gather(
                *(coalescer.run("k", factory) for _ in range(5)))

        results = asyncio.run(main())
        assert results == ["payload"] * 5
        assert len(calls) == 1
        assert coalescer.leaders == 1 and coalescer.coalesced == 4

    def test_leader_failure_propagates_then_clears(self):
        coalescer = Coalescer()

        async def main():
            async def boom():
                await asyncio.sleep(0.01)
                raise ValueError("exec failed")
            results = await asyncio.gather(
                *(coalescer.run("k", boom) for _ in range(3)),
                return_exceptions=True)
            assert all(isinstance(r, ValueError) for r in results)
            # The key is free again: a later request re-executes.
            async def ok():
                return "recovered"
            assert await coalescer.run("k", ok) == "recovered"

        asyncio.run(main())
        assert coalescer.inflight("k") is False
