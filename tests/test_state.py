"""Tests for the incremental PartitionState bookkeeping."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import hierarchical_circuit
from repro.partition import (Partition, PartitionState, cut,
                             random_partition, soed)


class TestInit:
    def test_initial_cut_matches_reference(self, tiny_hg):
        p = Partition([0, 1, 0, 1, 0, 1], k=2)
        state = PartitionState(tiny_hg, p)
        assert state.cut_weight == cut(tiny_hg, p)
        assert state.soed_weight == soed(tiny_hg, p)

    def test_part_areas(self, weighted_hg):
        state = PartitionState(weighted_hg, Partition([0, 0, 1, 1], 2))
        assert state.part_area == [3.0, 7.0]

    def test_counts(self, tiny_hg):
        p = Partition([0, 0, 0, 1, 1, 1], k=2)
        state = PartitionState(tiny_hg, p)
        bridge = 6  # net {2, 3}
        assert state.pins_in(0, bridge) == 1
        assert state.pins_in(1, bridge) == 1
        assert state.spans[bridge] == 2

    def test_size_mismatch(self, tiny_hg):
        with pytest.raises(PartitionError):
            PartitionState(tiny_hg, Partition([0, 1], 2))

    def test_verify_fresh_state(self, medium_hg):
        state = PartitionState(medium_hg,
                               random_partition(medium_hg, seed=1))
        state.verify()


class TestMoves:
    def test_single_move_updates_cut(self, tiny_hg):
        p = Partition([0, 0, 0, 1, 1, 1], k=2)
        state = PartitionState(tiny_hg, p)
        assert state.cut_weight == 1
        state.move(2, 1)  # bridge healed, triangle {0,1,2} now cut x2
        assert state.cut_weight == cut(tiny_hg, state.to_partition())
        state.verify()

    def test_move_same_part_is_noop(self, tiny_hg):
        p = Partition([0, 0, 0, 1, 1, 1], k=2)
        state = PartitionState(tiny_hg, p)
        before = state.cut_weight
        state.move(2, 0)
        assert state.cut_weight == before
        state.verify()

    def test_move_and_back_restores(self, medium_hg):
        state = PartitionState(medium_hg,
                               random_partition(medium_hg, seed=2))
        before_cut = state.cut_weight
        before_soed = state.soed_weight
        state.move(10, 1 - state.part_of[10])
        state.move(10, 1 - state.part_of[10])
        assert state.cut_weight == before_cut
        assert state.soed_weight == before_soed
        state.verify()

    def test_random_walk_consistency_k2(self, medium_hg):
        rng = random.Random(7)
        state = PartitionState(medium_hg,
                               random_partition(medium_hg, seed=3))
        for _ in range(300):
            v = rng.randrange(medium_hg.num_modules)
            state.move(v, 1 - state.part_of[v])
        state.verify()
        p = state.to_partition()
        assert state.cut_weight == cut(medium_hg, p)
        assert state.soed_weight == soed(medium_hg, p)

    def test_random_walk_consistency_k4(self, medium_hg):
        rng = random.Random(11)
        state = PartitionState(medium_hg,
                               random_partition(medium_hg, k=4, seed=3))
        for _ in range(300):
            v = rng.randrange(medium_hg.num_modules)
            state.move(v, rng.randrange(4))
        state.verify()
        p = state.to_partition()
        assert state.cut_weight == cut(medium_hg, p)
        assert state.soed_weight == soed(medium_hg, p)

    def test_weighted_nets(self, weighted_hg):
        state = PartitionState(weighted_hg, Partition([0, 0, 0, 0], 2))
        state.move(1, 1)
        # nets 0 (w=2) and 1 (w=1) now cut
        assert state.cut_weight == 3
        state.verify()


class TestActiveNets:
    def test_restricted_tracking(self, tiny_hg):
        p = Partition([0, 1, 0, 1, 0, 1], k=2)
        active = [0, 1, 2]  # only the first triangle's nets
        state = PartitionState(tiny_hg, p, active_nets=active)
        expected = sum(1 for e in active
                       if len({p.assignment[v]
                               for v in tiny_hg.pins(e)}) > 1)
        assert state.cut_weight == expected

    def test_moves_ignore_inactive(self, tiny_hg):
        p = Partition([0, 0, 0, 1, 1, 1], k=2)
        state = PartitionState(tiny_hg, p, active_nets=[0, 1, 2])
        state.move(3, 0)  # only touches inactive nets
        assert state.cut_weight == 0
        state.verify()

    def test_active_nets_listing(self, tiny_hg):
        p = Partition([0] * 6, k=2)
        state = PartitionState(tiny_hg, p, active_nets=[4, 2, 2])
        assert state.active_nets() == (2, 4)

    def test_active_nets_cached_and_sorted_input_preserved(self, tiny_hg):
        p = Partition([0] * 6, k=2)
        state = PartitionState(tiny_hg, p, active_nets=(1, 3, 5))
        # The cached tuple is returned as-is (no per-call copy).
        assert state.active_nets() is state.active_nets()
        assert state.active_nets() == (1, 3, 5)


class TestVerifyDetectsCorruption:
    def test_cut_corruption(self, tiny_hg):
        state = PartitionState(tiny_hg, Partition([0, 0, 0, 1, 1, 1], 2))
        state.cut_weight += 1
        with pytest.raises(PartitionError, match="cut"):
            state.verify()

    def test_area_corruption(self, tiny_hg):
        state = PartitionState(tiny_hg, Partition([0, 0, 0, 1, 1, 1], 2))
        state.part_area[0] += 1.0
        with pytest.raises(PartitionError, match="area"):
            state.verify()

    def test_count_corruption(self, tiny_hg):
        state = PartitionState(tiny_hg, Partition([0, 0, 0, 1, 1, 1], 2))
        state.counts[0][0] += 1
        with pytest.raises(PartitionError, match="count"):
            state.verify()
