"""Tests for the experiment harness (runner, formatting, literature)."""

import pytest

from repro.errors import ConfigError
from repro.harness import (Algorithm, CellStats, TABLE_VII_CUTS,
                           TABLE_VII_IMPROVEMENT, TABLE_VII_MLC,
                           TABLE_VIII_CPU, format_number, format_table,
                           percent_improvement, run_cell, run_matrix)
from repro.hypergraph import hierarchical_circuit
from repro.fm import fm_bipartition


def _fm() -> Algorithm:
    return Algorithm("FM", lambda hg, s: fm_bipartition(hg, seed=s))


class TestRunner:
    def test_run_cell_stats(self, medium_hg):
        cell = run_cell(_fm(), medium_hg, runs=4, seed=0)
        assert cell.runs == 4
        assert cell.min_cut == min(cell.cuts)
        assert cell.min_cut <= cell.avg_cut
        assert cell.std_cut >= 0
        assert cell.cpu_seconds > 0
        assert cell.algorithm == "FM"
        assert cell.circuit == "medium"

    def test_run_cell_deterministic(self, medium_hg):
        a = run_cell(_fm(), medium_hg, runs=3, seed=5)
        b = run_cell(_fm(), medium_hg, runs=3, seed=5)
        assert a.cuts == b.cuts

    def test_run_cell_rejects_zero_runs(self, medium_hg):
        with pytest.raises(ConfigError):
            run_cell(_fm(), medium_hg, runs=0)

    def test_run_matrix_shape(self):
        circuits = [hierarchical_circuit(80, 100, seed=s, name=f"c{s}")
                    for s in (1, 2)]
        table = run_matrix([_fm()], circuits, runs=2, seed=0)
        assert set(table) == {"c1", "c2"}
        assert set(table["c1"]) == {"FM"}

    def test_run_matrix_cells_stable_under_extension(self):
        """Adding an algorithm must not change existing cells."""
        circuits = [hierarchical_circuit(80, 100, seed=1, name="c")]
        one = run_matrix([_fm()], circuits, runs=2, seed=0)
        other = Algorithm("FM2", lambda hg, s: fm_bipartition(hg, seed=s))
        two = run_matrix([_fm(), other], circuits, runs=2, seed=0)
        assert one["c"]["FM"].cuts == two["c"]["FM"].cuts


class TestFormatting:
    def test_format_number(self):
        assert format_number(None) == ""
        assert format_number(42) == "42"
        assert format_number(3.0) == "3"
        assert format_number(3.14159, digits=2) == "3.14"
        assert format_number("text") == "text"

    def test_format_table_alignment(self):
        out = format_table(["Name", "Val"], [["a", 1], ["bbbb", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[2]
        # right-aligned numeric column
        assert lines[-1].endswith("22")

    def test_format_table_handles_none(self):
        out = format_table(["A", "B"], [["x", None]])
        assert "None" not in out


class TestLiterature:
    def test_mlc_covers_all_23(self):
        assert len(TABLE_VII_MLC) == 23
        assert TABLE_VII_MLC["golem3"]["100"] == 1346

    def test_ten_run_never_beats_hundred(self):
        for circuit, row in TABLE_VII_MLC.items():
            assert row["10"] >= row["100"], circuit

    def test_improvement_rows(self):
        assert TABLE_VII_IMPROVEMENT["100"]["PB"] == 27.9
        assert TABLE_VII_IMPROVEMENT["10"]["GMet"] == 8.4

    def test_cpu_table_has_mlc_column(self):
        assert TABLE_VIII_CPU["golem3"]["MLc10"] == 10483

    def test_percent_improvement(self):
        ours = {"a": 50, "b": 90}
        theirs = {"a": 100, "b": 100}
        assert percent_improvement(ours, theirs) == pytest.approx(30.0)

    def test_percent_improvement_skips_none(self):
        ours = {"a": 50}
        theirs = {"a": 100, "b": None}
        assert percent_improvement(ours, theirs) == pytest.approx(50.0)

    def test_percent_improvement_empty(self):
        assert percent_improvement({}, {"a": None}) is None

    def test_paper_improvements_consistent_with_cut_tables(self):
        """Recomputing % improvement from the transcribed per-circuit
        cuts should land in the same ballpark as the paper's summary
        row (not exact: blank/ambiguous cells are excluded)."""
        ours = {c: row["100"] for c, row in TABLE_VII_MLC.items()}
        theirs = {c: TABLE_VII_CUTS.get(c, {}).get("PB")
                  for c in ours}
        value = percent_improvement(ours, theirs)
        assert value is not None
        assert 15.0 < value < 40.0
