"""Tests for the parallel multi-start runtime subsystem."""

import copy
import multiprocessing
import os
import time

import pytest

from repro.core import MLConfig, build_hierarchy, ml_bipartition
from repro.errors import ClusteringError, ConfigError, HarnessError
from repro.harness import Algorithm, CellStats, run_cell, run_matrix
from repro.hypergraph import hierarchical_circuit, load_circuit
from repro.runtime import (HierarchyCache, Portfolio, ProcessExecutor,
                           SerialExecutor, STATUS_FAILED, STATUS_OK,
                           STATUS_TIMEOUT, execute, get_executor,
                           ml_portfolio)
from repro.fm import fm_bipartition


def _fm() -> Algorithm:
    return Algorithm("FM", lambda hg, s: fm_bipartition(hg, seed=s))


def _failing_on_even_seed() -> Algorithm:
    def run(hg, s):
        if s % 2 == 0:
            raise RuntimeError(f"injected crash for seed {s}")
        return fm_bipartition(hg, seed=s)
    return Algorithm("FLAKY", run)


def _always_failing() -> Algorithm:
    def run(hg, s):
        raise ValueError("always broken")
    return Algorithm("BROKEN", run)


class TestDeterminism:
    """Same seed => same cuts at any worker count."""

    @pytest.mark.parametrize("circuit", ["struct", "primary2"])
    def test_run_cell_suite_circuits(self, circuit):
        hg = load_circuit(circuit, scale=0.05, seed=0)
        serial = run_cell(_fm(), hg, runs=4, seed=11, jobs=1)
        parallel = run_cell(_fm(), hg, runs=4, seed=11, jobs=4)
        assert sorted(serial.cuts) == sorted(parallel.cuts)
        assert serial.cuts == parallel.cuts  # index order, not just sets

    def test_ml_portfolio_worker_counts(self, medium_hg):
        serial = ml_portfolio(medium_hg, runs=4, seed=5, jobs=1,
                              cache=HierarchyCache())
        parallel = ml_portfolio(medium_hg, runs=4, seed=5, jobs=2,
                                cache=HierarchyCache())
        assert serial.cuts == parallel.cuts

    def test_run_matrix_accepts_jobs(self, medium_hg):
        one = run_matrix([_fm()], [medium_hg], runs=2, seed=0, jobs=1)
        two = run_matrix([_fm()], [medium_hg], runs=2, seed=0, jobs=2)
        assert one["medium"]["FM"].cuts == two["medium"]["FM"].cuts

    def test_serial_matches_historical_child_seed_protocol(self, medium_hg):
        """jobs=1 reproduces the pre-runtime serial runner exactly."""
        from repro.rng import child_seeds
        expected = [fm_bipartition(medium_hg, seed=s).cut
                    for s in child_seeds(7, 3)]
        assert run_cell(_fm(), medium_hg, runs=3, seed=7).cuts == expected


class TestFaultIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_survives_crashing_runs(self, medium_hg, jobs):
        outcome = execute(
            Portfolio(_failing_on_even_seed(), medium_hg, runs=8, seed=0),
            jobs=jobs)
        assert outcome.runs == 8
        assert outcome.failures and outcome.ok_records
        for record in outcome.failures:
            assert record.status == STATUS_FAILED
            assert "injected crash" in record.error
            assert record.cut is None
        stats = outcome.to_cell_stats()
        assert stats.failures == len(outcome.failures)
        assert stats.runs == len(outcome.ok_records)
        assert stats.min_cut <= stats.avg_cut  # survivors aggregate fine

    def test_all_failed_portfolio(self, medium_hg):
        outcome = execute(
            Portfolio(_always_failing(), medium_hg, runs=3, seed=0))
        assert [r.status for r in outcome.records] == [STATUS_FAILED] * 3
        with pytest.raises(HarnessError):
            outcome.best
        stats = outcome.to_cell_stats()
        assert stats.runs == 0 and stats.failures == 3
        for prop in ("min_cut", "avg_cut", "std_cut"):
            with pytest.raises(HarnessError):
                getattr(stats, prop)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retries_recorded(self, medium_hg, jobs):
        outcome = execute(
            Portfolio(_always_failing(), medium_hg, runs=2, seed=0,
                      retries=2),
            jobs=jobs)
        assert all(r.attempts == 3 for r in outcome.records)
        assert all(r.status == STATUS_FAILED for r in outcome.records)

    @pytest.mark.parallel
    def test_budget_flags_hung_start(self, medium_hg):
        def hang(hg, s):
            time.sleep(30)
        outcome = execute(
            Portfolio(Algorithm("HANG", hang), medium_hg, runs=2, seed=0,
                      budget_seconds=0.5),
            jobs=2)
        assert outcome.runs == 2
        assert all(r.status == STATUS_TIMEOUT for r in outcome.records)
        assert outcome.wall_seconds < 20  # the sweep did not wait them out


class TestExecutorFaultPaths:
    """The previously untested executor fault paths: dying, hanging,
    and never-returning workers."""

    @pytest.mark.parallel
    def test_dead_worker_recorded_failed_pool_survives(self, medium_hg):
        """A worker that os._exits mid-task is detected through the
        start-notice channel and recorded as a (retryable) failure; the
        pool respawns a replacement and the sweep completes."""
        def die_on_even_seed(hg, s):
            if s % 2 == 0:
                os._exit(3)
            return fm_bipartition(hg, seed=s)

        outcome = execute(
            Portfolio(Algorithm("DIE", die_on_even_seed), medium_hg,
                      runs=6, seed=0),
            jobs=2)
        assert outcome.runs == 6  # every start accounted for
        dead = [r for r in outcome.records if r.status == STATUS_FAILED]
        alive = [r for r in outcome.records if r.ok]
        assert dead and alive
        for record in dead:
            assert record.seed % 2 == 0
            assert "died before returning" in record.error
            assert record.cut is None
        assert all(r.seed % 2 == 1 for r in alive)

    @pytest.mark.parallel
    def test_dead_worker_is_retried(self, medium_hg):
        """Worker death is a *failure*, so retries apply — unlike a
        timeout.  A start that dies once and then runs clean recovers."""
        flag = multiprocessing.get_context("fork").Value("i", 0)

        def die_once(hg, s):
            with flag.get_lock():
                first = flag.value == 0
                flag.value = 1
            if first:
                os._exit(3)
            return fm_bipartition(hg, seed=s)

        outcome = execute(
            Portfolio(Algorithm("DIE1", die_once), medium_hg, runs=2,
                      seed=0, retries=1),
            jobs=2)
        assert all(r.ok for r in outcome.records)
        assert max(r.attempts for r in outcome.records) == 2

    @pytest.mark.parallel
    def test_hung_worker_not_retried_even_with_retries(self, medium_hg):
        """Timeouts are never retried (a hung worker already cost a
        pool slot); the pool is terminated instead of waited out."""
        def hang(hg, s):
            time.sleep(30)

        t0 = time.perf_counter()
        outcome = execute(
            Portfolio(Algorithm("HANG", hang), medium_hg, runs=2, seed=0,
                      budget_seconds=0.5, retries=3),
            jobs=2)
        elapsed = time.perf_counter() - t0
        assert all(r.status == STATUS_TIMEOUT for r in outcome.records)
        assert all(r.attempts == 1 for r in outcome.records)
        assert elapsed < 20

    def test_collect_deadline_finite_without_budget(self, medium_hg,
                                                    monkeypatch):
        """With budget_seconds=None the collector still bounds its wait
        (DEFAULT_COLLECT_TIMEOUT) — a hung worker can delay a sweep but
        never wedge it — and the deadline runs from collection start,
        not task dispatch."""
        import repro.runtime.executor as executor_module
        monkeypatch.setattr(executor_module, "DEFAULT_COLLECT_TIMEOUT", 0.2)

        class NeverReturns:
            def get(self, timeout):
                time.sleep(timeout)
                raise multiprocessing.TimeoutError

        portfolio = Portfolio(_fm(), medium_hg, runs=1, seed=0)
        assert portfolio.budget_seconds is None
        record = ProcessExecutor._collect(portfolio, NeverReturns(), 0, 99,
                                          1, {})
        assert record.status == STATUS_TIMEOUT
        assert not record.retryable
        assert "0.2s of collection" in record.error
        assert "collection start, not task dispatch" in record.error

    def test_collect_deadline_uses_budget(self, medium_hg):
        """An explicit budget overrides the default collection bound."""
        class NeverReturns:
            def get(self, timeout):
                time.sleep(timeout)
                raise multiprocessing.TimeoutError

        portfolio = Portfolio(_fm(), medium_hg, runs=1, seed=0,
                              budget_seconds=0.2)
        t0 = time.perf_counter()
        record = ProcessExecutor._collect(portfolio, NeverReturns(), 0, 99,
                                          1, {})
        assert record.status == STATUS_TIMEOUT
        assert time.perf_counter() - t0 < 5.0


class TestHierarchyReuse:
    def test_prebuilt_matches_fresh_run(self, large_hg):
        config = MLConfig(engine="clip", matching_ratio=0.5)
        for seed in (3, 11):
            fresh = ml_bipartition(large_hg, config=config, seed=seed)
            prebuilt = build_hierarchy(large_hg, config, seed=seed)
            reused = ml_bipartition(large_hg, config=config, seed=seed,
                                    hierarchy=prebuilt)
            assert reused.cut == fresh.cut
            assert reused.partition == fresh.partition

    def test_refinement_never_mutates_hierarchy(self, large_hg):
        config = MLConfig(matching_ratio=0.6)
        hierarchy = build_hierarchy(large_hg, config, seed=1)
        netlists_before = copy.deepcopy(hierarchy.netlists)
        clusterings_before = copy.deepcopy(hierarchy.clusterings)
        for seed in (1, 2, 3):
            ml_bipartition(large_hg, config=config, seed=seed,
                           hierarchy=hierarchy)
        assert hierarchy.netlists == netlists_before
        assert [c.cluster_of for c in hierarchy.clusterings] \
            == [c.cluster_of for c in clusterings_before]

    def test_portfolio_coarsens_exactly_once(self, medium_hg, monkeypatch):
        import repro.runtime.cache as cache_module
        calls = []
        real = cache_module.build_hierarchy

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(cache_module, "build_hierarchy", spy)
        outcome = ml_portfolio(medium_hg, runs=6, seed=4,
                               cache=HierarchyCache())
        assert len(outcome.cuts) == 6
        assert len(calls) == 1

    def test_cache_hit_returns_same_object(self, medium_hg):
        cache = HierarchyCache()
        config = MLConfig()
        first = cache.get(medium_hg, config, seed=0)
        second = cache.get(medium_hg, config, seed=0)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.get(medium_hg, config, seed=1) is not first
        assert cache.misses == 2

    def test_cache_evicts_lru(self, medium_hg):
        cache = HierarchyCache(max_entries=2)
        config = MLConfig()
        for seed in range(3):
            cache.get(medium_hg, config, seed=seed)
        assert len(cache) == 2
        assert cache.get(medium_hg, config, seed=0) is not None
        assert cache.misses == 4  # seed 0 was evicted and rebuilt

    def test_foreign_hierarchy_rejected(self, medium_hg, large_hg):
        hierarchy = build_hierarchy(large_hg, MLConfig(), seed=0)
        with pytest.raises(ClusteringError):
            ml_bipartition(medium_hg, seed=0, hierarchy=hierarchy)


class TestCellStats:
    def test_wall_and_cpu_recorded(self, medium_hg):
        stats = run_cell(_fm(), medium_hg, runs=3, seed=0)
        assert stats.wall_seconds > 0
        assert stats.cpu_seconds > 0
        assert stats.failures == 0

    def test_backward_compatible_constructor(self):
        stats = CellStats(algorithm="A", circuit="c", cuts=[3, 4],
                          cpu_seconds=2.0)
        assert stats.wall_seconds == 2.0
        with pytest.deprecated_call():
            assert stats.elapsed_seconds == 2.0
        with pytest.deprecated_call():
            assert stats.cpu_time == 2.0
        assert stats.min_cut == 3

    def test_zero_runs_still_rejected(self, medium_hg):
        with pytest.raises(ConfigError):
            run_cell(_fm(), medium_hg, runs=0)


class TestExecutors:
    def test_get_executor_selection(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(3), ProcessExecutor)
        with pytest.raises(ConfigError):
            get_executor(0)

    def test_process_executor_needs_two_workers(self):
        with pytest.raises(ConfigError):
            ProcessExecutor(1)

    def test_explicit_executor_wins(self, medium_hg):
        executor = SerialExecutor()
        outcome = execute(Portfolio(_fm(), medium_hg, runs=2, seed=0),
                          jobs=8, executor=executor)
        assert outcome.jobs == 1
        assert all(r.worker == "serial" for r in outcome.records)

    def test_worker_ids_recorded(self, medium_hg):
        outcome = execute(Portfolio(_fm(), medium_hg, runs=4, seed=0),
                          jobs=2)
        assert all(r.worker.startswith("pid:") for r in outcome.records)

    def test_portfolio_validation(self, medium_hg):
        with pytest.raises(ConfigError):
            Portfolio(_fm(), medium_hg, runs=0)
        with pytest.raises(ConfigError):
            Portfolio(_fm(), medium_hg, runs=1, retries=-1)
        with pytest.raises(ConfigError):
            Portfolio(_fm(), medium_hg, runs=1, budget_seconds=0)
        with pytest.raises(ConfigError):
            Portfolio(object(), medium_hg, runs=1)


@pytest.mark.parallel
class TestParallelSmoke:
    """Tier-1-safe smoke test: a real 2-worker portfolio, tiny circuit."""

    def test_two_worker_portfolio(self):
        hg = hierarchical_circuit(120, 150, seed=9, name="smoke")
        outcome = ml_portfolio(hg, runs=4, seed=2, jobs=2,
                               cache=HierarchyCache())
        assert outcome.jobs == 2
        assert [r.status for r in outcome.records] == [STATUS_OK] * 4
        reference = ml_portfolio(hg, runs=4, seed=2, jobs=1,
                                 cache=HierarchyCache())
        assert outcome.cuts == reference.cuts
        stats = outcome.to_cell_stats()
        assert stats.runs == 4
        assert stats.min_cut == min(outcome.cuts)
