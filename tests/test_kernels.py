"""The CSR kernel layer: flat-view equivalence, golden cuts, perf floor.

Three contracts from DESIGN.md's kernel-layer section:

1. **Reconstruction** — the flat arrays and kernel twins of
   ``Hypergraph.csr`` describe exactly the same incidence as the tuple
   accessors ``pins(e)`` / ``nets(v)``.
2. **Bit-identity** — the ``"csr"`` and ``"reference"`` kernel modes
   execute the same arithmetic in the same order, so FM, CLIP, and
   multilevel runs return *identical* partitions (not just equal cuts)
   for every seed.
3. **No regression** — the CSR kernels must never be meaningfully
   slower than the reference kernels they replace (smoke-level bound;
   the real speedup numbers live in ``benchmarks/bench_kernels.py``).
"""

import time

import pytest

from repro import MLConfig, ml_bipartition
from repro.fm import FMConfig, clip_bipartition, fm_bipartition
from repro.hypergraph import (hierarchical_circuit, load_circuit,
                              random_hypergraph)
from repro.kernels import use_kernels


def _sample_circuits():
    """Small and mid-size netlists spanning the generator family."""
    return [
        random_hypergraph(60, 90, seed=11, name="rand60"),
        random_hypergraph(200, 260, max_net_size=9, seed=5, name="rand200"),
        hierarchical_circuit(300, 360, seed=2024, name="hier300"),
        load_circuit("struct", scale=0.2, seed=3),
    ]


# ---------------------------------------------------------------------------
# 1. Reconstruction: flat views == tuple accessors.
# ---------------------------------------------------------------------------


class TestFlatViews:
    def test_pins_reconstruction(self):
        for hg in _sample_circuits():
            view = hg.csr
            xpins, pins_flat = view.xpins, view.pins_flat
            for e in hg.all_nets():
                expected = hg.pins(e)
                assert view.pins(e) == expected
                assert tuple(pins_flat[xpins[e]:xpins[e + 1]]) == expected

    def test_nets_reconstruction(self):
        for hg in _sample_circuits():
            view = hg.csr
            xnets, nets_flat = view.xnets, view.nets_flat
            for v in hg.modules():
                expected = hg.nets(v)
                assert view.nets(v) == expected
                assert tuple(nets_flat[xnets[v]:xnets[v + 1]]) == expected

    def test_scalar_arrays_match_accessors(self):
        for hg in _sample_circuits():
            view = hg.csr
            assert list(view.net_weights) == hg.net_weights()
            assert list(view.net_sizes) == [hg.net_size(e)
                                            for e in hg.all_nets()]
            assert list(view.areas) == hg.areas()

    def test_kernel_twins_match_arrays(self):
        for hg in _sample_circuits():
            view = hg.csr
            assert view.weights_list == list(view.net_weights)
            assert view.sizes_list == list(view.net_sizes)
            assert view.areas_list == list(view.areas)

    def test_tuple_views_are_shared(self):
        # The kernel twins reuse the hypergraph's own tuples — no copy.
        hg = _sample_circuits()[0]
        view = hg.csr
        for e in hg.all_nets():
            assert view.net_pins[e] is hg.pins(e)
        for v in hg.modules():
            assert view.module_nets[v] is hg.nets(v)

    def test_counters(self):
        for hg in _sample_circuits():
            view = hg.csr
            assert view.num_modules == hg.num_modules
            assert view.num_nets == hg.num_nets
            assert view.num_pins == hg.num_pins
            assert len(view.pins_flat) == hg.num_pins
            assert len(view.nets_flat) == hg.num_pins

    def test_view_is_cached(self):
        hg = hierarchical_circuit(50, 60, seed=1)
        assert hg.csr is hg.csr

    def test_active_nets_threshold(self):
        hg = random_hypergraph(80, 120, max_net_size=7, seed=9)
        view = hg.csr
        for limit in (2, 3, 200, None):
            active = view.active_nets(limit)
            expected = tuple(
                e for e in hg.all_nets()
                if limit is None or hg.net_size(e) <= limit)
            assert active == expected
            # Cached: same tuple object on every call.
            assert view.active_nets(limit) is active

    def test_max_weighted_degree(self):
        for hg in _sample_circuits():
            view = hg.csr
            for limit in (200, None):
                expected = max(
                    sum(hg.net_weight(e) for e in hg.nets(v)
                        if limit is None or hg.net_size(e) <= limit)
                    for v in hg.modules())
                assert view.max_weighted_degree(limit) == expected

    def test_active_incidence_filters(self):
        hg = random_hypergraph(80, 120, max_net_size=7, seed=9)
        view = hg.csr
        for limit in (3, 200, None):
            incidence = view.active_incidence(limit)
            for v in hg.modules():
                expected = tuple(
                    e for e in hg.nets(v)
                    if limit is None or hg.net_size(e) <= limit)
                assert tuple(incidence[v]) == expected
        # All-active thresholds reuse the shared incidence outright.
        assert view.active_incidence(None) is view.module_nets


# ---------------------------------------------------------------------------
# 2. Bit-identity: both kernel modes return identical partitions.
# ---------------------------------------------------------------------------


def _both_modes(run):
    with use_kernels("reference"):
        ref = run()
    with use_kernels("csr"):
        csr = run()
    return ref, csr


class TestGoldenCuts:
    SEEDS = (0, 1, 2, 7, 41)

    @pytest.fixture(scope="class")
    def medium(self):
        return hierarchical_circuit(300, 360, seed=2024, name="hier300")

    def test_fm_identical_across_modes(self, medium):
        for seed in self.SEEDS:
            ref, csr = _both_modes(
                lambda: fm_bipartition(medium, seed=seed))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment
            assert csr.pass_cuts == ref.pass_cuts

    def test_clip_identical_across_modes(self, medium):
        for seed in self.SEEDS:
            ref, csr = _both_modes(
                lambda: clip_bipartition(medium, seed=seed))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment

    def test_ml_identical_across_modes(self, medium):
        config = MLConfig(engine="clip")
        for seed in self.SEEDS[:3]:
            ref, csr = _both_modes(
                lambda: ml_bipartition(medium, config=config, seed=seed))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment

    def test_fm_policies_identical_across_modes(self, medium):
        # FIFO and random bucket policies run through the generic CSR
        # loop rather than the inlined LIFO loop; they must agree with
        # the reference kernels too.
        for policy in ("fifo", "random"):
            config = FMConfig(bucket_policy=policy)
            ref, csr = _both_modes(
                lambda: fm_bipartition(medium, config=config, seed=3))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment

    def test_golden_cuts_pinned(self, medium):
        # Absolute regression pins for the canonical 300-module circuit
        # (same values both modes; guards accidental reorderings that
        # stay self-consistent across modes).
        with use_kernels("csr"):
            assert fm_bipartition(medium, seed=2024).cut == 51
            assert clip_bipartition(medium, seed=2024).cut == 22
            assert ml_bipartition(medium, config=MLConfig(engine="clip"),
                                  seed=2024).cut == 20


# ---------------------------------------------------------------------------
# 3. Perf floor: CSR kernels never meaningfully slower than reference.
# ---------------------------------------------------------------------------


@pytest.mark.kernels
def test_csr_not_slower_than_reference():
    hg = load_circuit("struct", scale=0.3, seed=0)
    config = MLConfig(engine="clip")

    def best_of(mode, repeats=3):
        with use_kernels(mode):
            ml_bipartition(hg, config=config, seed=5)  # warm caches
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                result = ml_bipartition(hg, config=config, seed=5)
                best = min(best, time.perf_counter() - start)
        return best, result.cut

    t_ref, cut_ref = best_of("reference")
    t_csr, cut_csr = best_of("csr")
    assert cut_csr == cut_ref
    # Smoke-level bound with generous headroom for noisy CI machines;
    # the measured ratio is a >=2x *speedup* (see BENCH_kernels.json).
    assert t_csr <= 1.5 * t_ref, (
        f"CSR kernels slower than reference: {t_csr:.3f}s vs {t_ref:.3f}s")
