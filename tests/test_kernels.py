"""The kernel layer: flat-view equivalence, golden cuts, perf floors.

Four contracts from DESIGN.md's kernel-layer sections (§kernels, §13):

1. **Reconstruction** — the flat arrays and kernel twins of
   ``Hypergraph.csr`` describe exactly the same incidence as the tuple
   accessors ``pins(e)`` / ``nets(v)``.
2. **Bit-identity** — the ``"csr"`` and ``"reference"`` kernel modes
   execute the same arithmetic in the same order, so FM, CLIP, and
   multilevel runs return *identical* partitions (not just equal cuts)
   for every seed.  The ``"numpy"`` mode shares that guarantee for the
   order-preserving kernels (state init, initial gains, coarsening)
   but pins its *own* refinement goldens — the batch engine's
   tie-breaking differs by design (DESIGN.md §13).
3. **No regression** — the CSR kernels must never be meaningfully
   slower than the reference kernels they replace (smoke-level bound;
   the real speedup numbers live in ``benchmarks/bench_kernels.py``).
4. **NumPy floor** — the vectorized mode must stay a multiple faster
   than CSR end-to-end on a large netlist, or the whole point of
   carrying a third kernel family is gone.
"""

import random
import time

import pytest

from repro import MLConfig, build_hierarchy, ml_bipartition
from repro.fm import FMConfig, clip_bipartition, fm_bipartition
from repro.fm.engine import _initial_gains
from repro.hypergraph import (hierarchical_circuit, load_circuit,
                              random_hypergraph)
from repro.kernels import KERNEL_MODES, use_kernels
from repro.partition import PartitionState, random_partition


def _sample_circuits():
    """Small and mid-size netlists spanning the generator family."""
    return [
        random_hypergraph(60, 90, seed=11, name="rand60"),
        random_hypergraph(200, 260, max_net_size=9, seed=5, name="rand200"),
        hierarchical_circuit(300, 360, seed=2024, name="hier300"),
        load_circuit("struct", scale=0.2, seed=3),
    ]


# ---------------------------------------------------------------------------
# 1. Reconstruction: flat views == tuple accessors.
# ---------------------------------------------------------------------------


class TestFlatViews:
    def test_pins_reconstruction(self):
        for hg in _sample_circuits():
            view = hg.csr
            xpins, pins_flat = view.xpins, view.pins_flat
            for e in hg.all_nets():
                expected = hg.pins(e)
                assert view.pins(e) == expected
                assert tuple(pins_flat[xpins[e]:xpins[e + 1]]) == expected

    def test_nets_reconstruction(self):
        for hg in _sample_circuits():
            view = hg.csr
            xnets, nets_flat = view.xnets, view.nets_flat
            for v in hg.modules():
                expected = hg.nets(v)
                assert view.nets(v) == expected
                assert tuple(nets_flat[xnets[v]:xnets[v + 1]]) == expected

    def test_scalar_arrays_match_accessors(self):
        for hg in _sample_circuits():
            view = hg.csr
            assert list(view.net_weights) == hg.net_weights()
            assert list(view.net_sizes) == [hg.net_size(e)
                                            for e in hg.all_nets()]
            assert list(view.areas) == hg.areas()

    def test_kernel_twins_match_arrays(self):
        for hg in _sample_circuits():
            view = hg.csr
            assert view.weights_list == list(view.net_weights)
            assert view.sizes_list == list(view.net_sizes)
            assert view.areas_list == list(view.areas)

    def test_tuple_views_are_shared(self):
        # The kernel twins reuse the hypergraph's own tuples — no copy.
        hg = _sample_circuits()[0]
        view = hg.csr
        for e in hg.all_nets():
            assert view.net_pins[e] is hg.pins(e)
        for v in hg.modules():
            assert view.module_nets[v] is hg.nets(v)

    def test_counters(self):
        for hg in _sample_circuits():
            view = hg.csr
            assert view.num_modules == hg.num_modules
            assert view.num_nets == hg.num_nets
            assert view.num_pins == hg.num_pins
            assert len(view.pins_flat) == hg.num_pins
            assert len(view.nets_flat) == hg.num_pins

    def test_view_is_cached(self):
        hg = hierarchical_circuit(50, 60, seed=1)
        assert hg.csr is hg.csr

    def test_active_nets_threshold(self):
        hg = random_hypergraph(80, 120, max_net_size=7, seed=9)
        view = hg.csr
        for limit in (2, 3, 200, None):
            active = view.active_nets(limit)
            expected = tuple(
                e for e in hg.all_nets()
                if limit is None or hg.net_size(e) <= limit)
            assert active == expected
            # Cached: same tuple object on every call.
            assert view.active_nets(limit) is active

    def test_max_weighted_degree(self):
        for hg in _sample_circuits():
            view = hg.csr
            for limit in (200, None):
                expected = max(
                    sum(hg.net_weight(e) for e in hg.nets(v)
                        if limit is None or hg.net_size(e) <= limit)
                    for v in hg.modules())
                assert view.max_weighted_degree(limit) == expected

    def test_active_incidence_filters(self):
        hg = random_hypergraph(80, 120, max_net_size=7, seed=9)
        view = hg.csr
        for limit in (3, 200, None):
            incidence = view.active_incidence(limit)
            for v in hg.modules():
                expected = tuple(
                    e for e in hg.nets(v)
                    if limit is None or hg.net_size(e) <= limit)
                assert tuple(incidence[v]) == expected
        # All-active thresholds reuse the shared incidence outright.
        assert view.active_incidence(None) is view.module_nets


# ---------------------------------------------------------------------------
# 2. Bit-identity: both kernel modes return identical partitions.
# ---------------------------------------------------------------------------


def _both_modes(run):
    with use_kernels("reference"):
        ref = run()
    with use_kernels("csr"):
        csr = run()
    return ref, csr


class TestGoldenCuts:
    SEEDS = (0, 1, 2, 7, 41)

    @pytest.fixture(scope="class")
    def medium(self):
        return hierarchical_circuit(300, 360, seed=2024, name="hier300")

    def test_fm_identical_across_modes(self, medium):
        for seed in self.SEEDS:
            ref, csr = _both_modes(
                lambda: fm_bipartition(medium, seed=seed))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment
            assert csr.pass_cuts == ref.pass_cuts

    def test_clip_identical_across_modes(self, medium):
        for seed in self.SEEDS:
            ref, csr = _both_modes(
                lambda: clip_bipartition(medium, seed=seed))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment

    def test_ml_identical_across_modes(self, medium):
        config = MLConfig(engine="clip")
        for seed in self.SEEDS[:3]:
            ref, csr = _both_modes(
                lambda: ml_bipartition(medium, config=config, seed=seed))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment

    def test_fm_policies_identical_across_modes(self, medium):
        # FIFO and random bucket policies run through the generic CSR
        # loop rather than the inlined LIFO loop; they must agree with
        # the reference kernels too.
        for policy in ("fifo", "random"):
            config = FMConfig(bucket_policy=policy)
            ref, csr = _both_modes(
                lambda: fm_bipartition(medium, config=config, seed=3))
            assert csr.cut == ref.cut
            assert csr.partition.assignment == ref.partition.assignment

    def test_golden_cuts_pinned(self, medium):
        # Absolute regression pins for the canonical 300-module circuit
        # (same values both scalar modes; guards accidental reorderings
        # that stay self-consistent across modes).
        with use_kernels("csr"):
            assert fm_bipartition(medium, seed=2024).cut == 51
            assert clip_bipartition(medium, seed=2024).cut == 22
            assert ml_bipartition(medium, config=MLConfig(engine="clip"),
                                  seed=2024).cut == 20

    def test_numpy_golden_cuts_pinned(self, medium):
        # The numpy batch engine is a *different* refinement algorithm
        # (batch tie-breaking, hill-climbing polish walk — DESIGN.md
        # §13), so it pins its own goldens rather than matching the
        # scalar ones.  Flat FM and CLIP collapse to the same batch
        # loop in this mode, hence the shared 71.
        with use_kernels("numpy"):
            assert fm_bipartition(medium, seed=2024).cut == 71
            assert clip_bipartition(medium, seed=2024).cut == 71
            assert ml_bipartition(medium, config=MLConfig(engine="clip"),
                                  seed=2024).cut == 20

    def test_hierarchy_identical_across_all_modes(self, medium):
        # Coarsening (matching + induction) is order-preserving in
        # every mode: the full hierarchy — incidence, areas, weights,
        # clusterings — must be identical, not merely isomorphic.
        config = MLConfig(engine="clip")
        snapshots = {}
        for mode in KERNEL_MODES:
            with use_kernels(mode):
                hierarchy = build_hierarchy(medium, config, seed=7)
                snapshots[mode] = [
                    (hg.num_modules, hg.num_nets, tuple(hg._net_pins),
                     tuple(hg._areas), tuple(hg._net_weights))
                    for hg in hierarchy.netlists]
        first = snapshots[KERNEL_MODES[0]]
        assert len(first) > 2  # really coarsened, not a no-op ladder
        for mode in KERNEL_MODES[1:]:
            assert snapshots[mode] == first, (
                f"hierarchy diverged between {KERNEL_MODES[0]} and {mode}")


# ---------------------------------------------------------------------------
# 3. Property test: state init and initial gains agree in all modes.
# ---------------------------------------------------------------------------


class TestCrossModeProperties:
    """Elementwise identity of the order-preserving kernels on ~50
    random small hypergraphs (seeded ``random.Random``, no hypothesis
    dependency).  These are the two vectorized twins whose contract is
    *bit-identity with the scalar kernels*, not merely equal cuts."""

    CASES = 50

    def _random_cases(self):
        rng = random.Random(0xC0FFEE)
        for case in range(self.CASES):
            n = rng.randrange(4, 80)
            m = rng.randrange(2, 2 * n)
            max_net = rng.randrange(2, 9)
            hg = random_hypergraph(n, m, max_net_size=max_net,
                                   seed=rng.randrange(1 << 30),
                                   name=f"prop{case}")
            part = random_partition(hg, seed=rng.randrange(1 << 30))
            yield hg, part

    def test_state_init_identical(self):
        for hg, part in self._random_cases():
            states = {}
            for mode in KERNEL_MODES:
                with use_kernels(mode):
                    states[mode] = PartitionState(hg, part)
            base = states[KERNEL_MODES[0]]
            for mode in KERNEL_MODES[1:]:
                st = states[mode]
                assert [list(c) for c in st.counts] == \
                    [list(c) for c in base.counts], (hg.name, mode)
                assert list(st.spans) == list(base.spans), (hg.name, mode)
                assert st.cut_weight == base.cut_weight, (hg.name, mode)
                assert st.soed_weight == base.soed_weight, (hg.name, mode)
                assert st.part_area == base.part_area, (hg.name, mode)

    def test_initial_gain_vector_identical(self):
        for hg, part in self._random_cases():
            vectors = {}
            for mode in KERNEL_MODES:
                with use_kernels(mode):
                    vectors[mode] = list(
                        _initial_gains(PartitionState(hg, part)))
            base = vectors[KERNEL_MODES[0]]
            for mode in KERNEL_MODES[1:]:
                assert vectors[mode] == base, (hg.name, mode)

    def test_initial_gain_vector_identical_restricted_nets(self):
        # The active-net mask path (nets above max_net_size excluded)
        # is a separate branch in every mode; exercise it too.
        rng = random.Random(1234)
        for _ in range(10):
            hg = random_hypergraph(60, 120, max_net_size=9,
                                   seed=rng.randrange(1 << 30))
            part = random_partition(hg, seed=rng.randrange(1 << 30))
            active = [e for e in hg.all_nets() if hg.net_size(e) <= 4]
            vectors = {}
            for mode in KERNEL_MODES:
                with use_kernels(mode):
                    state = PartitionState(hg, part, active_nets=active)
                    vectors[mode] = list(_initial_gains(state))
            base = vectors[KERNEL_MODES[0]]
            for mode in KERNEL_MODES[1:]:
                assert vectors[mode] == base, mode


# ---------------------------------------------------------------------------
# 4. Perf floors: CSR never slower than reference; numpy a multiple
#    faster than CSR.
# ---------------------------------------------------------------------------


def _best_of_mode(hg, config, mode, seed=5, repeats=3):
    with use_kernels(mode):
        ml_bipartition(hg, config=config, seed=seed)  # warm caches
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = ml_bipartition(hg, config=config, seed=seed)
            best = min(best, time.perf_counter() - start)
    return best, result.cut


@pytest.mark.kernels
def test_csr_not_slower_than_reference():
    hg = load_circuit("struct", scale=0.3, seed=0)
    config = MLConfig(engine="clip")
    t_ref, cut_ref = _best_of_mode(hg, config, "reference")
    t_csr, cut_csr = _best_of_mode(hg, config, "csr")
    assert cut_csr == cut_ref
    # Smoke-level bound with generous headroom for noisy CI machines;
    # the measured ratio is a >=2x *speedup* (see BENCH_kernels.json).
    assert t_csr <= 1.5 * t_ref, (
        f"CSR kernels slower than reference: {t_csr:.3f}s vs {t_ref:.3f}s")


@pytest.mark.kernels
def test_numpy_at_least_3x_faster_than_csr():
    # The acceptance floor for carrying a third kernel family: on the
    # largest synthetic circuit the vectorized coarsen–refine path
    # must beat the CSR scalar path >=3x end-to-end.  Measured margin
    # is ~7x at this scale (BENCH_kernels.json), so the 3x bound has
    # >2x headroom against CI noise.
    hg = load_circuit("golem3", scale=0.3, seed=0)
    config = MLConfig(engine="clip")
    t_csr, _ = _best_of_mode(hg, config, "csr", repeats=2)
    t_np, cut_np = _best_of_mode(hg, config, "numpy", repeats=2)
    assert cut_np > 0  # sanity: a real partition, not a degenerate one
    assert t_np * 3.0 <= t_csr, (
        f"numpy kernels below the 3x floor: {t_np:.3f}s vs "
        f"csr {t_csr:.3f}s ({t_csr / t_np:.2f}x)")
