"""Tests for the observability layer (tracing, metrics, logging).

The contracts pinned here:

* span nesting in a traced ML run matches the hierarchy depth
  (per-level coarsen/refine spans, one per level, correctly contained);
* per-pass FM telemetry is identical under the reference and CSR
  kernel modes (the counters are pure functions of the move sequence);
* the multiprocess trace merge is deterministic for a fixed seed and
  carries worker-pid-tagged spans;
* tracing/metrics never change results (same cuts with them on/off);
* the Prometheus rendering and the ``repro.*`` logging hierarchy work.
"""

import json
import logging

import pytest

from repro.core import ml_bipartition
from repro.fm import fm_bipartition
from repro.harness import Algorithm, run_cell
from repro.hypergraph import hierarchical_circuit
from repro.kernels import use_kernels
from repro.obs import (BufferTracer, MetricsRegistry, collecting_metrics,
                       configure_logging, get_logger, metrics, read_trace,
                       set_tracer, summarize_trace, tracer, tracing)
from repro.runtime import Portfolio, execute


def _ml() -> Algorithm:
    return Algorithm("MLC", lambda hg, s: ml_bipartition(hg, seed=s))


def _always_failing() -> Algorithm:
    def run(hg, s):
        raise ValueError("always broken")
    return Algorithm("BROKEN", run)


def _events_named(events, name):
    return [e for e in events if e.get("name") == name]


class TestTracerBasics:
    def test_disabled_by_default(self):
        tr = tracer()
        assert not tr.enabled
        # Every operation is a harmless no-op.
        with tr.span("x") as args:
            assert args == {}
        tr.instant("x")
        tr.end("x", tr.begin())

    def test_tracing_restores_previous(self):
        buffer = BufferTracer()
        before = tracer()
        with tracing(buffer) as active:
            assert active is buffer
            assert tracer() is buffer
        assert tracer() is before

    def test_results_identical_with_tracing(self, medium_hg):
        baseline = ml_bipartition(medium_hg, seed=5)
        with tracing(BufferTracer()):
            traced = ml_bipartition(medium_hg, seed=5)
        assert traced.cut == baseline.cut
        assert traced.partition.assignment == baseline.partition.assignment


class TestSpanNesting:
    """Span structure of one traced ML run mirrors the hierarchy."""

    @pytest.fixture
    def run(self, medium_hg):
        buffer = BufferTracer()
        with tracing(buffer):
            result = ml_bipartition(medium_hg, seed=3)
        return result, buffer.events

    def test_one_span_per_level(self, run):
        result, events = run
        assert len(_events_named(events, "coarsen.level")) == result.levels
        assert len(_events_named(events, "ml.refine.level")) == result.levels
        assert len(_events_named(events, "ml.coarsen")) == 1
        assert len(_events_named(events, "ml.initial")) == 1
        assert len(_events_named(events, "ml.bipartition")) == 1

    def test_depths_match_hierarchy(self, run):
        _, events = run
        expected = {"ml.bipartition": 0, "ml.coarsen": 1, "ml.initial": 1,
                    "ml.refine.level": 1, "coarsen.level": 2, "fm.pass": 3}
        for name, depth in expected.items():
            for event in _events_named(events, name):
                assert event["args"]["depth"] == depth, name

    def test_level_spans_carry_structure(self, run):
        result, events = run
        levels = _events_named(events, "coarsen.level")
        assert [e["args"]["level"] for e in levels] == \
            list(range(1, result.levels + 1))
        for event in levels:
            args = event["args"]
            assert args["coarse_modules"] < args["modules"]
            assert 0.0 < args["achieved_ratio"] <= 1.0
        refine = _events_named(events, "ml.refine.level")
        # Refinement walks coarsest-to-finest.
        assert [e["args"]["level"] for e in refine] == \
            list(range(result.levels - 1, -1, -1))
        assert refine[-1]["args"]["modules"] == 300

    def test_spans_nest_by_interval(self, run):
        _, events = run
        top = _events_named(events, "ml.bipartition")[0]
        lo, hi = top["ts"], top["ts"] + top["dur"]
        for event in events:
            if event.get("ph") == "X":
                assert lo <= event["ts"]
                assert event["ts"] + event["dur"] <= hi


class TestCrossModeTelemetry:
    """fm.pass counters are identical under both kernel modes."""

    @pytest.mark.parametrize("engine_seed", [2, 11])
    def test_pass_counters_identical(self, medium_hg, engine_seed):
        captured = {}
        for mode in ("reference", "csr"):
            buffer = BufferTracer()
            with use_kernels(mode), tracing(buffer):
                result = fm_bipartition(medium_hg, seed=engine_seed)
            captured[mode] = (result.cut,
                              [e["args"] for e in
                               _events_named(buffer.events, "fm.pass")])
        ref_cut, ref_passes = captured["reference"]
        csr_cut, csr_passes = captured["csr"]
        assert ref_cut == csr_cut
        assert len(ref_passes) >= 1
        assert ref_passes == csr_passes
        for args in ref_passes:
            assert args["moves_attempted"] >= args["moves_committed"]
            assert args["rollback_depth"] == (args["moves_attempted"]
                                              - args["moves_committed"])
            assert args["gain"] == args["cut_before"] - args["cut_after"]


@pytest.mark.parallel
class TestMultiprocessMerge:
    @staticmethod
    def _trace_run(path, jobs):
        # A fresh, identical circuit per run: the CSR build spans depend
        # on cache state, so sharing one Hypergraph across runs would
        # make the event sets differ for cache (not determinism) reasons.
        hg = hierarchical_circuit(150, 180, seed=9, name="smoke")
        portfolio = Portfolio(_ml(), hg, runs=4, seed=0, trace=str(path))
        outcome = execute(portfolio, jobs=jobs)
        return outcome, list(read_trace(path))

    @staticmethod
    def _canonical(events):
        out = []
        for event in events:
            if event.get("ph") == "M":
                continue
            args = dict(event.get("args", {}))
            args.pop("worker", None)  # scheduling-dependent
            out.append((event["name"], event["ph"],
                        json.dumps(args, sort_keys=True)))
        return sorted(out)

    def test_merge_deterministic_and_worker_tagged(self, tmp_path):
        outcome_a, events_a = self._trace_run(tmp_path / "a.jsonl", jobs=2)
        outcome_b, events_b = self._trace_run(tmp_path / "b.jsonl", jobs=2)
        assert outcome_a.fingerprint() == outcome_b.fingerprint()
        assert self._canonical(events_a) == self._canonical(events_b)

        starts = _events_named(events_a, "portfolio.start")
        assert len(starts) == 4
        assert all(e["args"]["worker"].startswith("pid:") for e in starts)
        # Events from all worker processes landed in one file, with
        # timestamps normalised against a single epoch.
        assert len({e["pid"] for e in starts}) >= 2
        assert all(e["ts"] >= 0 for e in events_a)

    def test_parallel_trace_matches_serial_outcomes(self, tmp_path):
        outcome_s, events_s = self._trace_run(tmp_path / "s.jsonl", jobs=1)
        outcome_p, events_p = self._trace_run(tmp_path / "p.jsonl", jobs=2)
        assert outcome_s.fingerprint() == outcome_p.fingerprint()
        cuts = sorted(e["args"]["cut"]
                      for e in _events_named(events_p, "portfolio.start"))
        assert cuts == sorted(outcome_p.cuts)


class TestRetryTelemetry:
    def test_failed_attempts_traced_with_backoff(self, medium_hg):
        buffer = BufferTracer()
        portfolio = Portfolio(_always_failing(), medium_hg, runs=1, seed=0,
                              retries=1, backoff_seconds=0.001, trace=True)
        with tracing(buffer):
            outcome = execute(portfolio, jobs=1)
        assert outcome.records[0].status == "failed"
        starts = _events_named(buffer.events, "portfolio.start")
        assert [e["args"]["attempt"] for e in starts] == [1, 2]
        assert all(e["args"]["status"] == "failed" for e in starts)
        backoffs = _events_named(buffer.events, "portfolio.backoff")
        assert len(backoffs) == 1
        assert backoffs[0]["args"]["attempt"] == 2


class TestMetrics:
    def test_disabled_by_default(self):
        mx = metrics()
        assert not mx.enabled
        mx.counter("x", "noop").inc()  # harmless

    def test_fm_metrics_collected_and_rendered(self, medium_hg):
        with collecting_metrics() as registry:
            fm_bipartition(medium_hg, seed=1)
        text = registry.render_prometheus()
        assert "# TYPE repro_fm_runs_total counter" in text
        assert "# TYPE repro_fm_run_seconds histogram" in text
        assert 'repro_fm_runs_total{mode="' in text
        assert "repro_fm_run_seconds_bucket" in text
        assert text.endswith("\n")

    def test_merge_adds_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total", "h", k="v").inc(2)
        b.counter("c_total", "h", k="v").inc(3)
        b.histogram("h_seconds", "h").observe(0.5)
        a.merge(b.snapshot())
        assert a.counter("c_total", "h", k="v").value == 5
        assert a.histogram("h_seconds", "h").count == 1

    def test_portfolio_counters_merge_from_workers(self, medium_hg):
        with collecting_metrics() as registry:
            run_cell(_ml(), medium_hg, runs=2, seed=0)
        text = registry.render_prometheus()
        assert 'repro_portfolio_starts_total{status="ok"} 2' in text


class TestSurfaceAPI:
    def test_run_cell_trace_and_metrics_out(self, medium_hg, tmp_path):
        trace_path = tmp_path / "cell.trace.jsonl"
        metrics_path = tmp_path / "cell.metrics.txt"
        stats = run_cell(_ml(), medium_hg, runs=2, seed=0,
                         trace=str(trace_path),
                         metrics_out=str(metrics_path))
        plain = run_cell(_ml(), medium_hg, runs=2, seed=0)
        assert stats.cuts == plain.cuts  # observability changes nothing
        events = list(read_trace(trace_path))
        assert _events_named(events, "portfolio.start")
        assert "repro_portfolio_starts_total" in metrics_path.read_text()

    def test_trace_summary_output(self, medium_hg, tmp_path):
        trace_path = tmp_path / "run.trace.jsonl"
        run_cell(_ml(), medium_hg, runs=2, seed=0, trace=str(trace_path))
        summary = summarize_trace(trace_path)
        rendered = summary.render()
        assert "phase" in rendered
        assert "ml.bipartition" in rendered
        assert "cut by level" in rendered
        assert "portfolio: 2 finished start(s)" in rendered

    def test_trace_summary_cli(self, medium_hg, tmp_path, capsys):
        from repro.cli import main
        trace_path = tmp_path / "run.trace.jsonl"
        run_cell(_ml(), medium_hg, runs=1, seed=0, trace=str(trace_path))
        assert main(["trace-summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "fm.pass" in out

    def test_portfolio_trace_validation(self, medium_hg):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            Portfolio(_ml(), medium_hg, runs=1, trace=3.14)


class TestLogging:
    def test_hierarchy_and_default_silence(self):
        log = get_logger("runtime.executor")
        assert log.name == "repro.runtime.executor"
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)

    def test_configure_levels_and_idempotence(self):
        root = logging.getLogger("repro")

        def cli_handlers():
            return [h for h in root.handlers
                    if getattr(h, "_repro_cli_handler", False)]

        try:
            configure_logging(verbosity=1)
            assert root.level == logging.INFO
            configure_logging(verbosity=2)
            assert root.level == logging.DEBUG
            configure_logging(level="WARNING")
            assert root.level == logging.WARNING
            assert len(cli_handlers()) == 1
        finally:
            for handler in cli_handlers():
                root.removeHandler(handler)
            root.setLevel(logging.NOTSET)

    def test_retry_notice_logged(self, medium_hg, caplog):
        portfolio = Portfolio(_always_failing(), medium_hg, runs=1, seed=0,
                              retries=1)
        with caplog.at_level(logging.INFO, logger="repro"):
            execute(portfolio, jobs=1)
        assert any("retrying start 0" in r.message for r in caplog.records)


class TestTraceToleranceRules:
    """The checkpoint tolerance rules, applied to trace reading: a
    truncated *final* line is a crash signature and is dropped;
    corruption anywhere else raises a clean error; unknown or
    malformed events never crash the summary."""

    def test_empty_trace_summarizes_to_notice(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize_trace(path)
        assert summary.events == 0
        assert "no events" in summary.render()

    def test_header_only_trace(self, tmp_path):
        path = tmp_path / "header.jsonl"
        path.write_text("[\n")
        assert list(read_trace(path)) == []
        assert "no events" in summarize_trace(path).render()

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text(
            '{"name": "a", "ph": "X", "ts": 0, "dur": 5}\n'
            '{"name": "b", "ph": "X", "ts": 5, "du')
        events = list(read_trace(path))
        assert [e["name"] for e in events] == ["a"]
        assert summarize_trace(path).events == 1

    def test_midfile_corruption_raises(self, tmp_path):
        from repro.errors import ReproError
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"name": "a", "ph": "X", "ts": 0, "dur": 5}\n'
            '{"name": "b", "ph": "X", bad\n'
            '{"name": "c", "ph": "X", "ts": 9, "dur": 1}\n')
        with pytest.raises(ReproError, match="line 2"):
            list(read_trace(path))

    def test_unknown_event_shapes_tolerated(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text("\n".join([
            '{"name": "a", "ph": "X", "ts": 0, "dur": 5}',
            '"just a string"',
            '{"ph": "X", "dur": "not-a-number", "args": "not-a-dict"}',
            '{"name": "mystery", "ph": "Z"}',
            '{"name": "ml.initial", "ph": "X", "ts": 1, "dur": 1,'
            ' "args": {"cut": 3, "modules": "many"}}',
        ]) + "\n")
        summary = summarize_trace(path)  # must not raise
        assert summary.events == 4  # the bare string is not an event
        assert summary.phases["a"].total_us == 5
        # Non-int dur coerces to 0; the event still counts.
        assert summary.phases["?"].count == 1

    def test_trace_summary_cli_empty_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "empty.trace.jsonl"
        path.write_text("")
        assert main(["trace-summary", str(path)]) == 0
        assert "no events" in capsys.readouterr().out
