"""Tests for Krishnamurthy-style lookahead selection."""

import pytest

from repro.errors import ConfigError
from repro.fm import FMConfig, fm_bipartition
from repro.fm.engine import _lookahead_vector
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import (BalanceConstraint, Partition, PartitionState,
                             cut)
from repro.rng import child_seeds


class TestConfig:
    def test_default_off(self):
        assert FMConfig().lookahead == 1

    def test_bounds(self):
        with pytest.raises(ConfigError):
            FMConfig(lookahead=0)
        with pytest.raises(ConfigError):
            FMConfig(lookahead=9)

    def test_cl_la3_combination_valid(self):
        config = FMConfig(clip=True, lookahead=3)
        assert config.clip and config.lookahead == 3


class TestLookaheadVector:
    def test_positive_term(self):
        """Net {0,1} entirely in A with both free: moving 0 then 1
        uncuts into B -> +1 at level 2 for module 0."""
        hg = Hypergraph([[0, 1]], num_modules=2)
        state = PartitionState(hg, Partition([0, 0], 2))
        locked = [[0] * hg.num_nets, [0] * hg.num_nets]
        assert _lookahead_vector(state, locked, 0, depth=2) == (1,)

    def test_negative_term(self):
        """Net {0,1} with 1 free in B: moving 0 to B destroys the
        potential of 1 escaping to A -> -1 at level 2."""
        hg = Hypergraph([[0, 1]], num_modules=2)
        state = PartitionState(hg, Partition([0, 1], 2))
        locked = [[0] * hg.num_nets, [0] * hg.num_nets]
        assert _lookahead_vector(state, locked, 0, depth=2) == (-1,)

    def test_locked_pin_blocks_positive(self):
        """A locked A pin on the net makes it un-uncuttable."""
        hg = Hypergraph([[0, 1]], num_modules=2)
        state = PartitionState(hg, Partition([0, 0], 2))
        locked = [[0] * hg.num_nets, [0] * hg.num_nets]
        locked[0][0] = 1  # one of the A pins is locked
        assert _lookahead_vector(state, locked, 0, depth=2) == (0,)

    def test_depth_extends_vector(self):
        hg = Hypergraph([[0, 1, 2]], num_modules=3)
        state = PartitionState(hg, Partition([0, 0, 0], 2))
        locked = [[0] * hg.num_nets, [0] * hg.num_nets]
        # 3 free A pins: positive at level 3 only
        assert _lookahead_vector(state, locked, 0, depth=4) == (0, 1, 0)

    def test_weighted(self):
        hg = Hypergraph([[0, 1]], num_modules=2, net_weights=[5])
        state = PartitionState(hg, Partition([0, 0], 2))
        locked = [[0] * hg.num_nets, [0] * hg.num_nets]
        assert _lookahead_vector(state, locked, 0, depth=2) == (5,)


class TestLookaheadEngine:
    @pytest.mark.parametrize("clip", [False, True])
    def test_valid_solutions(self, medium_hg, clip):
        config = FMConfig(clip=clip, lookahead=3)
        result = fm_bipartition(medium_hg, config=config, seed=1)
        assert result.cut == cut(medium_hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_deterministic(self, medium_hg):
        config = FMConfig(lookahead=2)
        assert fm_bipartition(medium_hg, config=config, seed=2).cut == \
            fm_bipartition(medium_hg, config=config, seed=2).cut

    def test_changes_trajectory(self, medium_hg):
        """Lookahead must actually alter selection on some seeds."""
        seeds = child_seeds(3, 6)
        plain = [fm_bipartition(medium_hg, seed=s).cut for s in seeds]
        ahead = [fm_bipartition(medium_hg, config=FMConfig(lookahead=3),
                                seed=s).cut for s in seeds]
        assert plain != ahead

    def test_boundary_plus_lookahead(self, medium_hg):
        """Boundary mode and lookahead compose."""
        config = FMConfig(boundary=True, lookahead=2)
        result = fm_bipartition(medium_hg, config=config, seed=9)
        assert result.cut == cut(medium_hg, result.partition)

    def test_cl_la3_helps_clip(self):
        """The Dutt-Deng phenomenon the paper cites: lookahead's impact
        'increases dramatically when using CLIP'."""
        hg = hierarchical_circuit(800, 960, seed=55)
        seeds = child_seeds(4, 6)
        clip = [fm_bipartition(hg, config=FMConfig(clip=True), seed=s).cut
                for s in seeds]
        cl_la3 = [fm_bipartition(hg, config=FMConfig(clip=True,
                                                     lookahead=3),
                                 seed=s).cut for s in seeds]
        assert sum(cl_la3) <= sum(clip)
