"""Tests for the comparator algorithms (LSMC, two-phase, spectral,
GORDIAN-sim, PROP)."""

import pytest

from repro.baselines import (gordian_bipartition, gordian_quadrisection,
                             kick, lsmc_bipartition, lsmc_kway,
                             perimeter_positions, prop_bipartition,
                             quadratic_placement, spectral_bipartition,
                             two_phase_fm)
from repro.baselines.spectral import clique_laplacian, fiedler_vector
from repro.errors import ConfigError, PartitionError
from repro.fm import FMConfig, fm_bipartition
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import BalanceConstraint, Partition, cut
from repro.rng import child_seeds, make_rng


class TestKick:
    def test_moves_requested_fraction(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=2)
        kicked = kick(medium_hg, p, make_rng(0), fraction=0.2)
        moved = sum(1 for a, b in zip(p.assignment, kicked.assignment)
                    if a != b)
        assert moved == round(0.2 * medium_hg.num_modules)

    def test_kway_targets_differ(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=4)
        kicked = kick(medium_hg, p, make_rng(1), fraction=0.5)
        assert set(kicked.assignment) > {0}

    def test_input_unmodified(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=2)
        kick(medium_hg, p, make_rng(2))
        assert set(p.assignment) == {0}

    def test_bad_fraction(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=2)
        with pytest.raises(ConfigError):
            kick(medium_hg, p, make_rng(0), fraction=0.0)


class TestLSMC:
    def test_valid_and_balanced(self, medium_hg):
        result = lsmc_bipartition(medium_hg, descents=5, seed=1)
        assert result.cut == cut(medium_hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_descent_count_recorded(self, medium_hg):
        result = lsmc_bipartition(medium_hg, descents=4, seed=2)
        assert result.descents == 4
        assert len(result.descent_cuts) == 4

    def test_best_is_min_descent(self, medium_hg):
        result = lsmc_bipartition(medium_hg, descents=6, seed=3)
        assert result.cut == min(result.descent_cuts)

    def test_more_descents_never_worse(self, medium_hg):
        few = lsmc_bipartition(medium_hg, descents=2, seed=4)
        many = lsmc_bipartition(medium_hg, descents=8, seed=4)
        assert many.cut <= few.cut

    def test_beats_single_fm_on_average(self, medium_hg):
        seeds = child_seeds(5, 4)
        fm_avg = sum(fm_bipartition(medium_hg, seed=s).cut
                     for s in seeds) / len(seeds)
        lsmc_avg = sum(lsmc_bipartition(medium_hg, descents=6, seed=s).cut
                       for s in seeds) / len(seeds)
        assert lsmc_avg <= fm_avg

    def test_zero_descents_rejected(self, medium_hg):
        with pytest.raises(ConfigError):
            lsmc_bipartition(medium_hg, descents=0)

    def test_kway_variant(self, medium_hg):
        result = lsmc_kway(medium_hg, k=4, descents=3, seed=6)
        assert result.cut == cut(medium_hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1, k=4)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_kway_clip_engine(self, medium_hg):
        result = lsmc_kway(medium_hg, k=4, descents=3,
                           config=FMConfig(clip=True), seed=7)
        assert result.cut == cut(medium_hg, result.partition)


class TestTwoPhase:
    def test_valid_and_balanced(self, medium_hg):
        result = two_phase_fm(medium_hg, seed=1)
        assert result.cut == cut(medium_hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_deterministic(self, medium_hg):
        assert two_phase_fm(medium_hg, seed=2).cut == \
            two_phase_fm(medium_hg, seed=2).cut

    def test_degenerate_netlist_falls_back(self):
        """All-isolated modules cannot be matched: plain FM runs."""
        hg = Hypergraph([[0, 1]], num_modules=2)
        result = two_phase_fm(hg, seed=0)
        assert result.cut in (0, 1)


class TestSpectral:
    def test_laplacian_rows_sum_to_zero(self, medium_hg):
        import numpy as np
        laplacian = clique_laplacian(medium_hg)
        sums = np.asarray(laplacian.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0)

    def test_fiedler_orthogonal_to_ones(self, medium_hg):
        import numpy as np
        fiedler = fiedler_vector(medium_hg, seed=0)
        assert abs(np.dot(fiedler, np.ones(len(fiedler)))) < 1e-4 * \
            np.linalg.norm(fiedler) * len(fiedler) ** 0.5

    def test_raw_split_balanced(self, medium_hg):
        result = spectral_bipartition(medium_hg, refine=False, seed=1)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_refined_not_worse(self, medium_hg):
        raw = spectral_bipartition(medium_hg, refine=False, seed=2)
        refined = spectral_bipartition(medium_hg, refine=True, seed=2)
        assert refined.cut <= raw.cut

    def test_good_on_planted_structure(self):
        hg = hierarchical_circuit(400, 500, locality=0.9, seed=9)
        spectral = spectral_bipartition(hg, refine=False, seed=3).cut
        from repro.partition import random_partition
        random_cut = cut(hg, random_partition(hg, seed=3))
        assert spectral < 0.7 * random_cut

    def test_tiny_instance(self):
        hg = Hypergraph([[0, 1]], num_modules=2)
        result = spectral_bipartition(hg, refine=False, seed=0)
        assert result.partition.part_sizes() == [1, 1]


class TestGordian:
    def test_perimeter_positions_on_border(self):
        for x, y in perimeter_positions(17):
            assert x in (0.0, 1.0) or y in (0.0, 1.0)
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_perimeter_rejects_zero(self):
        with pytest.raises(PartitionError):
            perimeter_positions(0)

    def test_placement_anchors_pads(self, medium_hg):
        pads = [0, 5, 10, 15]
        positions = perimeter_positions(4)
        x, y = quadratic_placement(medium_hg, pads, positions)
        for pad, (px, py) in zip(pads, positions):
            assert x[pad] == px and y[pad] == py

    def test_placement_inside_hull(self, medium_hg):
        pads = list(range(0, medium_hg.num_modules, 17))
        x, y = quadratic_placement(medium_hg, pads,
                                   perimeter_positions(len(pads)))
        assert x.min() >= -1e-9 and x.max() <= 1 + 1e-9
        assert y.min() >= -1e-9 and y.max() <= 1 + 1e-9

    def test_duplicate_pads_rejected(self, medium_hg):
        with pytest.raises(PartitionError, match="duplicate"):
            quadratic_placement(medium_hg, [0, 0],
                                perimeter_positions(2))

    def test_pad_position_mismatch(self, medium_hg):
        with pytest.raises(PartitionError):
            quadratic_placement(medium_hg, [0, 1], perimeter_positions(3))

    def test_bipartition_halves_area(self, medium_hg):
        result = gordian_bipartition(medium_hg, seed=1)
        areas = result.partition.part_areas(medium_hg)
        assert abs(areas[0] - areas[1]) <= medium_hg.max_area

    def test_quadrisection_quarters(self, medium_hg):
        result = gordian_quadrisection(medium_hg, seed=2)
        sizes = result.partition.part_sizes()
        assert max(sizes) - min(sizes) <= 2
        assert result.cut == cut(medium_hg, result.partition)

    def test_quadrisection_rejects_tiny(self):
        hg = Hypergraph([[0, 1]], num_modules=2)
        with pytest.raises(PartitionError):
            gordian_quadrisection(hg, seed=0)

    def test_deterministic(self, medium_hg):
        a = gordian_quadrisection(medium_hg, seed=3)
        b = gordian_quadrisection(medium_hg, seed=3)
        assert a.partition == b.partition


class TestProp:
    def test_valid_and_balanced(self, medium_hg):
        result = prop_bipartition(medium_hg, seed=1)
        assert result.cut == cut(medium_hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_improves_on_initial(self, medium_hg):
        result = prop_bipartition(medium_hg, seed=2)
        assert result.cut <= result.initial_cut

    def test_deterministic(self, medium_hg):
        assert prop_bipartition(medium_hg, seed=3).cut == \
            prop_bipartition(medium_hg, seed=3).cut

    def test_finds_planted_bridge(self, tiny_hg):
        assert prop_bipartition(tiny_hg, seed=0).cut == 1

    def test_bad_probability(self, medium_hg):
        with pytest.raises(PartitionError):
            prop_bipartition(medium_hg, initial_probability=1.0)
