"""Tests for assignment-file I/O and the evaluate CLI flow."""

import pytest

from repro.cli import main
from repro.errors import ParseError
from repro.hypergraph import load_circuit, write_hmetis
from repro.partition import Partition, read_assignment, write_assignment


class TestAssignmentIO:
    def test_roundtrip(self, tmp_path):
        p = Partition([0, 1, 1, 0, 2], k=3)
        path = tmp_path / "parts.txt"
        write_assignment(p, path)
        back = read_assignment(path, k=3)
        assert back == p

    def test_k_inferred(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\n2\n1\n")
        assert read_assignment(path).k == 3

    def test_k_floor_two(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\n0\n")
        assert read_assignment(path).k == 2

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\n\n1\n\n")
        assert read_assignment(path).num_modules == 2

    def test_k_too_small(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\n3\n")
        with pytest.raises(ParseError, match="k=2"):
            read_assignment(path, k=2)

    def test_module_count_validated(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\n1\n")
        with pytest.raises(ParseError, match="covers 2"):
            read_assignment(path, num_modules=5)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("0\nx\n")
        with pytest.raises(ParseError, match="non-integer"):
            read_assignment(path)

    def test_negative(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("-1\n0\n")
        with pytest.raises(ParseError, match="negative"):
            read_assignment(path)

    def test_empty(self, tmp_path):
        path = tmp_path / "parts.txt"
        path.write_text("\n")
        with pytest.raises(ParseError, match="empty"):
            read_assignment(path)


class TestEvaluateCommand:
    @pytest.fixture
    def setup(self, tmp_path):
        hg = load_circuit("struct", scale=0.05, seed=0)
        netlist = tmp_path / "c.hgr"
        write_hmetis(hg, netlist)
        parts = tmp_path / "parts.txt"
        assignment = [v % 2 for v in range(hg.num_modules)]
        parts.write_text("\n".join(map(str, assignment)) + "\n")
        return str(netlist), str(parts)

    def test_prints_metrics(self, setup, capsys):
        netlist, parts = setup
        assert main(["evaluate", netlist, parts]) == 0
        out = capsys.readouterr().out
        for field in ("cut:", "soed:", "absorption:", "ratio cut:",
                      "balanced:"):
            assert field in out

    def test_partition_then_evaluate_consistent(self, setup, tmp_path,
                                                capsys):
        netlist, _ = setup
        out_path = tmp_path / "mine.txt"
        main(["partition", netlist, "--output", str(out_path)])
        partition_out = capsys.readouterr().out
        reported = int(partition_out.split("min cut:")[1].split()[0])
        main(["evaluate", netlist, str(out_path)])
        evaluated = int(capsys.readouterr().out
                        .split("cut:")[1].split()[0])
        assert evaluated == reported

    def test_wrong_length_assignment(self, setup, tmp_path, capsys):
        netlist, _ = setup
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n1\n")
        assert main(["evaluate", netlist, str(bad)]) == 2
        assert "error" in capsys.readouterr().err
