"""Tests for hMETIS / JSON netlist I/O."""

import pytest

from repro.errors import ParseError
from repro.hypergraph import (Hypergraph, assert_same_structure,
                              hierarchical_circuit, read_are, read_hmetis,
                              read_json, read_netd, write_hmetis,
                              write_json)


class TestHmetisRead:
    def test_unweighted(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("3 4\n1 2\n2 3 4\n1 4\n")
        hg = read_hmetis(path)
        assert hg.num_nets == 3
        assert hg.num_modules == 4
        assert hg.pins(1) == (1, 2, 3)
        assert hg.is_unit_area()

    def test_weighted_nets(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("2 3 1\n5 1 2\n7 2 3\n")
        hg = read_hmetis(path)
        assert hg.net_weight(0) == 5
        assert hg.net_weight(1) == 7

    def test_weighted_modules(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("1 2 10\n1 2\n3\n4\n")
        hg = read_hmetis(path)
        assert hg.area(0) == 3.0
        assert hg.area(1) == 4.0

    def test_fully_weighted(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("1 2 11\n9 1 2\n2\n5\n")
        hg = read_hmetis(path)
        assert hg.net_weight(0) == 9
        assert hg.area(1) == 5.0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("% comment\n\n2 2\n% another\n1 2\n\n2 1\n")
        hg = read_hmetis(path)
        assert hg.num_nets == 2

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mycirc.hgr"
        path.write_text("1 2\n1 2\n")
        assert read_hmetis(path).name == "mycirc"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("")
        with pytest.raises(ParseError, match="empty"):
            read_hmetis(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("2\n")
        with pytest.raises(ParseError, match="header"):
            read_hmetis(path)

    def test_bad_fmt_code(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("1 2 7\n1 2\n")
        with pytest.raises(ParseError, match="fmt"):
            read_hmetis(path)

    def test_pin_out_of_range(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("1 2\n1 3\n")
        with pytest.raises(ParseError, match="out of range"):
            read_hmetis(path)

    def test_truncated_nets(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("2 3\n1 2\n")
        with pytest.raises(ParseError, match="expected 2 net lines"):
            read_hmetis(path)

    def test_non_integer_pin(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("1 2\n1 x\n")
        with pytest.raises(ParseError, match="non-integer"):
            read_hmetis(path)


class TestRoundtrips:
    def test_hmetis_roundtrip_plain(self, tmp_path, tiny_hg):
        path = tmp_path / "t.hgr"
        write_hmetis(tiny_hg, path)
        assert_same_structure(tiny_hg, read_hmetis(path))

    def test_hmetis_roundtrip_weighted(self, tmp_path, weighted_hg):
        path = tmp_path / "w.hgr"
        write_hmetis(weighted_hg, path)
        assert_same_structure(weighted_hg, read_hmetis(path))

    def test_hmetis_roundtrip_generated(self, tmp_path):
        hg = hierarchical_circuit(150, 180, seed=6)
        path = tmp_path / "g.hgr"
        write_hmetis(hg, path)
        assert_same_structure(hg, read_hmetis(path))

    def test_json_roundtrip(self, tmp_path, weighted_hg):
        path = tmp_path / "w.json"
        write_json(weighted_hg, path)
        loaded = read_json(path)
        assert_same_structure(weighted_hg, loaded)
        assert loaded.name == "weighted"

    def test_json_missing_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nets": [[0, 1]]}')
        with pytest.raises(ParseError, match="num_modules"):
            read_json(path)

    def test_json_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ParseError, match="invalid JSON"):
            read_json(path)


_NETD = """\
0
4
2
3
0
a0 s B
a1 l B
a1 s B
a2 l B
"""


class TestNetdNegative:
    """Malformed netD inputs must surface as ParseError, never as a
    raw KeyError/ValueError from deep inside the builder."""

    def _write(self, tmp_path, text):
        path = tmp_path / "c.netD"
        path.write_text(text)
        return path

    def test_valid_baseline_parses(self, tmp_path):
        hg = read_netd(self._write(tmp_path, _NETD))
        assert hg.num_modules == 3
        assert hg.num_nets == 2

    def test_too_few_header_lines(self, tmp_path):
        with pytest.raises(ParseError, match="5 header lines"):
            read_netd(self._write(tmp_path, "0\n4\n2\n"))

    def test_non_integer_header(self, tmp_path):
        bad = _NETD.replace("\n4\n", "\nx\n", 1)
        with pytest.raises(ParseError, match="non-integer header"):
            read_netd(self._write(tmp_path, bad))

    def test_bad_pin_marker(self, tmp_path):
        bad = _NETD.replace("a1 l B", "a1 x B", 1)
        with pytest.raises(ParseError, match="marker"):
            read_netd(self._write(tmp_path, bad))

    def test_missing_marker_column(self, tmp_path):
        bad = _NETD.replace("a1 l B", "a1", 1)
        with pytest.raises(ParseError, match="expected '<name> <s"):
            read_netd(self._write(tmp_path, bad))

    def test_continuation_before_any_net(self, tmp_path):
        bad = _NETD.replace("a0 s B", "a0 l B", 1)
        with pytest.raises(ParseError, match="continuation pin"):
            read_netd(self._write(tmp_path, bad))

    def test_pin_count_mismatch(self, tmp_path):
        bad = _NETD.replace("\n4\n", "\n5\n", 1)
        with pytest.raises(ParseError, match="5 pins"):
            read_netd(self._write(tmp_path, bad))

    def test_net_count_mismatch(self, tmp_path):
        bad = _NETD.replace("\n2\n3\n", "\n3\n3\n", 1)
        with pytest.raises(ParseError, match="declares 3 nets"):
            read_netd(self._write(tmp_path, bad))

    def test_module_count_exceeded(self, tmp_path):
        bad = _NETD.replace("\n3\n0\n", "\n2\n0\n", 1)
        with pytest.raises(ParseError, match="declares 2 modules"):
            read_netd(self._write(tmp_path, bad))


class TestAreNegative:
    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "c.are"
        path.write_text("a0 1 extra\n")
        with pytest.raises(ParseError, match="<name> <area>"):
            read_are(path)

    def test_non_numeric_area(self, tmp_path):
        path = tmp_path / "c.are"
        path.write_text("a0 big\n")
        with pytest.raises(ParseError, match="non-numeric"):
            read_are(path)

    def test_non_positive_area(self, tmp_path):
        path = tmp_path / "c.are"
        path.write_text("a0 0\n")
        with pytest.raises(ParseError, match="non-positive"):
            read_are(path)


class TestJsonNegative:
    """read_json wraps *every* malformed-input failure as ParseError —
    the CLI error contract for this format matches hMETIS and netD."""

    def _write(self, tmp_path, text):
        path = tmp_path / "bad.json"
        path.write_text(text)
        return path

    def test_syntax_error_carries_line_number(self, tmp_path):
        path = self._write(tmp_path,
                           '{\n  "num_modules": 2,\n  nope\n}')
        with pytest.raises(ParseError, match="line 3") as excinfo:
            read_json(path)
        assert excinfo.value.line == 3

    def test_non_object_top_level(self, tmp_path):
        with pytest.raises(ParseError, match="must be an object"):
            read_json(self._write(tmp_path, "[1, 2, 3]"))

    def test_nets_not_a_list(self, tmp_path):
        path = self._write(tmp_path, '{"num_modules": 2, "nets": 5}')
        with pytest.raises(ParseError, match="malformed netlist JSON"):
            read_json(path)

    def test_pin_out_of_range(self, tmp_path):
        path = self._write(tmp_path,
                           '{"num_modules": 2, "nets": [[0, 5]]}')
        with pytest.raises(ParseError):
            read_json(path)

    def test_mismatched_weight_vector(self, tmp_path):
        path = self._write(
            tmp_path,
            '{"num_modules": 2, "nets": [[0, 1]], "net_weights": [1, 2]}')
        with pytest.raises(ParseError):
            read_json(path)
