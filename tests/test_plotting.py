"""Tests for the terminal chart renderer."""

import pytest

from repro.errors import ConfigError
from repro.harness import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart([0, 1, 2], {"s": [0.0, 1.0, 2.0]},
                            width=20, height=5)
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert lines[-1] == "* s"

    def test_title_and_labels(self):
        chart = ascii_chart([0, 1], {"a": [1, 2]}, title="T",
                            x_label="xs", y_label="ys")
        assert chart.splitlines()[0] == "T"
        assert "xs" in chart
        assert "ys" in chart

    def test_extremes_on_grid_edges(self):
        chart = ascii_chart([0, 10], {"a": [5, 50]}, width=30, height=6)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "*" in rows[0]       # y max on the top row
        assert "*" in rows[-1]      # y min on the bottom row

    def test_y_ticks_present(self):
        chart = ascii_chart([0, 1], {"a": [3, 9]}, width=15, height=5)
        assert "9" in chart
        assert "3" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart([0, 1], {"a": [0, 1], "b": [1, 0]},
                            width=15, height=5)
        assert "* a" in chart
        assert "o b" in chart

    def test_flat_series_ok(self):
        chart = ascii_chart([0, 1, 2], {"a": [4, 4, 4]},
                            width=15, height=5)
        grid = "".join(line for line in chart.splitlines() if "|" in line)
        assert grid.count("*") == 3

    def test_single_point(self):
        chart = ascii_chart([1], {"a": [2]}, width=15, height=5)
        assert "*" in chart

    def test_errors(self):
        with pytest.raises(ConfigError):
            ascii_chart([], {"a": []})
        with pytest.raises(ConfigError):
            ascii_chart([1], {})
        with pytest.raises(ConfigError):
            ascii_chart([1, 2], {"a": [1]})
        with pytest.raises(ConfigError):
            ascii_chart([1], {"a": [1]}, width=5, height=2)
