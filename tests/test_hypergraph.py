"""Unit tests for the Hypergraph representation."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph


class TestConstruction:
    def test_basic_counts(self, tiny_hg):
        assert tiny_hg.num_modules == 6
        assert tiny_hg.num_nets == 7
        assert tiny_hg.num_pins == 14

    def test_default_unit_areas(self, tiny_hg):
        assert tiny_hg.is_unit_area()
        assert tiny_hg.total_area == 6.0
        assert tiny_hg.max_area == 1.0

    def test_default_unit_weights(self, tiny_hg):
        assert all(tiny_hg.net_weight(e) == 1 for e in tiny_hg.all_nets())
        assert tiny_hg.total_net_weight == tiny_hg.num_nets

    def test_explicit_areas_and_weights(self, weighted_hg):
        assert weighted_hg.area(3) == 4.0
        assert weighted_hg.total_area == 10.0
        assert weighted_hg.max_area == 4.0
        assert weighted_hg.net_weight(2) == 3
        assert weighted_hg.total_net_weight == 6

    def test_num_modules_inferred(self):
        hg = Hypergraph([[0, 5]])
        assert hg.num_modules == 6

    def test_num_modules_explicit_larger(self):
        hg = Hypergraph([[0, 1]], num_modules=4)
        assert hg.num_modules == 4
        assert hg.degree(3) == 0

    def test_duplicate_pins_collapsed(self):
        hg = Hypergraph([[0, 1, 0, 1, 2]])
        assert hg.net_size(0) == 3
        assert hg.pins(0) == (0, 1, 2)

    def test_pin_order_preserved(self):
        hg = Hypergraph([[2, 0, 1]])
        assert hg.pins(0) == (2, 0, 1)

    def test_rejects_singleton_net(self):
        with pytest.raises(HypergraphError, match="at least two"):
            Hypergraph([[0]], num_modules=2)

    def test_rejects_net_collapsing_to_singleton(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[1, 1, 1]], num_modules=2)

    def test_rejects_negative_module(self):
        with pytest.raises(HypergraphError, match="negative"):
            Hypergraph([[-1, 0]])

    def test_rejects_out_of_range_pin(self):
        with pytest.raises(HypergraphError, match="num_modules"):
            Hypergraph([[0, 7]], num_modules=3)

    def test_rejects_bad_area_length(self):
        with pytest.raises(HypergraphError, match="areas"):
            Hypergraph([[0, 1]], num_modules=2, areas=[1.0])

    def test_rejects_nonpositive_area(self):
        with pytest.raises(HypergraphError, match="non-positive area"):
            Hypergraph([[0, 1]], num_modules=2, areas=[1.0, 0.0])

    def test_rejects_bad_weight_length(self):
        with pytest.raises(HypergraphError, match="net_weights"):
            Hypergraph([[0, 1]], num_modules=2, net_weights=[1, 2])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(HypergraphError, match="non-positive weight"):
            Hypergraph([[0, 1]], num_modules=2, net_weights=[0])


class TestAccessors:
    def test_nets_of_module(self, tiny_hg):
        assert set(tiny_hg.nets(2)) == {1, 2, 6}
        assert set(tiny_hg.nets(4)) == {3, 4}

    def test_degree(self, tiny_hg):
        assert tiny_hg.degree(2) == 3
        assert tiny_hg.degree(1) == 2

    def test_net_size(self, weighted_hg):
        assert weighted_hg.net_size(1) == 3

    def test_area_of_subset(self, weighted_hg):
        assert weighted_hg.area_of([0, 2]) == 4.0
        assert weighted_hg.area_of([]) == 0.0

    def test_neighbors(self, tiny_hg):
        assert set(tiny_hg.neighbors(2)) == {0, 1, 3}
        assert set(tiny_hg.neighbors(4)) == {3, 5}

    def test_neighbors_excludes_self(self, tiny_hg):
        for v in tiny_hg.modules():
            assert v not in tiny_hg.neighbors(v)

    def test_modules_and_nets_ranges(self, tiny_hg):
        assert list(tiny_hg.modules()) == list(range(6))
        assert list(tiny_hg.all_nets()) == list(range(7))

    def test_areas_returns_copy(self, weighted_hg):
        areas = weighted_hg.areas()
        areas[0] = 99.0
        assert weighted_hg.area(0) == 1.0

    def test_net_weights_returns_copy(self, weighted_hg):
        weights = weighted_hg.net_weights()
        weights[0] = 99
        assert weighted_hg.net_weight(0) == 2


class TestEquality:
    def test_equal_structures(self):
        a = Hypergraph([[0, 1], [1, 2]], num_modules=3)
        b = Hypergraph([[0, 1], [1, 2]], num_modules=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_nets(self):
        a = Hypergraph([[0, 1]], num_modules=3)
        b = Hypergraph([[0, 2]], num_modules=3)
        assert a != b

    def test_different_weights(self):
        a = Hypergraph([[0, 1]], net_weights=[1])
        b = Hypergraph([[0, 1]], net_weights=[2])
        assert a != b

    def test_name_ignored_for_equality(self):
        a = Hypergraph([[0, 1]], name="x")
        b = Hypergraph([[0, 1]], name="y")
        assert a == b
