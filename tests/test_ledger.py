"""Run ledger, statistical comparator, and regression gate.

Everything here carries the ``ledger`` marker — the CI perf/quality
gate job runs exactly this selection before exercising the real
``repro compare --gate`` pipeline on a pinned suite.
"""

import json

import pytest

from repro.cli import main
from repro.core.ml import ml_bipartition
from repro.harness import Algorithm, run_cell
from repro.hypergraph import hierarchical_circuit
from repro.obs import (append_entry, build_report, read_ledger,
                       record_result, stable_view, tracing)
from repro.obs.compare import (VERDICT_IMPROVED, VERDICT_INDISTINGUISHABLE,
                               VERDICT_REGRESSED, bootstrap_delta_ci,
                               compare_sample_sets, compare_samples,
                               load_samples, sign_test)
from repro.obs.convergence import convergence_report
from repro.obs.ledger import (LEDGER_ENV, VOLATILE_FIELDS, build_entry,
                              ledger_enabled, ledger_path)
from repro.runtime import Portfolio, execute

pytestmark = pytest.mark.ledger


@pytest.fixture
def small_hg():
    return hierarchical_circuit(120, 150, seed=5, name="ledger-small")


@pytest.fixture
def ml_algorithm():
    return Algorithm("ml", lambda hg, seed: ml_bipartition(hg, seed=seed))


class TestLedgerRecording:
    def test_entry_round_trip(self, small_hg, ml_algorithm, tmp_path):
        portfolio = Portfolio(algorithm=ml_algorithm, hg=small_hg,
                              runs=3, seed=1)
        result = execute(portfolio)
        entry = build_entry(result, portfolio, jobs=1)
        path = tmp_path / "ledger.jsonl"
        append_entry(entry, path)
        append_entry(entry, path)
        back = list(read_ledger(path))
        assert len(back) == 2
        assert back[0] == back[1] == json.loads(
            json.dumps(entry, sort_keys=True, default=str))
        assert back[0]["cuts"] == result.cuts
        assert back[0]["schema"] == 1
        assert len(back[0]["run_wall"]) == 3

    def test_autorecord_through_run_cell(self, small_hg, ml_algorithm,
                                         tmp_path, monkeypatch):
        ledger = tmp_path / "auto.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(ledger))
        assert ledger_enabled() and ledger_path() == ledger
        stats = run_cell(ml_algorithm, small_hg, runs=3, seed=9)
        entries = list(read_ledger(ledger))
        assert len(entries) == 1
        assert entries[0]["cuts"] == stats.cuts
        assert entries[0]["circuit"] == "ledger-small"
        assert entries[0]["algorithm"] == "ml"
        assert entries[0]["kind"] == "portfolio"

    def test_same_seed_reruns_stable_modulo_volatile(
            self, small_hg, ml_algorithm, tmp_path, monkeypatch):
        ledger = tmp_path / "stable.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(ledger))
        run_cell(ml_algorithm, small_hg, runs=3, seed=4)
        run_cell(ml_algorithm, small_hg, runs=3, seed=4)
        first, second = read_ledger(ledger)
        assert stable_view(first) == stable_view(second)
        # The stripped fields really are the only difference.
        assert set(first) == set(second)
        assert VOLATILE_FIELDS.issuperset(
            {k for k in first if first[k] != second[k]})

    def test_traced_run_records_phase_rollup(self, small_hg, ml_algorithm,
                                             tmp_path, monkeypatch):
        ledger = tmp_path / "traced.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(ledger))
        run_cell(ml_algorithm, small_hg, runs=2, seed=2,
                 trace=str(tmp_path / "run.trace.jsonl"))
        (entry,) = read_ledger(ledger)
        assert "phases" in entry
        assert entry["phases"]["ml.bipartition"]["count"] == 2
        assert entry["phases"]["fm.pass"]["total_us"] > 0

    def test_off_records_nothing(self, small_hg, ml_algorithm, tmp_path,
                                 monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, "off")
        assert not ledger_enabled()
        portfolio = Portfolio(algorithm=ml_algorithm, hg=small_hg,
                              runs=2, seed=1)
        result = execute(portfolio)
        assert record_result(result, portfolio) is None
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere

    def test_corrupt_lines_skipped_with_warning(self, tmp_path, caplog):
        path = tmp_path / "dirty.jsonl"
        good = {"schema": 1, "kind": "portfolio", "circuit": "c",
                "algorithm": "a", "cuts": [5]}
        path.write_text(
            json.dumps(good) + "\n"
            + '{"schema": 1, "trunca\n'          # corrupt JSON
            + '[1, 2, 3]\n'                      # not an object
            + '{"schema": 99, "kind": "x"}\n'    # future schema
            + json.dumps(good) + "\n",
            encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.obs.ledger"):
            entries = list(read_ledger(path))
        assert len(entries) == 2
        assert all(e == good for e in entries)
        messages = "\n".join(r.message for r in caplog.records)
        assert "corrupt" in messages
        assert "schema" in messages

    def test_record_result_never_raises(self, small_hg, ml_algorithm,
                                        tmp_path, monkeypatch, caplog):
        # Point the ledger somewhere unwritable: a path under a file.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv(LEDGER_ENV, str(blocker / "ledger.jsonl"))
        portfolio = Portfolio(algorithm=ml_algorithm, hg=small_hg,
                              runs=1, seed=0)
        result = execute(portfolio)  # auto-records; must not raise
        with caplog.at_level("WARNING", logger="repro.obs.ledger"):
            assert record_result(result, portfolio) is None
        assert any("could not record" in r.message
                   for r in caplog.records)


class TestStatistics:
    def test_sign_test_ties_and_empty_are_uninformative(self):
        assert sign_test([], []) == 1.0
        assert sign_test([3, 3, 3], [3, 3, 3]) == 1.0

    def test_sign_test_one_directional(self):
        # n pairs all one way: p = 2 * 2^-n.
        assert sign_test([1] * 6, [2] * 6) == pytest.approx(2 ** -5)
        assert sign_test([2] * 6, [1] * 6) == pytest.approx(2 ** -5)
        # 5 pairs cannot reach 0.05 two-sided.
        assert sign_test([1] * 5, [2] * 5) == pytest.approx(2 ** -4)

    def test_bootstrap_ci_deterministic_and_ordered(self):
        a = [10, 11, 12, 13, 14, 15]
        b = [12, 13, 14, 15, 16, 17]
        lo1, hi1 = bootstrap_delta_ci(a, b, seed=42)
        lo2, hi2 = bootstrap_delta_ci(a, b, seed=42)
        assert (lo1, hi1) == (lo2, hi2)
        assert lo1 <= hi1
        # The true median shift (+2) is inside the interval.
        assert lo1 <= 2 <= hi1

    def test_compare_identical_is_indistinguishable(self):
        samples = [7.0, 8.0, 9.0, 7.0, 8.0, 9.0]
        c = compare_samples("k", "cut", samples, samples)
        assert c.verdict == VERDICT_INDISTINGUISHABLE
        assert not c.confirmed
        assert c.p_value == 1.0

    def test_compare_confirms_directional_shift(self):
        base = [100, 102, 98, 101, 99, 100, 103, 97]
        worse = [round(c * 1.1) for c in base]
        c = compare_samples("k", "cut", base, worse, min_effect_pct=1.0)
        assert c.verdict == VERDICT_REGRESSED and c.confirmed
        better = [round(c * 0.9) for c in base]
        c = compare_samples("k", "cut", base, better, min_effect_pct=1.0)
        assert c.verdict == VERDICT_IMPROVED and c.confirmed

    def test_small_effect_not_confirmed(self):
        base = [1000] * 8
        current = [1002] * 8  # significant direction, +0.2% effect
        c = compare_samples("k", "cut", base, current, min_effect_pct=1.0)
        assert c.verdict == VERDICT_INDISTINGUISHABLE

    def test_sample_sets_use_runtime_threshold(self):
        base = {"k": {"cut": [10] * 8, "wall": [1.0] * 8}}
        cur = {"k": {"cut": [10] * 8, "wall": [1.1] * 8}}  # +10% wall
        comparisons = compare_sample_sets(base, cur)
        by_metric = {c.metric: c for c in comparisons}
        # +10% runtime is under the 25% runtime threshold.
        assert by_metric["wall"].verdict == VERDICT_INDISTINGUISHABLE
        assert by_metric["cut"].verdict == VERDICT_INDISTINGUISHABLE


def _write_ledger(path, cuts, circuit="fix", algorithm="mlc"):
    entry = {"schema": 1, "kind": "portfolio", "circuit": circuit,
             "algorithm": algorithm, "runs": len(cuts), "jobs": 1,
             "seed": "0", "cuts": cuts,
             "run_wall": [0.1] * len(cuts), "run_cpu": [0.1] * len(cuts)}
    path.write_text(json.dumps(entry) + "\n", encoding="utf-8")
    return path


class TestCompareGateCLI:
    BASE = [100, 102, 98, 101, 99, 100, 103, 97]

    def test_identical_suites_pass_gate(self, tmp_path, capsys):
        base = _write_ledger(tmp_path / "base.jsonl", self.BASE)
        cur = _write_ledger(tmp_path / "cur.jsonl", list(self.BASE))
        assert main(["compare", str(base), str(cur), "--gate"]) == 0
        out = capsys.readouterr().out
        assert "indistinguishable" in out
        assert "gate: ok" in out

    def test_injected_regression_fails_gate(self, tmp_path, capsys):
        base = _write_ledger(tmp_path / "base.jsonl", self.BASE)
        cur = _write_ledger(tmp_path / "cur.jsonl",
                            [round(c * 1.1) for c in self.BASE])
        assert main(["compare", str(base), str(cur), "--gate"]) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "gate: FAILED" in captured.err

    def test_improvement_passes_gate(self, tmp_path):
        base = _write_ledger(tmp_path / "base.jsonl", self.BASE)
        cur = _write_ledger(tmp_path / "cur.jsonl",
                            [round(c * 0.9) for c in self.BASE])
        assert main(["compare", str(base), str(cur), "--gate"]) == 0

    def test_no_time_gate_ignores_runtime_regression(self, tmp_path):
        base = tmp_path / "base.jsonl"
        cur = tmp_path / "cur.jsonl"
        entry = {"schema": 1, "circuit": "c", "algorithm": "a",
                 "cuts": [10] * 8, "run_wall": [1.0] * 8}
        base.write_text(json.dumps(entry) + "\n")
        entry["run_wall"] = [2.0] * 8  # +100%: a confirmed wall regression
        cur.write_text(json.dumps(entry) + "\n")
        assert main(["compare", str(base), str(cur), "--gate"]) == 1
        assert main(["compare", str(base), str(cur), "--gate",
                     "--no-time-gate"]) == 0

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "nope.jsonl"),
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_json_loads_as_samples(self, tmp_path):
        report = {"results": [
            {"circuit": "c1", "kernel": "csr", "seconds": 1.5, "cut": 12,
             "ok": True},
            {"circuit": "c1", "kernel": "reference", "seconds": 2.5,
             "cut": 12},
        ]}
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(report))
        samples = load_samples(path)
        assert samples["c1/csr"]["cut"] == [12.0]
        assert "ok" not in samples["c1/csr"]  # bools are not metrics


class TestConvergenceGolden:
    """Pinned circuit + seed -> pinned analytics (pure functions of the
    move sequence; identical under both kernel modes)."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        hg = hierarchical_circuit(300, 360, seed=17, name="medium")
        path = tmp_path_factory.mktemp("conv") / "trace.jsonl"
        with tracing(str(path)):
            result = ml_bipartition(hg, seed=3)
        assert result.cut == 26
        return convergence_report(path)

    def test_structure(self, report):
        assert report.ml_runs == 1
        assert [a.modules for a in report.levels] == [30, 52, 95, 168, 300]
        assert sorted(report.phase_us) == ["coarsening", "initial",
                                           "other", "refinement"]
        assert report.total_seconds > 0

    def test_level_attribution_golden(self, report):
        golden = {30: (120, [44]), 52: (156, [36]), 95: (190, [33]),
                  168: (336, [32]), 300: (1200, [26])}
        for agg in report.levels:
            moves, cuts = golden[agg.modules]
            assert agg.moves == moves
            assert agg.cuts == cuts

    def test_pass_curve_golden(self, report):
        curve = [(p.number, p.count, p.moves_committed, p.moves_attempted)
                 for p in report.passes]
        assert curve == [(1, 5, 71, 645), (2, 5, 23, 645),
                         (3, 3, 29, 382), (4, 2, 0, 330)]
        # The convergence claim itself: pass 1 commits the bulk.
        committed = [p.moves_committed for p in report.passes]
        assert committed[0] == max(committed)

    def test_tables_render(self, report):
        text = report.render()
        assert "Table VIII shape" in text
        assert "Cut vs FM pass" in text


class TestReport:
    def test_markdown_report(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.jsonl", [10, 12, 11])
        text = build_report(ledger=ledger)
        assert text.startswith("# repro performance report")
        assert "| fix/mlc |" in text
        assert "Latest runs" in text

    def test_trend_verdict_between_generations(self, tmp_path):
        path = tmp_path / "l.jsonl"
        lines = []
        for cuts in ([100, 102, 98, 101, 99, 100, 103, 97],
                     [110, 112, 108, 111, 109, 110, 113, 107]):
            lines.append(json.dumps({
                "schema": 1, "circuit": "c", "algorithm": "a",
                "cuts": cuts, "run_wall": [0.1] * len(cuts)}))
        path.write_text("\n".join(lines) + "\n")
        text = build_report(ledger=path)
        assert "Trends" in text
        assert "regressed" in text

    def test_html_report(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.jsonl", [10])
        html = build_report(ledger=ledger, fmt="html")
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html

    def test_empty_ledger_notice(self, tmp_path):
        text = build_report(ledger=tmp_path / "missing.jsonl")
        assert "no ledger entries" in text

    def test_report_cli_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, "off")
        ledger = _write_ledger(tmp_path / "l.jsonl", [10, 11])
        out = tmp_path / "out" / "report.md"
        assert main(["report", "--ledger", str(ledger),
                     "-o", str(out)]) == 0
        assert "Latest runs" in out.read_text(encoding="utf-8")
