"""Tests for the multi-way (Sanchis-style) FM engine."""

import pytest

from repro.errors import ConfigError, PartitionError
from repro.fm import FMConfig, kway_partition
from repro.hypergraph import Hypergraph
from repro.partition import (BalanceConstraint, Partition, cut,
                             random_partition, soed)
from repro.rng import child_seeds


class TestValidation:
    def test_rejects_k1(self, medium_hg):
        with pytest.raises(PartitionError):
            kway_partition(medium_hg, k=1)

    def test_rejects_bad_objective(self, medium_hg):
        with pytest.raises(ConfigError, match="objective"):
            kway_partition(medium_hg, k=4, objective="ratio")

    def test_rejects_mismatched_initial(self, medium_hg):
        initial = random_partition(medium_hg, k=2, seed=0)
        with pytest.raises(PartitionError, match="k="):
            kway_partition(medium_hg, k=4, initial=initial)

    def test_rejects_bad_fixed_length(self, medium_hg):
        with pytest.raises(PartitionError, match="fixed"):
            kway_partition(medium_hg, k=4, fixed=[False] * 3)


class TestCorrectness:
    @pytest.mark.parametrize("objective", ["cut", "soed"])
    def test_reported_metrics_match_reference(self, medium_hg, objective):
        result = kway_partition(medium_hg, k=4, objective=objective, seed=1)
        assert result.cut == cut(medium_hg, result.partition)
        assert result.soed == soed(medium_hg, result.partition)

    def test_balance_respected(self, medium_hg):
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1, k=4)
        for seed in child_seeds(0, 4):
            result = kway_partition(medium_hg, k=4, seed=seed)
            assert constraint.is_feasible(
                result.partition.part_areas(medium_hg))

    def test_improves_on_random_start(self, medium_hg):
        initial = random_partition(medium_hg, k=4, seed=7)
        before = cut(medium_hg, initial)
        result = kway_partition(medium_hg, k=4, initial=initial,
                                objective="cut", seed=7)
        assert result.cut <= before

    def test_deterministic(self, medium_hg):
        a = kway_partition(medium_hg, k=4, seed=3)
        b = kway_partition(medium_hg, k=4, seed=3)
        assert a.partition == b.partition

    def test_k2_agrees_with_cut_definition(self, medium_hg):
        result = kway_partition(medium_hg, k=2, objective="cut", seed=2)
        assert result.soed == 2 * result.cut

    def test_clip_variant_valid(self, medium_hg):
        result = kway_partition(medium_hg, k=4,
                                config=FMConfig(clip=True), seed=4)
        assert result.cut == cut(medium_hg, result.partition)

    def test_separates_four_planted_clusters(self):
        """Four dense blocks joined by a few bridges: k-way FM should
        recover a cut near the number of bridge nets."""
        nets = []
        for block in range(4):
            base = block * 8
            nets.extend([base + i, base + (i + 1) % 8]
                        for i in range(8))
            nets.extend([base + i, base + (i + 2) % 8]
                        for i in range(8))
        bridges = [[7, 8], [15, 16], [23, 24], [31, 0]]
        hg = Hypergraph(nets + bridges, num_modules=32)
        best = min(kway_partition(hg, k=4, objective="cut", seed=s).cut
                   for s in child_seeds(0, 10))
        assert best <= 6


class TestFixedModules:
    def test_fixed_modules_never_move(self, medium_hg):
        initial = random_partition(medium_hg, k=4, seed=11)
        fixed = [v % 10 == 0 for v in range(medium_hg.num_modules)]
        result = kway_partition(medium_hg, k=4, initial=initial,
                                fixed=fixed, seed=11)
        for v in range(medium_hg.num_modules):
            if fixed[v]:
                assert result.partition.part_of(v) == initial.part_of(v)

    def test_all_fixed_returns_initial(self, medium_hg):
        initial = random_partition(medium_hg, k=4, seed=12)
        fixed = [True] * medium_hg.num_modules
        result = kway_partition(medium_hg, k=4, initial=initial,
                                fixed=fixed, seed=12)
        assert result.partition == initial


class TestObjectiveEffect:
    def test_soed_objective_reduces_soed(self, medium_hg):
        initial = random_partition(medium_hg, k=4, seed=13)
        before = soed(medium_hg, initial)
        result = kway_partition(medium_hg, k=4, initial=initial,
                                objective="soed", seed=13)
        assert result.soed <= before

    def test_soed_at_most_double_cut_bound(self, medium_hg):
        """SOED counts each cut net at least twice and at most k times."""
        result = kway_partition(medium_hg, k=4, seed=14)
        assert 2 * result.cut <= result.soed <= 4 * result.cut
