"""Smoke tests for the per-table experiment generators (tiny scale)."""

import pytest

from repro.harness import (figure4_ratio_tradeoff, table1_characteristics,
                           table2_tiebreak, table3_fm_vs_clip,
                           table4_ml_vs_clip, table5_mlf_ratio,
                           table6_mlc_ratio, table7_comparison, table8_cpu,
                           table9_quadrisection)

TINY = dict(circuits=("balu", "struct"), scale=0.12, runs=2, seed=0)


class TestTableGenerators:
    def test_table1(self):
        result = table1_characteristics(circuits=("balu", "golem3"),
                                        scale=0.05)
        assert len(result.rows) == 2
        assert result.rows[0][0] == "balu"
        assert result.rows[1][1] == 103048  # spec modules for golem3
        assert result.render()

    def test_table2(self):
        result = table2_tiebreak(**TINY)
        assert len(result.rows) == 2
        assert len(result.headers) == 10
        for row in result.rows:
            mins, avgs = row[1:4], row[4:7]
            for m, a in zip(mins, avgs):
                assert m <= a

    def test_table3(self):
        result = table3_fm_vs_clip(**TINY)
        for row in result.rows:
            assert row[1] <= row[3]  # min FM <= avg FM
            assert row[2] <= row[4]  # min CLIP <= avg CLIP
        # CPU was measured (unrounded cells: the rounded table columns
        # can legitimately show 0.00 now that the kernels are fast).
        for cells in result.cells.values():
            assert cells["FM"].cpu_seconds > 0
            assert cells["CLIP"].cpu_seconds > 0

    def test_table4(self):
        result = table4_ml_vs_clip(**TINY)
        assert [r[0] for r in result.rows] == ["balu", "struct"]
        assert "MIN MLC" in result.headers

    def test_table5_and_6(self):
        for fn in (table5_mlf_ratio, table6_mlc_ratio):
            result = fn(ratios=(1.0, 0.5), **TINY)
            assert len(result.headers) == 1 + 3 * 2
            assert result.render()

    def test_table7(self):
        result = table7_comparison(circuits=("balu", "struct"), scale=0.12,
                                   runs=2, runs_small=1, lsmc_descents=2,
                                   seed=0)
        # two circuit rows + two improvement rows
        assert len(result.rows) == 4
        assert result.rows[-1][0].startswith("% imprv")
        # literature columns present for these known circuits
        lit_start = result.headers.index("lit:GMet")
        assert result.rows[0][lit_start] == 27  # GMet on balu

    def test_table8(self):
        result = table8_cpu(circuits=("balu",), scale=0.12, runs=2,
                            lsmc_descents=2, seed=0)
        assert result.rows[0][0] == "balu"
        # Unrounded cells: the rounded table columns can show 0.00 for
        # the fastest algorithms at this tiny scale.
        assert all(cell.cpu_seconds > 0
                   for cell in result.cells["balu"].values())

    def test_table9(self):
        result = table9_quadrisection(circuits=("balu",), scale=0.25,
                                      runs=1, lsmc_descents=1, seed=0)
        assert result.rows[0][0] == "balu"
        headers = result.headers
        assert "GORDIAN min" in headers
        assert "MLF4 min" in headers

    def test_figure4(self):
        result = figure4_ratio_tradeoff(circuits=("struct",), scale=0.12,
                                        runs=2, ratios=(1.0, 0.5), seed=0)
        assert [row[0] for row in result.rows] == [1.0, 0.5]
        assert all(row[1] > 0 for row in result.rows)

    def test_cells_exposed(self):
        result = table3_fm_vs_clip(**TINY)
        assert result.cells["balu"]["FM"].runs == 2
