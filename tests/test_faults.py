"""Tests for the fault-injection harness and its consumers.

Covers the deterministic :class:`FaultPlan` / :class:`FaultInjector`
pair, trust-but-verify demotion to ``invalid``, retry backoff, the
survival quorum, and the sweep checkpoint — including the headline
contract of the robustness layer: the same ``(seed, fault plan)``
produces byte-identical outcome fingerprints at any worker count, and
a killed sweep resumes to the uninterrupted sweep's exact results.
"""

import time

import pytest

from repro.errors import (CheckpointError, ConfigError, HarnessError,
                          InjectedFault)
from repro.faults import (FAULT_CORRUPT_ASSIGNMENT, FAULT_CORRUPT_CUT,
                          FAULT_EXIT, FAULT_HANG, FAULT_KINDS, FAULT_RAISE,
                          FaultInjector, FaultPlan)
from repro.fm import fm_bipartition
from repro.harness import Algorithm, run_cell, run_matrix
from repro.hypergraph import hierarchical_circuit
from repro.partition.objectives import cut as reference_cut
from repro.runtime import (MatrixCheckpoint, Portfolio, RunRecord,
                           STATUS_FAILED, STATUS_INVALID, STATUS_OK,
                           STATUS_TIMEOUT, execute)

pytestmark = pytest.mark.faults


def _fm() -> Algorithm:
    return Algorithm("FM", lambda hg, s: fm_bipartition(hg, seed=s))


def _always_failing() -> Algorithm:
    def run(hg, s):
        raise ValueError("always broken")
    return Algorithm("BROKEN", run)


@pytest.fixture
def small_hg():
    return hierarchical_circuit(60, 70, seed=3, name="small")


class TestFaultPlan:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=3, rate=0.5)
        twin = FaultPlan(seed=3, rate=0.5)
        decisions = [plan.decide(i, 1) for i in range(50)]
        assert decisions == [plan.decide(i, 1) for i in range(50)]
        assert decisions == [twin.decide(i, 1) for i in range(50)]

    def test_seed_changes_schedule(self):
        a = [FaultPlan(seed=1, rate=0.5).decide(i, 1) for i in range(50)]
        b = [FaultPlan(seed=2, rate=0.5).decide(i, 1) for i in range(50)]
        assert a != b

    def test_zero_rate_runs_clean(self):
        plan = FaultPlan(seed=0, rate=0.0)
        assert all(plan.decide(i, a) is None
                   for i in range(20) for a in (1, 2))

    def test_rate_one_always_faults(self):
        plan = FaultPlan(seed=9, rate=1.0)
        assert all(plan.decide(i, 1) in FAULT_KINDS for i in range(20))

    def test_attempts_bounds_rate_faults(self):
        """With attempts=1 a retried start runs clean — retries recover."""
        plan = FaultPlan(seed=9, rate=1.0, attempts=1)
        assert all(plan.decide(i, 2) is None for i in range(20))
        deeper = FaultPlan(seed=9, rate=1.0, attempts=2)
        assert any(deeper.decide(i, 2) is not None for i in range(20))

    def test_targeted_wins_over_rate(self):
        plan = FaultPlan(seed=0, rate=0.0, targeted={(2, 1): FAULT_RAISE})
        assert plan.decide(2, 1) == FAULT_RAISE
        assert plan.decide(1, 1) is None
        assert plan.decide(2, 2) is None

    def test_targeted_fires_past_attempts_bound(self):
        plan = FaultPlan(seed=0, attempts=1,
                         targeted={(0, 3): FAULT_CORRUPT_CUT})
        assert plan.decide(0, 3) == FAULT_CORRUPT_CUT

    def test_parse_bare_rate(self):
        assert FaultPlan.parse("0.25").rate == 0.25

    def test_parse_key_value_spec(self):
        plan = FaultPlan.parse(
            "rate=0.1, seed=7, kinds=raise+corrupt_cut, attempts=2, hang=5")
        assert plan.rate == 0.1
        assert plan.seed == 7
        assert plan.kinds == (FAULT_RAISE, FAULT_CORRUPT_CUT)
        assert plan.attempts == 2
        assert plan.hang_seconds == 5.0

    @pytest.mark.parametrize("spec", [
        "", "rate", "rate=x", "bogus=1", "rate=0.1,kinds=nosuchfault",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(attempts=0)
        with pytest.raises(ConfigError):
            FaultPlan(hang_seconds=0)
        with pytest.raises(ConfigError):
            FaultPlan(kinds=())
        with pytest.raises(ConfigError):
            FaultPlan(kinds=("nosuchfault",))
        with pytest.raises(ConfigError):
            FaultPlan(targeted={(0, 1): "nosuchfault"})


class TestFaultInjector:
    def test_raise_fault(self):
        injector = FaultInjector(
            FaultPlan(targeted={(0, 1): FAULT_RAISE}))
        with pytest.raises(InjectedFault, match="injected crash"):
            injector.fire(0, 1)

    def test_exit_simulated_as_crash_in_process(self):
        """In-process, a real os._exit would take the sweep down."""
        injector = FaultInjector(
            FaultPlan(targeted={(0, 1): FAULT_EXIT}))
        with pytest.raises(InjectedFault, match="worker exit"):
            injector.fire(0, 1, in_worker=False)

    def test_hang_sleeps(self):
        injector = FaultInjector(
            FaultPlan(hang_seconds=0.05, targeted={(0, 1): FAULT_HANG}))
        t0 = time.perf_counter()
        assert injector.fire(0, 1) is None
        assert time.perf_counter() - t0 >= 0.05

    def test_clean_start_is_a_no_op(self):
        injector = FaultInjector(FaultPlan(rate=0.0))
        assert injector.fire(0, 1) is None

    def test_corrupting_kinds_are_deferred(self):
        injector = FaultInjector(
            FaultPlan(targeted={(0, 1): FAULT_CORRUPT_CUT,
                                (1, 1): FAULT_CORRUPT_ASSIGNMENT}))
        assert injector.fire(0, 1) == FAULT_CORRUPT_CUT
        assert injector.fire(1, 1) == FAULT_CORRUPT_ASSIGNMENT


class TestCorruption:
    def test_corrupt_cut_skews_report_only(self, small_hg):
        honest = fm_bipartition(small_hg, seed=1)
        injector = FaultInjector(FaultPlan(seed=4))
        corrupted = injector.corrupt(FAULT_CORRUPT_CUT, 0, 1, small_hg,
                                     honest)
        assert corrupted.cut != honest.cut
        assert corrupted.partition == honest.partition
        assert honest.cut == reference_cut(small_hg, honest.partition)

    def test_corrupt_assignment_is_observable(self, small_hg):
        """The corruption must be detectable by recomputation."""
        honest = fm_bipartition(small_hg, seed=1)
        injector = FaultInjector(FaultPlan(seed=4))
        corrupted = injector.corrupt(FAULT_CORRUPT_ASSIGNMENT, 0, 1,
                                     small_hg, honest)
        assert reference_cut(small_hg, corrupted.partition) != corrupted.cut

    def test_corruption_is_deterministic(self, small_hg):
        honest = fm_bipartition(small_hg, seed=1)
        injector = FaultInjector(FaultPlan(seed=4))
        a = injector.corrupt(FAULT_CORRUPT_ASSIGNMENT, 2, 1, small_hg,
                             honest)
        b = injector.corrupt(FAULT_CORRUPT_ASSIGNMENT, 2, 1, small_hg,
                             honest)
        assert a.cut == b.cut
        assert a.partition == b.partition
        # A different start identity corrupts differently.
        c = injector.corrupt(FAULT_CORRUPT_ASSIGNMENT, 3, 1, small_hg,
                             honest)
        assert (c.cut, c.partition) != (a.cut, a.partition)


class TestVerify:
    def test_honest_runs_pass_verification(self, small_hg):
        stats = run_cell(_fm(), small_hg, runs=3, seed=0, verify=True)
        assert stats.failures == 0
        assert stats.runs == 3

    @pytest.mark.parametrize("kind", [FAULT_CORRUPT_CUT,
                                      FAULT_CORRUPT_ASSIGNMENT])
    def test_corruption_caught_as_invalid(self, small_hg, kind):
        plan = FaultPlan(targeted={(1, 1): kind})
        outcome = execute(Portfolio(_fm(), small_hg, runs=3, seed=0,
                                    faults=plan, verify=True))
        record = outcome.records[1]
        assert record.status == STATUS_INVALID
        assert record.cut is None
        assert "verify" in record.error
        stats = outcome.to_cell_stats()
        assert stats.runs == 2 and stats.failures == 1

    def test_invalid_is_retried_and_recovers(self, small_hg):
        clean = execute(Portfolio(_fm(), small_hg, runs=3, seed=0))
        plan = FaultPlan(targeted={(1, 1): FAULT_CORRUPT_CUT})
        outcome = execute(Portfolio(_fm(), small_hg, runs=3, seed=0,
                                    faults=plan, verify=True, retries=1))
        assert [r.status for r in outcome.records] == [STATUS_OK] * 3
        assert outcome.records[1].attempts == 2
        assert outcome.cuts == clean.cuts  # never contaminates statistics

    def test_unverified_corruption_slips_through(self, small_hg):
        """Documents why verify= exists: without it the wrong cut is
        silently aggregated."""
        clean = execute(Portfolio(_fm(), small_hg, runs=3, seed=0))
        plan = FaultPlan(targeted={(1, 1): FAULT_CORRUPT_CUT})
        outcome = execute(Portfolio(_fm(), small_hg, runs=3, seed=0,
                                    faults=plan))
        assert outcome.records[1].status == STATUS_OK
        assert outcome.cuts != clean.cuts

    def test_verify_tolerance_validated(self, small_hg):
        with pytest.raises(ConfigError):
            Portfolio(_fm(), small_hg, runs=1, verify=1.5)


class TestBackoff:
    def test_first_attempt_never_sleeps(self, small_hg):
        portfolio = Portfolio(_fm(), small_hg, runs=1,
                              backoff_seconds=5.0)
        assert portfolio.backoff_delay(0, 1) == 0.0

    def test_zero_base_never_sleeps(self, small_hg):
        portfolio = Portfolio(_fm(), small_hg, runs=1)
        assert portfolio.backoff_delay(0, 5) == 0.0

    def test_deterministic_and_bounded(self, small_hg):
        portfolio = Portfolio(_fm(), small_hg, runs=1, seed=7,
                              backoff_seconds=0.2, backoff_cap=1.0)
        twin = Portfolio(_fm(), small_hg, runs=1, seed=7,
                         backoff_seconds=0.2, backoff_cap=1.0)
        for attempt in range(2, 10):
            delay = portfolio.backoff_delay(0, attempt)
            assert delay == twin.backoff_delay(0, attempt)
            base = min(1.0, 0.2 * 2.0 ** (attempt - 2))
            assert 0.5 * base <= delay < base or delay == base

    def test_retry_actually_sleeps(self, small_hg):
        portfolio = Portfolio(_always_failing(), small_hg, runs=1, seed=0,
                              retries=1, backoff_seconds=0.2)
        t0 = time.perf_counter()
        outcome = execute(portfolio)
        elapsed = time.perf_counter() - t0
        assert outcome.records[0].attempts == 2
        assert elapsed >= 0.1  # delay = 0.2 * U, U in [0.5, 1)

    def test_validation(self, small_hg):
        with pytest.raises(ConfigError):
            Portfolio(_fm(), small_hg, runs=1, backoff_seconds=-1.0)
        with pytest.raises(ConfigError):
            Portfolio(_fm(), small_hg, runs=1, backoff_cap=0.0)


@pytest.mark.parallel
class TestCrossModeDeterminism:
    """Same (seed, fault plan) => byte-identical fingerprints at any
    worker count — the acceptance contract of the robustness layer."""

    def test_armed_plan_fingerprints_match(self, small_hg):
        plan = FaultPlan(seed=5, rate=0.4,
                         kinds=(FAULT_RAISE, FAULT_CORRUPT_CUT,
                                FAULT_CORRUPT_ASSIGNMENT))

        def portfolio():
            return Portfolio(_fm(), small_hg, runs=6, seed=3, faults=plan,
                             verify=True, retries=2)

        serial = execute(portfolio(), jobs=1)
        pooled = execute(portfolio(), jobs=4)
        assert serial.fingerprint() == pooled.fingerprint()
        # The plan actually fired: some start needed a retry to recover.
        assert any(r.attempts > 1 for r in serial.records)
        assert [r.status for r in serial.records] == [STATUS_OK] * 6

    def test_exit_fault_fingerprints_match(self, small_hg):
        """A worker death (real under the pool, simulated serially) is
        the same failed outcome either way."""
        plan = FaultPlan(targeted={(1, 1): FAULT_EXIT})

        def portfolio():
            return Portfolio(_fm(), small_hg, runs=3, seed=0, faults=plan)

        serial = execute(portfolio(), jobs=1)
        pooled = execute(portfolio(), jobs=2)
        assert serial.fingerprint() == pooled.fingerprint()
        assert serial.records[1].status == STATUS_FAILED


@pytest.mark.parallel
class TestExitAndHangFaults:
    def test_exit_fault_recovers_with_retry(self, small_hg):
        plan = FaultPlan(targeted={(1, 1): FAULT_EXIT})
        outcome = execute(Portfolio(_fm(), small_hg, runs=3, seed=0,
                                    faults=plan, retries=1), jobs=2)
        assert [r.status for r in outcome.records] == [STATUS_OK] * 3
        assert outcome.records[1].attempts == 2
        assert [r.attempts for i, r in enumerate(outcome.records)
                if i != 1] == [1, 1]

    def test_hang_fault_times_out_and_is_not_retried(self, small_hg):
        plan = FaultPlan(hang_seconds=5.0,
                         targeted={(0, 1): FAULT_HANG})
        t0 = time.perf_counter()
        outcome = execute(Portfolio(_fm(), small_hg, runs=2, seed=0,
                                    faults=plan, budget_seconds=0.5,
                                    retries=2), jobs=2)
        elapsed = time.perf_counter() - t0
        hung = outcome.records[0]
        assert hung.status == STATUS_TIMEOUT
        assert hung.attempts == 1  # timeouts are never retried
        assert outcome.records[1].status == STATUS_OK
        assert elapsed < 5.0  # pool terminated, not waited out


class TestQuorum:
    def test_none_is_a_no_op(self, small_hg):
        outcome = execute(Portfolio(_always_failing(), small_hg, runs=2,
                                    seed=0))
        assert outcome.require_quorum(None) is outcome

    def test_quorum_met(self, small_hg):
        plan = FaultPlan(targeted={(0, 1): FAULT_RAISE})
        outcome = execute(Portfolio(_fm(), small_hg, runs=4, seed=0,
                                    faults=plan))
        assert outcome.require_quorum(0.75) is outcome

    def test_quorum_not_met_carries_report(self, small_hg):
        plan = FaultPlan(targeted={(0, 1): FAULT_RAISE,
                                   (1, 1): FAULT_RAISE})
        outcome = execute(Portfolio(_fm(), small_hg, runs=4, seed=0,
                                    faults=plan))
        with pytest.raises(HarnessError) as excinfo:
            outcome.require_quorum(0.9)
        message = str(excinfo.value)
        assert "quorum not met" in message
        assert "2/4" in message
        assert "start 0" in message and "start 1" in message

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_fraction_validated(self, small_hg, fraction):
        outcome = execute(Portfolio(_fm(), small_hg, runs=1, seed=0))
        with pytest.raises(HarnessError):
            outcome.require_quorum(fraction)

    def test_run_cell_threads_quorum(self, small_hg):
        with pytest.raises(HarnessError, match="quorum"):
            run_cell(_always_failing(), small_hg, runs=2, seed=0,
                     min_ok_fraction=0.5)

    def test_cell_stats_carry_failure_report(self, small_hg):
        plan = FaultPlan(targeted={(0, 1): FAULT_RAISE})
        stats = run_cell(_fm(), small_hg, runs=3, seed=0, faults=plan)
        assert stats.failures == 1
        assert stats.report is not None
        assert "1/3 starts lost" in stats.report.render()
        assert stats.report.to_json_dict()["by_status"][STATUS_FAILED] == 1


class TestRunRecordRoundtrip:
    @pytest.mark.parametrize("status,error", [
        (STATUS_OK, None),
        (STATUS_FAILED, "boom"),
        (STATUS_TIMEOUT, "too slow"),
        (STATUS_INVALID, "verify: wrong cut"),
    ])
    def test_json_roundtrip(self, status, error):
        record = RunRecord(index=3, seed=99, status=status,
                           cut=17 if status == STATUS_OK else None,
                           wall_seconds=0.5, cpu_seconds=0.4,
                           worker="pid:1", error=error, attempts=2,
                           result=object())
        restored = RunRecord.from_json_dict(record.to_json_dict())
        assert restored.result is None  # results are never persisted
        for name in ("index", "seed", "status", "cut", "wall_seconds",
                     "cpu_seconds", "worker", "error", "attempts"):
            assert getattr(restored, name) == getattr(record, name)

    def test_missing_field_rejected(self):
        with pytest.raises(HarnessError, match="missing field"):
            RunRecord.from_json_dict({"index": 0})


class TestCheckpoint:
    RUNS = 4

    def _sweep(self, hg, path=None, algorithm=None):
        return run_matrix([algorithm or _fm()], [hg], runs=self.RUNS,
                          seed=11, checkpoint=path)

    def test_streams_header_and_records(self, small_hg, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._sweep(small_hg, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + self.RUNS
        assert '"kind": "header"' in lines[0]

    def test_resume_skips_finished_starts(self, small_hg, tmp_path):
        baseline = self._sweep(small_hg)
        full = tmp_path / "full.jsonl"
        self._sweep(small_hg, full)
        partial = tmp_path / "partial.jsonl"
        partial.write_text(
            "\n".join(full.read_text().splitlines()[:3]) + "\n")

        calls = []

        def counting(hg, s):
            calls.append(s)
            return fm_bipartition(hg, seed=s)

        resumed = self._sweep(small_hg, partial,
                              algorithm=Algorithm("FM", counting))
        assert len(calls) == self.RUNS - 2  # two starts came from disk
        assert resumed["small"]["FM"].cuts == baseline["small"]["FM"].cuts

    def test_killed_sweep_resumes_exactly(self, small_hg, tmp_path):
        """A KeyboardInterrupt mid-sweep loses nothing already flushed;
        resuming reproduces the uninterrupted sweep's cuts."""
        baseline = self._sweep(small_hg)
        path = tmp_path / "killed.jsonl"
        calls = []

        def killer(hg, s):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(s)
            return fm_bipartition(hg, seed=s)

        with pytest.raises(KeyboardInterrupt):
            self._sweep(small_hg, path, algorithm=Algorithm("FM", killer))
        resumed = self._sweep(small_hg, path)
        assert resumed["small"]["FM"].cuts == baseline["small"]["FM"].cuts

    def test_mismatched_config_refused(self, small_hg, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._sweep(small_hg, path)
        with pytest.raises(CheckpointError, match="runs"):
            run_matrix([_fm()], [small_hg], runs=self.RUNS + 1, seed=11,
                       checkpoint=path)

    def test_truncated_final_line_tolerated(self, small_hg, tmp_path):
        """The signature of a kill -9 mid-write: the partial trailing
        record is dropped, everything before it is kept."""
        path = tmp_path / "sweep.jsonl"
        self._sweep(small_hg, path)
        with open(path, "a") as fh:
            fh.write('{"kind": "record", "circ')
        resumed = self._sweep(small_hg, path)
        assert resumed["small"]["FM"].cuts \
            == self._sweep(small_hg)["small"]["FM"].cuts

    def test_corruption_mid_file_refused(self, small_hg, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._sweep(small_hg, path)
        lines = path.read_text().splitlines()
        lines[2] = '{"kind": "rec'  # not the final line: real corruption
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            self._sweep(small_hg, path)

    def test_finished_starts_counter(self, small_hg, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._sweep(small_hg, path)
        with MatrixCheckpoint(path, seed=11, runs=self.RUNS,
                              algorithms=["FM"],
                              circuits=["small"]) as ckpt:
            assert ckpt.resumed
            assert ckpt.finished_starts == self.RUNS
            assert sorted(ckpt.done("small", "FM")) \
                == list(range(self.RUNS))
