"""Service hardening tests: deadlines, load shedding, the circuit
breaker, and hostile clients.

Everything here carries ``service`` + ``overload`` markers (the CI
``service-chaos`` job runs exactly the ``overload`` selection).  The
engine-level tests drive the asyncio pipeline in-process via
``asyncio.run``; the HTTP-level tests reuse the background-thread
daemon from ``test_service_server`` and talk to it with raw sockets
where the point is precisely that the input is not well-formed HTTP.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.faults import FAULT_EXIT, FAULT_HANG, FaultPlan
from repro.runtime import backoff_delay
from repro.service import (DEADLINE_GRACE_SECONDS, CircuitBreaker,
                           PartitionRequest, ProtocolError, ServiceEngine,
                           ServiceClient, ServiceError, canonical_json)
from repro.service.breaker import (PLAN_DEGRADED, PLAN_FULL, PLAN_PROBE,
                                   STATE_CLOSED, STATE_OPEN)
from repro.service.engine import ExecutionLane, PendingRun
from repro.service.jobs import JOB_DONE, JobTable

from .test_service_server import _ServerThread, _body

pytestmark = [pytest.mark.service, pytest.mark.overload]


def _request(**overrides) -> PartitionRequest:
    body = {
        "netlist": {"generate": {"name": "primary1", "scale": 0.05,
                                 "seed": 1}},
        "algorithm": "fm",
        "runs": 2,
        "seed": 7,
    }
    body.update(overrides)
    return PartitionRequest.from_json(body)


def _serve(engine, coro_builder):
    """Run ``coro_builder()`` against a started engine in one loop."""
    async def main():
        engine.start()
        try:
            return await coro_builder()
        finally:
            await engine.drain(15)
    return asyncio.run(main())


class TestBackoffDelay:
    def test_first_attempt_is_immediate(self):
        assert backoff_delay(0.25, 5.0, 0, 1, 1) == 0.0
        assert backoff_delay(0.0, 5.0, 0, 1, 4) == 0.0

    def test_jitter_is_seeded_and_bounded(self):
        d2 = backoff_delay(0.25, 5.0, 0, 1, 2)
        assert 0.125 <= d2 < 0.25
        assert backoff_delay(0.25, 5.0, 0, 1, 2) == d2  # replayable
        assert backoff_delay(0.25, 5.0, 0, 2, 2) != d2  # per-index
        assert backoff_delay(0.25, 0.4, 0, 1, 30) <= 0.4  # capped

    def test_matches_portfolio_derivation(self, tiny_hg):
        # The client reuses the exact runtime derivation: a portfolio
        # with the same (base, cap, seed) waits identical delays.
        from repro.runtime import Portfolio
        from repro.solvers import build_algorithm
        portfolio = Portfolio(algorithm=build_algorithm("fm"), hg=tiny_hg,
                              runs=2, seed=9, backoff_seconds=0.25,
                              backoff_cap=5.0)
        for index in (0, 1):
            for attempt in (1, 2, 3):
                assert portfolio.backoff_delay(index, attempt) == \
                    backoff_delay(0.25, 5.0, 9, index, attempt)


class TestExecutionLaneAdmission:
    def _lane_run(self, i, deadline_at=None):
        return PendingRun(
            id=f"r{i}", request=None, key=f"k{i}",
            future=asyncio.get_running_loop().create_future(),
            deadline_at=deadline_at)

    def test_full_queue_sheds_with_retry_after(self):
        def runner(batch):
            time.sleep(0.4)
            return [{"id": run.id} for run in batch]

        async def main():
            lane = ExecutionLane(runner, max_queued=1)
            lane.start()
            first = asyncio.ensure_future(lane.submit(self._lane_run(0)))
            await asyncio.sleep(0.15)  # consumer picked run 0 up
            second = asyncio.ensure_future(lane.submit(self._lane_run(1)))
            await asyncio.sleep(0.05)  # run 1 now occupies the queue
            with pytest.raises(ProtocolError) as exc:
                await lane.submit(self._lane_run(2))
            assert exc.value.status == 429
            assert exc.value.retry_after is not None
            assert exc.value.retry_after >= 1.0
            assert lane.shed == 1
            assert (await first)["id"] == "r0"
            assert (await second)["id"] == "r1"
            await lane.drain(5)
        asyncio.run(main())

    def test_queued_run_past_deadline_gets_504_without_executing(self):
        executed = []

        def runner(batch):
            executed.extend(run.id for run in batch)
            time.sleep(0.3)
            return [{"id": run.id} for run in batch]

        async def main():
            lane = ExecutionLane(runner, max_queued=8)
            lane.start()
            first = asyncio.ensure_future(lane.submit(self._lane_run(0)))
            await asyncio.sleep(0.1)  # run 0 is in flight
            doomed = asyncio.ensure_future(lane.submit(self._lane_run(
                1, deadline_at=time.monotonic() - 0.01)))
            await first
            with pytest.raises(ProtocolError) as exc:
                await doomed
            assert exc.value.status == 504
            assert lane.expired == 1
            assert executed == ["r0"]
            await lane.drain(5)
        asyncio.run(main())


class TestDeadlines:
    def test_hanging_start_yields_degraded_partial_within_deadline(self):
        # Start 1's worker hangs for 60s; the 2.5s portfolio deadline
        # kills it and the request is answered from the start that
        # completed, flagged degraded — not an error, and on time.
        engine = ServiceEngine(
            jobs=2, default_deadline_ms=300_000,
            faults=FaultPlan(targeted={(1, 1): FAULT_HANG},
                             hang_seconds=60.0))
        begun = time.monotonic()
        payload = _serve(engine, lambda: engine.serve(
            _request(deadline_ms=2500)))
        elapsed = time.monotonic() - begun
        assert payload["degraded"] is True
        assert payload["degraded_reason"] == "deadline"
        assert payload["statuses"] == {"ok": 1, "timeout": 1}
        assert len(payload["cuts"]) == 1
        assert payload["deadline_ms"] == 2500
        # The documented hard bound, with scheduling slop on top.
        assert elapsed <= 2.5 + DEADLINE_GRACE_SECONDS + 1.5
        assert engine.counters()["degraded_served"] == 1

    def test_degraded_partials_are_never_cached(self):
        engine = ServiceEngine(
            jobs=2,
            faults=FaultPlan(targeted={(1, 1): FAULT_HANG},
                             hang_seconds=60.0))

        async def both():
            first = await engine.serve(_request(deadline_ms=2000))
            second = await engine.serve(_request(deadline_ms=2000))
            return first, second

        first, second = _serve(engine, both)
        assert first["degraded"] and second["degraded"]
        assert second["cached"] is False
        assert engine.counters()["cache_hits"] == 0
        assert engine.counters()["executed_portfolios"] == 2

    def test_every_start_hanging_yields_504(self):
        engine = ServiceEngine(
            jobs=2,
            faults=FaultPlan(targeted={(0, 1): FAULT_HANG,
                                       (1, 1): FAULT_HANG},
                             hang_seconds=60.0))
        begun = time.monotonic()
        with pytest.raises(ProtocolError) as exc:
            _serve(engine, lambda: engine.serve(
                _request(deadline_ms=1500)))
        elapsed = time.monotonic() - begun
        assert exc.value.status == 504
        assert elapsed <= 1.5 + DEADLINE_GRACE_SECONDS + 1.5
        assert engine.counters()["errors"] >= 1


class TestCircuitBreaker:
    def test_state_machine(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=10,
                                 clock=lambda: now[0])
        assert breaker.plan("net") == PLAN_FULL
        breaker.record("net", healthy=False, error="boom")
        assert breaker.state("net") == STATE_CLOSED
        breaker.record("net", healthy=False, error="boom")
        assert breaker.state("net") == STATE_OPEN
        assert breaker.plan("net") == PLAN_DEGRADED
        now[0] += 11.0  # cooldown elapsed: exactly one probe
        assert breaker.plan("net") == PLAN_PROBE
        breaker.record("net", healthy=False, error="still bad")
        assert breaker.state("net") == STATE_OPEN  # re-opened
        now[0] += 11.0
        assert breaker.plan("net") == PLAN_PROBE
        breaker.record("net", healthy=True)
        assert breaker.state("net") == STATE_CLOSED
        stats = breaker.stats()
        assert stats["trips"] == 1 and stats["recoveries"] == 1
        assert stats["probes"] == 2

    def test_healthy_executions_reset_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(5):
            breaker.record("net", healthy=False)
            breaker.record("net", healthy=True)
        assert breaker.state("net") == STATE_CLOSED
        assert breaker.stats()["trips"] == 0

    def test_engine_trips_degrades_probes_and_recovers(self):
        # Every start raises while faults are armed; two failed
        # requests trip the per-netlist breaker, the third is served
        # degraded, and after the cooldown a clean probe closes it.
        engine = ServiceEngine(
            jobs=1, breaker_failures=2, breaker_cooldown=0.3,
            faults=FaultPlan(rate=1.0, kinds=("raise",), attempts=99))
        key = canonical_json(_request().netlist.key)

        async def scenario():
            outcomes = []
            for seed in (1, 2):
                with pytest.raises(ProtocolError) as exc:
                    await engine.serve(_request(seed=seed))
                outcomes.append(exc.value.status)
            assert engine.breaker.state(key) == STATE_OPEN
            degraded = await engine.serve(_request(seed=3))
            engine.faults = None  # the netlist "recovers"
            await asyncio.sleep(0.35)  # past the breaker cooldown
            probe = await engine.serve(_request(seed=4))
            after = await engine.serve(_request(seed=5))
            return outcomes, degraded, probe, after

        outcomes, degraded, probe, after = _serve(engine, scenario)
        assert outcomes == [500, 500]
        assert degraded["degraded"] is True
        assert degraded["degraded_reason"] == "breaker_open"
        assert degraded["runs"] == 1 and len(degraded["cuts"]) == 1
        assert probe["degraded"] is False
        assert after["degraded"] is False
        assert engine.breaker.state(key) == STATE_CLOSED
        stats = engine.breaker.stats()
        assert stats["trips"] == 1 and stats["recoveries"] == 1
        assert engine.counters()["degraded_served"] == 1


class TestServiceChaos:
    def test_worker_death_mid_request_recovers_and_keeps_ledger_clean(
            self, tiny_hg, tmp_path, monkeypatch):
        # Start 0's worker process dies on its first attempt; the
        # retry recovers, the daemon stays healthy, and the ledger
        # line is complete and parseable.
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        with _ServerThread(
                jobs=2, retries=1,
                faults=FaultPlan(targeted={(0, 1): FAULT_EXIT})) as srv, \
                srv.client() as client:
            payload = client.partition(_body(tiny_hg))
            assert payload["statuses"] == {"ok": 2}
            assert payload["degraded"] is False
            assert client.healthz()["status"] == "ok"
        entries = [json.loads(line)
                   for line in ledger.read_text().splitlines()]
        assert len(entries) == 1
        assert entries[0]["fingerprint"] == payload["fingerprint"]

    def test_hanging_worker_mid_request_leaves_daemon_serving(
            self, tiny_hg, tmp_path, monkeypatch):
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        with _ServerThread(
                jobs=2,
                faults=FaultPlan(targeted={(1, 1): FAULT_HANG},
                                 hang_seconds=60.0)) as srv, \
                srv.client() as client:
            payload = client.partition(
                _body(tiny_hg, deadline_ms=2000))
            assert payload["degraded"] is True
            assert payload["degraded_reason"] == "deadline"
            # The daemon survived the kill and keeps serving.
            assert client.healthz()["status"] == "ok"
        for line in ledger.read_text().splitlines():
            assert json.loads(line)["fingerprint"]

    def test_saturating_load_sheds_and_bounds_accepted_latency(self):
        # Open-loop style burst: 8 distinct heavy requests against a
        # 2-deep lane.  The daemon must shed the excess with 429 (and
        # a Retry-After hint) while every accepted request is answered
        # within its deadline + grace.
        deadline_s = 20.0
        with _ServerThread(max_queued=2, breaker_failures=100,
                           default_deadline_ms=int(deadline_s * 1000)) \
                as srv:
            results = []
            lock = threading.Lock()

            def one(i):
                with srv.client(retries=0, timeout=60.0) as client:
                    begun = time.monotonic()
                    try:
                        client.partition({
                            "netlist": {"generate": {"name": "primary1",
                                                     "scale": 0.2,
                                                     "seed": 1}},
                            "algorithm": "fm", "runs": 1, "seed": i,
                            "threshold": 20 + i})
                        outcome = ("ok", time.monotonic() - begun, None)
                    except ServiceError as exc:
                        outcome = (exc.status, time.monotonic() - begun,
                                   exc.retry_after)
                    with lock:
                        results.append(outcome)

            workers = [threading.Thread(target=one, args=(i,))
                       for i in range(8)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            assert all(not w.is_alive() for w in workers)
            shed = [r for r in results if r[0] == 429]
            accepted = [r for r in results if r[0] == "ok"]
            assert shed, f"no 429s under saturation: {results}"
            assert accepted, f"nothing accepted: {results}"
            for _, _, retry_after in shed:
                assert retry_after is not None and retry_after >= 1.0
            for _, elapsed, _ in accepted:
                assert elapsed <= deadline_s + DEADLINE_GRACE_SECONDS + 2.0
            with srv.client() as client:
                assert client.healthz()["status"] == "ok"
                assert client.metric_value(
                    "repro_service_lane_shed_total") == float(len(shed))


def _raw_exchange(port: int, data: bytes, timeout: float = 8.0) -> bytes:
    """Send raw bytes, collect whatever the server answers until it
    closes the connection (or the local timeout strikes)."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        if data:
            sock.sendall(data)
        sock.settimeout(timeout)
        chunks = []
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


class TestHostileInput:
    def _server(self):
        return _ServerThread(server_kw={"idle_timeout": 0.6,
                                        "read_timeout": 0.6,
                                        "max_body_bytes": 1024})

    def test_oversized_body_is_rejected_without_reading_it(self):
        with self._server() as srv:
            response = _raw_exchange(
                srv.port,
                b"POST /partition HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n")
            assert response.startswith(b"HTTP/1.1 413 ")
            with srv.client() as client:
                assert client.healthz()["status"] == "ok"

    def test_slowloris_head_gets_408_and_accept_loop_survives(self):
        with self._server() as srv:
            # A request line but never the terminating CRLFCRLF: the
            # read timeout must cut the client loose with 408.
            response = _raw_exchange(
                srv.port, b"POST /partition HTTP/1.1\r\nContent-")
            assert response.startswith(b"HTTP/1.1 408 ")
            with srv.client() as client:
                assert client.healthz()["status"] == "ok"

    def test_trickled_body_gets_408(self):
        with self._server() as srv:
            response = _raw_exchange(
                srv.port,
                b"POST /partition HTTP/1.1\r\n"
                b"Content-Length: 100\r\n\r\n{\"a\":")  # body stalls
            assert response.startswith(b"HTTP/1.1 408 ")

    def test_idle_connection_is_closed_silently(self):
        with self._server() as srv:
            response = _raw_exchange(srv.port, b"")
            assert response == b""  # no spurious 408 on idle close
            with srv.client() as client:
                assert client.healthz()["status"] == "ok"

    def test_truncated_json_is_a_clean_400(self):
        with self._server() as srv:
            body = b'{"netlist": {'
            response = _raw_exchange(
                srv.port,
                b"POST /partition HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body)
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"not valid JSON" in response

    def test_invalid_deadline_ms_is_a_clean_400(self, tiny_hg):
        with _ServerThread() as srv, srv.client() as client:
            for bad in (0, -5, 10**10, True, "soon"):
                with pytest.raises(ServiceError) as exc:
                    client.partition(_body(tiny_hg, deadline_ms=bad))
                assert exc.value.status == 400, f"deadline_ms={bad!r}"
            assert client.healthz()["status"] == "ok"


class TestJobTableBounds:
    def test_live_cap_sheds_and_ttl_evicts(self):
        table = JobTable(max_finished=8, ttl_seconds=0.05, max_live=2)
        first = table.create("sweep")
        table.create("sweep")
        with pytest.raises(ProtocolError) as exc:
            table.create("sweep")
        assert exc.value.status == 429
        assert exc.value.retry_after is not None
        # Finish one past its TTL: the next create prunes it and fits.
        first.state = JOB_DONE
        first.finished = time.time() - 1.0
        third = table.create("sweep")
        assert table.evictions == 1
        with pytest.raises(ProtocolError) as exc:
            table.get(first.id)
        assert exc.value.status == 404
        assert table.get(third.id) is third

    def test_max_finished_still_bounds_history(self):
        table = JobTable(max_finished=2, ttl_seconds=None)
        jobs = [table.create("sweep") for _ in range(5)]
        for i, job in enumerate(jobs):
            job.state = JOB_DONE
            job.finished = time.time() + i  # strictly ordered
        table.create("sweep")  # triggers the prune
        assert table.evictions == 3
        assert table.get(jobs[-1].id) is jobs[-1]
        with pytest.raises(ProtocolError):
            table.get(jobs[0].id)


class _Stub429Server:
    """Tiny raw-socket server: answers 429 (with Retry-After: 0)
    ``n_shed`` times on a keep-alive connection, then 200."""

    def __init__(self, n_shed: int = 1):
        self.n_shed = n_shed
        self.requests_seen = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        conn, _ = self._sock.accept()
        with conn:
            buffer = b""
            while True:
                while b"\r\n\r\n" not in buffer:
                    chunk = conn.recv(4096)
                    if not chunk:
                        return
                    buffer += chunk
                head, _, buffer = buffer.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                while len(buffer) < length:
                    buffer += conn.recv(4096)
                buffer = buffer[length:]
                self.requests_seen += 1
                if self.requests_seen <= self.n_shed:
                    body = b'{"error": "shed"}'
                    conn.sendall(
                        b"HTTP/1.1 429 Too Many Requests\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n".encode()
                        + b"Retry-After: 0\r\n"
                        b"Connection: keep-alive\r\n\r\n" + body)
                    continue
                body = b'{"ok": true}'
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n".encode()
                    + b"Connection: close\r\n\r\n" + body)
                return

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._sock.close()
        self._thread.join(timeout=5)


class TestClientRetries:
    def test_client_honors_retry_after_on_429(self):
        with _Stub429Server(n_shed=2) as stub:
            with ServiceClient("127.0.0.1", stub.port, timeout=10,
                               retries=2, backoff_seconds=0.01) as client:
                begun = time.monotonic()
                payload = client._json("POST", "/partition", {"x": 1})
                elapsed = time.monotonic() - begun
            assert payload == {"ok": True}
            assert stub.requests_seen == 3
            assert elapsed < 5.0  # Retry-After: 0 kept the waits short

    def test_exhausted_retries_surface_the_429(self):
        with _Stub429Server(n_shed=10) as stub:
            with ServiceClient("127.0.0.1", stub.port, timeout=10,
                               retries=1, backoff_seconds=0.01) as client:
                with pytest.raises(ServiceError) as exc:
                    client._json("POST", "/partition", {"x": 1})
            assert exc.value.status == 429
            assert exc.value.retry_after == 0.0
            assert stub.requests_seen == 2
