"""Tests for the ML multilevel algorithm (Figure 2)."""

import pytest

from repro.core import (MLConfig, build_hierarchy, ml_bipartition,
                        ml_multistart)
from repro.errors import ClusteringError, ConfigError
from repro.fm import fm_bipartition
from repro.hypergraph import Hypergraph, grid_circuit, hierarchical_circuit
from repro.partition import BalanceConstraint, cut
from repro.rng import child_seeds


class TestMLConfig:
    def test_paper_defaults(self):
        config = MLConfig()
        assert config.coarsening_threshold == 35
        assert config.matching_ratio == 1.0
        assert config.engine == "fm"
        assert config.matching_scheme == "conn"

    def test_engine_config_applies_clip(self):
        assert MLConfig(engine="clip").engine_config().clip
        assert not MLConfig(engine="fm").engine_config().clip

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            MLConfig(coarsening_threshold=1)

    def test_invalid_ratio(self):
        with pytest.raises(ConfigError):
            MLConfig(matching_ratio=0.0)

    def test_invalid_engine(self):
        with pytest.raises(ConfigError):
            MLConfig(engine="prop")


class TestHierarchy:
    def test_structure(self, large_hg):
        h = build_hierarchy(large_hg, MLConfig(), seed=0)
        assert len(h.netlists) == len(h.clusterings) + 1
        assert h.netlists[0] is large_hg
        assert h.levels >= 1

    def test_sizes_strictly_decrease(self, large_hg):
        h = build_hierarchy(large_hg, MLConfig(), seed=0)
        sizes = h.module_counts()
        assert all(b < a for a, b in zip(sizes, sizes[1:]))

    def test_area_preserved_through_levels(self, large_hg):
        h = build_hierarchy(large_hg, MLConfig(), seed=1)
        for netlist in h.netlists:
            assert netlist.total_area == pytest.approx(large_hg.total_area)

    def test_threshold_respected_or_stalled(self, large_hg):
        config = MLConfig(coarsening_threshold=50)
        h = build_hierarchy(large_hg, config, seed=2)
        # either we reached the threshold or the last step stalled
        if h.coarsest.num_modules > 50:
            # then one more match() would not shrink it — verified by
            # the break condition; re-check it here
            from repro.clustering import match
            c = match(h.coarsest, ratio=1.0, seed=0)
            assert c.num_clusters >= int(0.95 * h.coarsest.num_modules) \
                or h.levels == config.max_levels

    def test_slower_ratio_gives_more_levels(self, large_hg):
        fast = build_hierarchy(large_hg, MLConfig(matching_ratio=1.0),
                               seed=3)
        slow = build_hierarchy(large_hg, MLConfig(matching_ratio=0.4),
                               seed=3)
        assert slow.levels > fast.levels

    def test_max_levels_cap(self, large_hg):
        config = MLConfig(max_levels=2)
        h = build_hierarchy(large_hg, config, seed=4)
        assert h.levels <= 2


class TestMLBipartition:
    def test_reported_cut_matches_reference(self, large_hg):
        result = ml_bipartition(large_hg, seed=1)
        assert result.cut == cut(large_hg, result.partition)

    def test_balance_respected(self, large_hg):
        constraint = BalanceConstraint.from_tolerance(large_hg, 0.1)
        for seed in child_seeds(0, 4):
            result = ml_bipartition(large_hg, seed=seed)
            assert constraint.is_feasible(
                result.partition.part_areas(large_hg))

    def test_deterministic(self, large_hg):
        a = ml_bipartition(large_hg, seed=5)
        b = ml_bipartition(large_hg, seed=5)
        assert a.cut == b.cut
        assert a.partition == b.partition

    def test_level_metadata(self, large_hg):
        result = ml_bipartition(large_hg, seed=2)
        assert result.levels == len(result.level_sizes) - 1
        assert len(result.level_cuts) == result.levels + 1
        assert result.level_sizes[0] == large_hg.num_modules

    def test_finds_grid_optimum(self):
        hg = grid_circuit(8, 16, seed=7)
        best = min(ml_bipartition(hg, seed=s).cut
                   for s in child_seeds(0, 5))
        assert best == 8

    @pytest.mark.parametrize("engine", ["fm", "clip"])
    def test_both_engines(self, large_hg, engine):
        result = ml_bipartition(large_hg, config=MLConfig(engine=engine),
                                seed=3)
        assert result.cut == cut(large_hg, result.partition)

    def test_small_instance_skips_coarsening(self, tiny_hg):
        result = ml_bipartition(tiny_hg, seed=0)
        assert result.levels == 0
        assert result.cut == 1

    def test_single_module_rejected(self):
        hg = Hypergraph([], num_modules=1)
        with pytest.raises(ClusteringError):
            ml_bipartition(hg, seed=0)

    def test_ml_beats_flat_fm_on_average(self):
        """The paper's central claim (Table IV) at reduced scale."""
        hg = hierarchical_circuit(1500, 1800, seed=41)
        seeds = child_seeds(9, 6)
        fm_avg = sum(fm_bipartition(hg, seed=s).cut
                     for s in seeds) / len(seeds)
        ml_avg = sum(ml_bipartition(hg, seed=s).cut
                     for s in seeds) / len(seeds)
        assert ml_avg < fm_avg

    @pytest.mark.parametrize("scheme", ["conn", "heavy", "random"])
    def test_matching_scheme_ablations_work(self, large_hg, scheme):
        config = MLConfig(matching_scheme=scheme)
        result = ml_bipartition(large_hg, config=config, seed=4)
        assert result.cut == cut(large_hg, result.partition)


class TestMultistart:
    def test_stats(self, medium_hg):
        ms = ml_multistart(medium_hg, runs=5, seed=0)
        assert ms.runs == 5
        assert ms.min_cut == min(ms.cuts)
        assert ms.min_cut <= ms.avg_cut
        assert ms.best_partition is not None
        assert cut(medium_hg, ms.best_partition) == ms.min_cut

    def test_prefix_property(self, medium_hg):
        """Run i is identical whether 3 or 6 runs were requested."""
        small = ml_multistart(medium_hg, runs=3, seed=7)
        big = ml_multistart(medium_hg, runs=6, seed=7)
        assert big.cuts[:3] == small.cuts

    def test_prefix_method(self, medium_hg):
        ms = ml_multistart(medium_hg, runs=6, seed=8, keep_results=True)
        head = ms.prefix(3)
        assert head.cuts == ms.cuts[:3]
        assert head.min_cut == min(ms.cuts[:3])

    def test_prefix_bad_count(self, medium_hg):
        ms = ml_multistart(medium_hg, runs=2, seed=0)
        with pytest.raises(ConfigError):
            ms.prefix(5)

    def test_zero_runs_rejected(self, medium_hg):
        with pytest.raises(ConfigError):
            ml_multistart(medium_hg, runs=0)
