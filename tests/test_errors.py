"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (BalanceError, ClusteringError, ConfigError,
                          HypergraphError, ParseError, PartitionError,
                          ReproError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [HypergraphError, ParseError,
                                     PartitionError, BalanceError,
                                     ClusteringError, ConfigError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_balance_is_partition_error(self):
        assert issubclass(BalanceError, PartitionError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise BalanceError("x")


class TestParseError:
    def test_line_prefix(self):
        err = ParseError("bad token", line=12)
        assert "line 12" in str(err)
        assert err.line == 12

    def test_no_line(self):
        err = ParseError("bad header")
        assert str(err) == "bad header"
        assert err.line is None
