"""End-to-end integration tests across module boundaries."""

import pytest

from repro import (FMConfig, MLConfig, clip_bipartition, cut,
                   fm_bipartition, hierarchical_circuit, load_circuit,
                   ml_bipartition, ml_quadrisection, read_hmetis,
                   write_hmetis)
from repro.baselines import gordian_quadrisection, lsmc_bipartition
from repro.clustering import induce, match, project
from repro.core import build_hierarchy
from repro.partition import BalanceConstraint, soed
from repro.placement import quadrisection_placement
from repro.rng import child_seeds


class TestFullBipartitionPipeline:
    def test_file_to_partition(self, tmp_path):
        """generate -> write -> read -> ML -> verify, the CLI's path."""
        original = load_circuit("s9234", scale=0.05, seed=0)
        path = tmp_path / "c.hgr"
        write_hmetis(original, path)
        loaded = read_hmetis(path)
        result = ml_bipartition(loaded, seed=1)
        assert result.cut == cut(original, result.partition)

    def test_hierarchy_then_manual_uncoarsen_matches_invariant(self):
        """Building the hierarchy by hand and projecting a solution
        down gives exactly the coarse cut at every step."""
        hg = hierarchical_circuit(800, 960, seed=71)
        hierarchy = build_hierarchy(hg, MLConfig(matching_ratio=0.7),
                                    seed=2)
        assert hierarchy.levels >= 3
        coarse_result = fm_bipartition(hierarchy.coarsest, seed=3)
        solution = coarse_result.partition
        reference = cut(hierarchy.coarsest, solution)
        for i in range(hierarchy.levels - 1, -1, -1):
            solution = project(solution, hierarchy.clusterings[i])
            assert cut(hierarchy.netlists[i], solution) == reference

    def test_refinement_monotone_down_the_hierarchy(self):
        """ML's reported per-level cuts never increase."""
        hg = hierarchical_circuit(1200, 1440, seed=73)
        result = ml_bipartition(hg, seed=4)
        for earlier, later in zip(result.level_cuts,
                                  result.level_cuts[1:]):
            assert later <= earlier

    def test_algorithm_ladder(self):
        """Quality ordering over a suite circuit: ML_C average beats
        flat CLIP average beats FIFO-FM average."""
        hg = load_circuit("biomed", scale=0.15, seed=0)
        seeds = child_seeds(5, 5)

        def avg(fn):
            return sum(fn(s).cut for s in seeds) / len(seeds)

        mlc = avg(lambda s: ml_bipartition(
            hg, config=MLConfig(engine="clip"), seed=s))
        clip = avg(lambda s: clip_bipartition(hg, seed=s))
        fifo = avg(lambda s: fm_bipartition(
            hg, config=FMConfig(bucket_policy="fifo"), seed=s))
        assert mlc <= clip <= fifo

    def test_lsmc_with_ml_quality_band(self):
        """LSMC with several descents approaches (but does not beat)
        multilevel on clustered instances."""
        hg = load_circuit("primary2", scale=0.15, seed=0)
        ml = min(ml_bipartition(hg, seed=s).cut for s in child_seeds(6, 3))
        lsmc = lsmc_bipartition(hg, descents=10, seed=6).cut
        assert ml <= lsmc * 1.2


class TestFullQuadrisectionPipeline:
    def test_quad_vs_gordian_and_placement(self):
        hg = load_circuit("s13207", scale=0.08, seed=0)
        quad = ml_quadrisection(hg, seed=1)
        gordian = gordian_quadrisection(hg, seed=1)
        assert quad.cut < gordian.cut
        assert soed(hg, quad.partition) == quad.soed

        placement = quadrisection_placement(hg, levels=2, seed=1)
        assert len(placement.regions) == 16
        assert placement.hpwl > 0

    def test_balance_holds_through_entire_stack(self):
        hg = load_circuit("biomed", scale=0.08, seed=0)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1, k=4)
        for seed in child_seeds(7, 3):
            result = ml_quadrisection(hg, seed=seed)
            assert constraint.is_feasible(
                result.partition.part_areas(hg))


class TestGoldenRegression:
    """Exact-value pins: any behavioural drift in the engines, the
    generators, or the seeding shows up here first.  If a change is
    *intended* to alter results, update these values deliberately."""

    def test_generator_fingerprint(self):
        hg = hierarchical_circuit(100, 120, seed=2024)
        fingerprint = (hg.num_pins, hg.pins(0), hg.pins(119))
        assert fingerprint == (334, (63, 95, 27, 80), (64, 44))

    def test_fm_cut_pinned(self):
        hg = hierarchical_circuit(300, 360, seed=2024)
        assert fm_bipartition(hg, seed=11).cut == 22

    def test_clip_cut_pinned(self):
        hg = hierarchical_circuit(300, 360, seed=2024)
        assert clip_bipartition(hg, seed=11).cut == 21

    def test_ml_cut_pinned(self):
        # 24 before build_hierarchy switched to a private child stream
        # (the hierarchy-reuse contract); re-pinned deliberately.
        hg = hierarchical_circuit(300, 360, seed=2024)
        assert ml_bipartition(hg, seed=11).cut == 20
