"""Tests for multilevel quadrisection."""

import pytest

from repro.core import (MLConfig, default_quad_config, ml_kway,
                        ml_quadrisection)
from repro.errors import ClusteringError, PartitionError
from repro.hypergraph import hierarchical_circuit
from repro.partition import BalanceConstraint, cut, soed
from repro.rng import child_seeds


class TestDefaults:
    def test_table_ix_settings(self):
        config = default_quad_config()
        assert config.coarsening_threshold == 100
        assert config.matching_ratio == 1.0
        assert config.engine == "fm"


class TestMLKWay:
    def test_reported_metrics(self, large_hg):
        result = ml_quadrisection(large_hg, seed=1)
        assert result.k == 4
        assert result.cut == cut(large_hg, result.partition)
        assert result.soed == soed(large_hg, result.partition)

    def test_balance(self, large_hg):
        constraint = BalanceConstraint.from_tolerance(large_hg, 0.1, k=4)
        result = ml_quadrisection(large_hg, seed=2)
        assert constraint.is_feasible(result.partition.part_areas(large_hg))

    def test_deterministic(self, medium_hg):
        a = ml_quadrisection(medium_hg, seed=3)
        b = ml_quadrisection(medium_hg, seed=3)
        assert a.partition == b.partition

    def test_k3(self, medium_hg):
        result = ml_kway(medium_hg, k=3, seed=4)
        assert result.partition.k == 3
        assert result.cut == cut(medium_hg, result.partition)

    def test_rejects_too_few_modules(self):
        from repro.hypergraph import Hypergraph
        hg = Hypergraph([[0, 1]], num_modules=2)
        with pytest.raises(ClusteringError):
            ml_kway(hg, k=4)

    def test_level_metadata(self, large_hg):
        result = ml_quadrisection(large_hg, seed=5)
        assert result.level_sizes[0] == large_hg.num_modules
        assert len(result.level_cuts) == result.levels + 1

    def test_cut_objective_mode(self, medium_hg):
        result = ml_quadrisection(medium_hg, objective="cut", seed=6)
        assert result.cut == cut(medium_hg, result.partition)


class TestFixedModules:
    def test_preassignment_respected(self, medium_hg):
        fixed = [-1] * medium_hg.num_modules
        fixed[0], fixed[1], fixed[2], fixed[3] = 0, 1, 2, 3
        result = ml_quadrisection(medium_hg, fixed=fixed, seed=7)
        for v in range(4):
            assert result.partition.part_of(v) == v

    def test_bad_fixed_length(self, medium_hg):
        with pytest.raises(PartitionError):
            ml_quadrisection(medium_hg, fixed=[0, 1], seed=0)

    def test_bad_fixed_part(self, medium_hg):
        fixed = [-1] * medium_hg.num_modules
        fixed[0] = 7
        with pytest.raises(PartitionError):
            ml_quadrisection(medium_hg, fixed=fixed, seed=0)


class TestQuality:
    def test_ml_beats_flat_kway_on_average(self):
        """Table IX's direction: ML_F 4-way beats flat FM 4-way."""
        from repro.fm import kway_partition
        hg = hierarchical_circuit(900, 1100, seed=51)
        seeds = child_seeds(3, 4)
        flat_avg = sum(kway_partition(hg, k=4, seed=s).cut
                       for s in seeds) / len(seeds)
        ml_avg = sum(ml_quadrisection(hg, seed=s).cut
                     for s in seeds) / len(seeds)
        assert ml_avg < flat_avg
