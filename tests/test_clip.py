"""Tests for the CLIP engine variant."""

import pytest

from repro.fm import FMConfig, clip_bipartition, clip_config, fm_bipartition
from repro.hypergraph import hierarchical_circuit
from repro.partition import BalanceConstraint, cut
from repro.rng import child_seeds


class TestClipConfig:
    def test_enables_clip(self):
        assert clip_config().clip

    def test_preserves_other_fields(self):
        base = FMConfig(bucket_policy="fifo", tolerance=0.2)
        derived = clip_config(base)
        assert derived.clip
        assert derived.bucket_policy == "fifo"
        assert derived.tolerance == 0.2


class TestClipCorrectness:
    def test_cut_matches_reference(self, medium_hg):
        result = clip_bipartition(medium_hg, seed=1)
        assert result.cut == cut(medium_hg, result.partition)

    def test_balance_respected(self, medium_hg):
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        for seed in child_seeds(2, 5):
            result = clip_bipartition(medium_hg, seed=seed)
            assert constraint.is_feasible(
                result.partition.part_areas(medium_hg))

    def test_deterministic(self, medium_hg):
        assert clip_bipartition(medium_hg, seed=3).cut == \
            clip_bipartition(medium_hg, seed=3).cut

    def test_improves_on_initial(self, medium_hg):
        for seed in child_seeds(4, 5):
            result = clip_bipartition(medium_hg, seed=seed)
            assert result.cut <= result.initial_cut

    def test_finds_planted_bridge(self, tiny_hg):
        assert clip_bipartition(tiny_hg, seed=0).cut == 1

    @pytest.mark.parametrize("policy", ["lifo", "fifo"])
    def test_clip_with_either_linked_policy(self, medium_hg, policy):
        config = FMConfig(clip=True, bucket_policy=policy)
        result = fm_bipartition(medium_hg, config=config, seed=5)
        assert result.cut == cut(medium_hg, result.partition)


class TestClipBehaviour:
    def test_clip_differs_from_fm(self, medium_hg):
        """CLIP explores a different trajectory than FM from the same
        seed (the bucket reorganisation changes move order)."""
        fm_cuts = [fm_bipartition(medium_hg, seed=s).cut
                   for s in child_seeds(6, 6)]
        clip_cuts = [clip_bipartition(medium_hg, seed=s).cut
                     for s in child_seeds(6, 6)]
        assert fm_cuts != clip_cuts

    def test_clip_average_not_worse_at_scale(self):
        """Table III's direction: CLIP's average cut <= FM's, with a
        small slack for the reduced instance size."""
        hg = hierarchical_circuit(900, 1100, seed=31)
        seeds = child_seeds(8, 8)
        fm_avg = sum(fm_bipartition(hg, seed=s).cut
                     for s in seeds) / len(seeds)
        clip_avg = sum(clip_bipartition(hg, seed=s).cut
                       for s in seeds) / len(seeds)
        assert clip_avg <= fm_avg * 1.10
