"""Tests for Clustering, Match, Induce, and Project."""

import pytest

from repro.clustering import (Clustering, connectivity, induce, match,
                              project)
from repro.errors import ClusteringError, ConfigError
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import Partition, cut
from repro.rng import child_seeds


class TestClusteringObject:
    def test_basic(self):
        c = Clustering([0, 0, 1, 2, 1])
        assert c.num_modules == 5
        assert c.num_clusters == 3
        assert c.groups() == [[0, 1], [2, 4], [3]]

    def test_from_groups(self):
        c = Clustering.from_groups([[0, 2], [1], [3, 4]], num_modules=5)
        assert c.cluster_of == [0, 1, 0, 2, 2]

    def test_from_groups_overlap_rejected(self):
        with pytest.raises(ClusteringError, match="appears in clusters"):
            Clustering.from_groups([[0, 1], [1, 2]], num_modules=3)

    def test_from_groups_uncovered_rejected(self):
        with pytest.raises(ClusteringError, match="not covered"):
            Clustering.from_groups([[0]], num_modules=2)

    def test_noncontiguous_ids_rejected(self):
        with pytest.raises(ClusteringError, match="contiguous"):
            Clustering([0, 2])

    def test_cluster_areas(self, weighted_hg):
        c = Clustering([0, 0, 1, 1])
        assert c.cluster_areas(weighted_hg) == [3.0, 7.0]

    def test_max_cluster_size(self):
        assert Clustering([0, 0, 0, 1]).max_cluster_size() == 3


class TestConnectivity:
    def test_formula(self):
        hg = Hypergraph([[0, 1], [0, 1, 2]], num_modules=3,
                        areas=[2.0, 3.0, 1.0])
        # nets: {0,1} size2 -> 1/1; {0,1,2} size3 -> 1/2; areas 2*3=6
        assert connectivity(hg, 0, 1) == pytest.approx((1 + 0.5) / 6)

    def test_symmetric(self, medium_hg):
        assert connectivity(medium_hg, 3, 17) == \
            pytest.approx(connectivity(medium_hg, 17, 3))

    def test_zero_when_unconnected(self, tiny_hg):
        assert connectivity(tiny_hg, 0, 5) == 0.0

    def test_large_nets_ignored(self):
        hg = Hypergraph([list(range(12)), [0, 1]], num_modules=12)
        # only the 2-pin net counts; the 12-pin net exceeds the cutoff
        assert connectivity(hg, 0, 1) == pytest.approx(1.0)
        assert connectivity(hg, 2, 3) == 0.0


class TestMatch:
    def test_valid_clustering(self, medium_hg):
        c = match(medium_hg, ratio=1.0, seed=0)
        assert c.num_modules == medium_hg.num_modules
        assert c.max_cluster_size() <= 2  # matching: pairs or singletons

    def test_full_ratio_shrinks_instance(self, medium_hg):
        c = match(medium_hg, ratio=1.0, seed=0)
        assert c.num_clusters < medium_hg.num_modules

    def test_ratio_controls_matched_fraction(self, large_hg):
        """Lower R must leave more singletons (slower coarsening)."""
        full = match(large_hg, ratio=1.0, seed=1).num_clusters
        half = match(large_hg, ratio=0.5, seed=1).num_clusters
        third = match(large_hg, ratio=0.33, seed=1).num_clusters
        assert full < half < third < large_hg.num_modules

    def test_half_ratio_bound(self, large_hg):
        """With R=0.5 at most half the modules are matched, so at least
        3n/4 clusters remain."""
        c = match(large_hg, ratio=0.5, seed=2)
        assert c.num_clusters >= int(0.75 * large_hg.num_modules) - 1

    def test_deterministic(self, medium_hg):
        a = match(medium_hg, ratio=0.7, seed=5)
        b = match(medium_hg, ratio=0.7, seed=5)
        assert a.cluster_of == b.cluster_of

    @pytest.mark.parametrize("scheme", ["conn", "heavy", "random"])
    def test_all_schemes_valid(self, medium_hg, scheme):
        c = match(medium_hg, ratio=1.0, scheme=scheme, seed=3)
        assert c.max_cluster_size() <= 2
        assert c.num_clusters < medium_hg.num_modules

    def test_prefers_strong_connection(self, monkeypatch):
        """Visiting module 0 first: it shares two 2-pin nets with 1 but
        only part of one 3-pin net with 2, so it must pair with 1."""
        monkeypatch.setattr("repro.clustering.matching.random_permutation",
                            lambda n, rng: list(range(n)))
        hg = Hypergraph([[0, 1], [0, 1], [0, 2, 3]], num_modules=4)
        c = match(hg, ratio=1.0, seed=0)
        assert c.cluster_of[0] == c.cluster_of[1]
        assert c.cluster_of[2] != c.cluster_of[0]

    def test_area_term_prefers_small_partner(self, monkeypatch):
        """Visiting module 0 first with two equally-connected partners
        of different areas: conn's area term picks the smaller one."""
        monkeypatch.setattr("repro.clustering.matching.random_permutation",
                            lambda n, rng: list(range(n)))
        hg = Hypergraph([[0, 2], [0, 1]], num_modules=3,
                        areas=[1.0, 1.0, 10.0])
        c = match(hg, ratio=1.0, scheme="conn", seed=0)
        assert c.cluster_of[0] == c.cluster_of[1]

    def test_heavy_scheme_ignores_area(self, monkeypatch):
        """Same instance under the 'heavy' scheme: the area term is
        gone, so the tie falls to the lower module index (2 comes from
        the first net listed)."""
        monkeypatch.setattr("repro.clustering.matching.random_permutation",
                            lambda n, rng: list(range(n)))
        hg = Hypergraph([[0, 2], [0, 1]], num_modules=3,
                        areas=[1.0, 1.0, 10.0])
        c = match(hg, ratio=1.0, scheme="heavy", seed=0)
        assert c.cluster_of[0] == c.cluster_of[1]  # sorted order tie -> 1

    def test_invalid_ratio(self, medium_hg):
        with pytest.raises(ClusteringError):
            match(medium_hg, ratio=0.0)
        with pytest.raises(ClusteringError):
            match(medium_hg, ratio=1.5)

    def test_invalid_scheme(self, medium_hg):
        with pytest.raises(ConfigError):
            match(medium_hg, scheme="spectral")


class TestInduce:
    def test_definition_1(self):
        hg = Hypergraph([[0, 1], [1, 2], [2, 3], [0, 3]], num_modules=4)
        c = Clustering([0, 0, 1, 1])
        coarse = induce(hg, c)
        assert coarse.num_modules == 2
        # nets {0,1} and {2,3} are absorbed; {1,2} and {0,3} merge into
        # one weighted coarse net
        assert coarse.num_nets == 1
        assert coarse.net_weight(0) == 2

    def test_area_preserved(self, weighted_hg):
        c = Clustering([0, 0, 1, 1])
        coarse = induce(weighted_hg, c)
        assert coarse.area(0) == 3.0
        assert coarse.area(1) == 7.0
        assert coarse.total_area == weighted_hg.total_area

    def test_no_merge_mode(self):
        hg = Hypergraph([[0, 1], [1, 2], [2, 3], [0, 3]], num_modules=4)
        c = Clustering([0, 0, 1, 1])
        coarse = induce(hg, c, merge_parallel=False)
        assert coarse.num_nets == 2
        assert all(coarse.net_weight(e) == 1 for e in coarse.all_nets())

    def test_weight_accumulates_across_levels(self):
        hg = Hypergraph([[0, 1]] , num_modules=2, net_weights=[3])
        # trivial clustering keeps both modules separate
        coarse = induce(hg, Clustering([0, 1]))
        assert coarse.net_weight(0) == 3

    def test_size_mismatch(self, tiny_hg):
        with pytest.raises(ClusteringError):
            induce(tiny_hg, Clustering([0, 1]))


class TestProject:
    def test_definition_2(self):
        c = Clustering([0, 0, 1, 1, 2])
        coarse_solution = Partition([0, 1, 1], k=2)
        fine = project(coarse_solution, c)
        assert fine.assignment == [0, 0, 1, 1, 1]

    def test_kway(self):
        c = Clustering([0, 1, 1, 2])
        fine = project(Partition([3, 0, 2], k=4), c)
        assert fine.assignment == [3, 0, 0, 2]

    def test_mismatch_rejected(self):
        with pytest.raises(ClusteringError):
            project(Partition([0, 1], k=2), Clustering([0, 1, 2]))


class TestCutInvariant:
    """The load-bearing multilevel invariant: a coarse solution's
    weighted cut equals the cut of its projection on the fine netlist."""

    def test_single_level(self, medium_hg):
        c = match(medium_hg, ratio=1.0, seed=4)
        coarse = induce(medium_hg, c)
        from repro.partition import random_partition
        coarse_solution = random_partition(coarse, seed=5)
        fine_solution = project(coarse_solution, c)
        assert cut(coarse, coarse_solution) == cut(medium_hg, fine_solution)

    def test_across_three_levels(self, large_hg):
        hgs = [large_hg]
        clusterings = []
        for level_seed in range(3):
            c = match(hgs[-1], ratio=0.8, seed=level_seed)
            clusterings.append(c)
            hgs.append(induce(hgs[-1], c))
        from repro.partition import random_partition
        solution = random_partition(hgs[-1], seed=6)
        coarse_cut = cut(hgs[-1], solution)
        for c in reversed(clusterings):
            solution = project(solution, c)
        assert cut(large_hg, solution) == coarse_cut
