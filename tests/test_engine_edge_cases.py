"""Edge-case and stress tests for the iterative engines."""

import pytest

from repro.errors import ConfigError
from repro.fm import FMConfig, clip_bipartition, fm_bipartition, kway_partition
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import (BalanceConstraint, Partition, cut,
                             random_partition)
from repro.rng import child_seeds


class TestDegenerateInstances:
    def test_two_modules_one_net(self):
        """The paper's slack max(A(v*), r*A) = 1 makes the one-sided
        solution feasible here, so FM legitimately reaches cut 0."""
        hg = Hypergraph([[0, 1]], num_modules=2)
        result = fm_bipartition(hg, seed=0)
        assert result.cut == 0
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(hg))

    def test_no_nets_at_all(self):
        hg = Hypergraph([], num_modules=6)
        result = fm_bipartition(hg, seed=0)
        assert result.cut == 0
        assert sorted(result.partition.part_sizes()) == [3, 3]

    def test_single_giant_net(self):
        hg = Hypergraph([list(range(12))], num_modules=12)
        result = fm_bipartition(hg, seed=0)
        assert result.cut == 1  # unavoidable

    def test_star_topology(self):
        """Hub module on every net; FM must still balance."""
        hg = Hypergraph([[0, i] for i in range(1, 13)], num_modules=13)
        result = fm_bipartition(hg, seed=1)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(hg))
        # hub's side keeps its spokes: cut equals spokes on other side
        sizes = result.partition.part_sizes()
        assert result.cut == min(sizes[0], sizes[1], 12 - sizes[0] + 1,
                                 12 - sizes[1] + 1) or result.cut <= 7

    def test_disconnected_components(self):
        """Two cliques with no connection: optimal cut is zero."""
        nets = [[i, j] for i in range(4) for j in range(i + 1, 4)]
        nets += [[i, j] for i in range(4, 8) for j in range(i + 1, 8)]
        hg = Hypergraph(nets, num_modules=8)
        best = min(fm_bipartition(hg, seed=s).cut
                   for s in child_seeds(0, 8))
        assert best == 0

    def test_parallel_nets_all_weight(self):
        hg = Hypergraph([[0, 1]] * 5 + [[1, 2]], num_modules=3)
        result = fm_bipartition(hg, seed=2)
        # separating 0 and 1 costs 5; the engine must prefer cutting {1,2}
        assert result.cut == 1


class TestExtremeBalance:
    def test_very_loose_tolerance(self, medium_hg):
        config = FMConfig(tolerance=0.45)
        result = fm_bipartition(medium_hg, config=config, seed=0)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.45)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_zero_tolerance_unit_areas(self, medium_hg):
        """r = 0 leaves slack max(A(v*), 0) = 1, i.e. near-exact
        bisection for unit areas."""
        config = FMConfig(tolerance=0.0)
        result = fm_bipartition(medium_hg, config=config, seed=1)
        sizes = result.partition.part_sizes()
        assert abs(sizes[0] - sizes[1]) <= 2

    def test_huge_module(self):
        """One module as big as everything else combined."""
        nets = [[i, i + 1] for i in range(9)]
        areas = [9.0] + [1.0] * 9
        hg = Hypergraph(nets, num_modules=10, areas=areas)
        result = fm_bipartition(hg, seed=2)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(hg))


class TestClipEdgeCases:
    def test_clip_on_no_nets(self):
        hg = Hypergraph([], num_modules=4)
        assert clip_bipartition(hg, seed=0).cut == 0

    def test_clip_with_heavy_weights(self):
        """Weighted nets stress the doubled CLIP bucket range."""
        nets = [[i, (i + 1) % 10] for i in range(10)]
        weights = [1 + 7 * (i % 3) for i in range(10)]
        hg = Hypergraph(nets, num_modules=10, net_weights=weights)
        result = clip_bipartition(hg, seed=3)
        assert result.cut == cut(hg, result.partition)

    def test_clip_many_passes_bounded(self, medium_hg):
        result = clip_bipartition(medium_hg,
                                  config=FMConfig(clip=True, max_passes=3),
                                  seed=4)
        assert result.passes <= 3


class TestKWayEdgeCases:
    def test_k_equals_modules(self):
        hg = Hypergraph([[i, (i + 1) % 6] for i in range(6)],
                        num_modules=6)
        result = kway_partition(hg, k=6, objective="cut", seed=0,
                                config=FMConfig(tolerance=0.4))
        assert result.cut == cut(hg, result.partition)

    def test_k8_on_medium(self, medium_hg):
        result = kway_partition(medium_hg, k=8, seed=1)
        assert result.partition.k == 8
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1, k=8)
        assert constraint.is_feasible(
            result.partition.part_areas(medium_hg))

    def test_weighted_areas_k4(self):
        areas = [1.0 + (i % 4) for i in range(64)]
        nets = [[i, (i + 1) % 64, (i + 7) % 64] for i in range(64)]
        hg = Hypergraph(nets, num_modules=64, areas=areas)
        result = kway_partition(hg, k=4, seed=2)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1, k=4)
        assert constraint.is_feasible(result.partition.part_areas(hg))


class TestRefinementContracts:
    def test_fm_idempotent_on_own_output(self, medium_hg):
        """Refining FM's output again never increases the cut."""
        first = fm_bipartition(medium_hg, seed=5)
        second = fm_bipartition(medium_hg, initial=first.partition, seed=6)
        assert second.cut <= first.cut

    def test_seed_independence_of_instance(self):
        """Different seeds explore different solutions."""
        hg = hierarchical_circuit(400, 480, seed=91)
        cuts = {fm_bipartition(hg, seed=s).cut for s in child_seeds(0, 8)}
        assert len(cuts) > 1

    def test_initial_partition_not_mutated(self, medium_hg):
        initial = random_partition(medium_hg, seed=7)
        snapshot = list(initial.assignment)
        fm_bipartition(medium_hg, initial=initial, seed=7)
        assert initial.assignment == snapshot

    def test_max_net_size_affects_internal_only(self):
        """Shrinking max_net_size changes what FM optimises but the
        reported cut always covers the whole netlist."""
        hg = hierarchical_circuit(200, 240, seed=92)
        tight = fm_bipartition(hg, config=FMConfig(max_net_size=3),
                               seed=8)
        assert tight.cut == cut(hg, tight.partition)
        assert tight.internal_cut <= tight.cut
