"""Decision-recorder tests: flight recorder, replay audit, diff-run.

Covers the observability acceptance criteria end to end:

* the recorder is a true no-op by default and never perturbs results
  in any kernel mode;
* replaying a recording reproduces the exact final cut and assignment
  (bit-identical) in all three kernel modes, serially and from the
  process pool;
* ``diff-run`` reports the exact first diverging decision between a
  csr and a numpy recording of the same seeded run (golden-pinned on
  hier300), and reports csr vs reference as decision-identical;
* the CLI round-trip (``partition --record`` → ``replay`` →
  ``diff-run``) and the service surface (``"record": true`` →
  ``GET /record/<id>``) ship a replayable stream.
"""

import asyncio
import json

import pytest

from repro.core import ml_bipartition
from repro.core.config import MLConfig
from repro.harness import Algorithm
from repro.hypergraph import hierarchical_circuit, write_json
from repro.kernels import KERNEL_MODES, use_kernels
from repro.obs import (BufferRecorder, diff_events, diff_recordings,
                       group_starts, read_record, recorder, recording,
                       replay_recording)
from repro.obs.recorder import NoopRecorder
from repro.runtime import Portfolio, execute

pytestmark = pytest.mark.recorder

try:
    import numpy  # noqa: F401
    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is a hard dependency
    _HAVE_NUMPY = False


def _modes():
    return [m for m in KERNEL_MODES if m != "numpy" or _HAVE_NUMPY]


@pytest.fixture(scope="module")
def hier300():
    # The divergence workhorse: hierarchical structure deep enough for
    # several coarsening levels, with refinement blocks both above and
    # below the numpy engine's 128-module activation floor.
    return hierarchical_circuit(300, 360, seed=2024, name="hier300")


def _clip_algorithm():
    config = MLConfig(engine="clip")
    return Algorithm("mlc", lambda h, s: ml_bipartition(h, config, seed=s))


def _record_portfolio(hg, path, runs=3, seed=7, jobs=1):
    result = execute(Portfolio(_clip_algorithm(), hg, runs=runs,
                               seed=seed, record=str(path)), jobs=jobs)
    return result


class TestRecorderPlumbing:
    def test_default_recorder_is_noop(self):
        rc = recorder()
        assert isinstance(rc, NoopRecorder)
        assert rc.enabled is False
        # Emitting into the noop is legal and does nothing.
        rc.emit({"t": "mv"})

    def test_recording_context_writes_and_restores(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with recording(str(path)):
            assert recorder().enabled is True
            recorder().emit({"t": "start", "i": 0})
            recorder().emit({"t": "result", "i": 0, "cut": 3,
                             "assign": "0110"})
        assert isinstance(recorder(), NoopRecorder)
        events = list(read_record(path))
        assert [e["t"] for e in events] == ["start", "result"]

    def test_recording_none_is_passthrough(self):
        with recording(None):
            assert recorder().enabled is False

    def test_buffer_recorder_drains_in_order(self):
        buf = BufferRecorder()
        for i in range(5):
            buf.emit({"t": "mv", "i": i})
        drained = buf.drain()
        assert [e["i"] for e in drained] == list(range(5))
        assert buf.drain() == []

    def test_group_starts_partitions_by_header(self):
        events = [
            {"t": "cycle", "c": 1},
            {"t": "start", "i": 0}, {"t": "mv", "i": 0},
            {"t": "start", "i": 1}, {"t": "mv", "i": 1},
        ]
        groups = group_starts(events)
        assert sorted(groups) == [-1, 0, 1]
        assert groups[-1][0]["t"] == "cycle"
        assert len(groups[0]) == 2 and len(groups[1]) == 2


class TestNonPerturbation:
    """Recording must never change the outcome: same seeds, same RNG
    stream, bit-identical partition with the recorder on or off."""

    @pytest.mark.parametrize("mode", _modes())
    def test_recording_does_not_perturb(self, mode, hier300, tmp_path):
        config = MLConfig(engine="clip")
        with use_kernels(mode):
            bare = ml_bipartition(hier300, config, seed=11)
            with recording(str(tmp_path / f"{mode}.jsonl")):
                taped = ml_bipartition(hier300, config, seed=11)
        assert taped.cut == bare.cut
        assert taped.partition.assignment == bare.partition.assignment


class TestReplay:
    """Replaying a recording against the netlist re-derives every
    cluster, audits every move's cut bookkeeping, and verifies the
    final partitions bit-for-bit."""

    @pytest.mark.parametrize("mode", _modes())
    def test_replay_reproduces_exact_result(self, mode, hier300,
                                            tmp_path):
        path = tmp_path / f"run-{mode}.jsonl"
        with use_kernels(mode):
            result = _record_portfolio(hier300, path)
        report = replay_recording(path, hier300)
        assert report.ok, report.render()
        assert report.starts == 3
        assert report.results_verified == 3
        assert not report.mismatches
        # The recording's result events match the portfolio's records.
        cuts = sorted(e["cut"] for e in read_record(path)
                      if e["t"] == "result")
        assert cuts == sorted(r.cut for r in result.records)

    def test_replay_with_state_audit(self, hier300, tmp_path):
        path = tmp_path / "audit.jsonl"
        with use_kernels("csr"):
            _record_portfolio(hier300, path, runs=1, seed=5)
        report = replay_recording(path, hier300, verify_states=True)
        assert report.ok, report.render()
        assert report.moves > 0 and report.merges > 0
        assert "bookkeeping audit clean" in report.render()

    def test_replay_flags_tampered_cut(self, hier300, tmp_path):
        path = tmp_path / "tampered.jsonl"
        with use_kernels("csr"):
            _record_portfolio(hier300, path, runs=1, seed=5)
        events = list(read_record(path))
        victim = next(e for e in events if e["t"] == "mv")
        victim["c"] += 1  # falsify the post-move cut
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("".join(
            json.dumps(e, separators=(",", ":")) + "\n" for e in events))
        report = replay_recording(corrupt, hier300, verify_states=True)
        assert not report.ok
        assert report.mismatches

    @pytest.mark.parallel
    def test_pool_recording_matches_serial(self, hier300, tmp_path):
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        with use_kernels("csr"):
            rs = _record_portfolio(hier300, serial, jobs=1)
            rp = _record_portfolio(hier300, pooled, jobs=2)
        assert [r.cut for r in rs.records] == [r.cut for r in rp.records]
        # Pool workers ship their events back through BufferRecorder;
        # the merged stream must be decision-identical to serial.
        report = diff_recordings(serial, pooled)
        assert report.identical, report.render()
        # And the pooled stream replays clean on its own.
        replay = replay_recording(pooled, hier300)
        assert replay.ok and replay.results_verified == 3


class TestDiffRun:
    def test_csr_vs_reference_identical(self, hier300, tmp_path):
        paths = {}
        for mode in ("csr", "reference"):
            paths[mode] = tmp_path / f"{mode}.jsonl"
            config = MLConfig(engine="clip")
            with use_kernels(mode), recording(str(paths[mode])):
                ml_bipartition(hier300, config, seed=3)
        report = diff_recordings(paths["csr"], paths["reference"])
        assert report.identical, report.render()
        assert report.decisions_compared > 1000

    @pytest.mark.skipif(not _HAVE_NUMPY, reason="numpy unavailable")
    def test_golden_first_divergence_csr_vs_numpy(self, hier300,
                                                  tmp_path):
        """Golden pin of the exact first csr-vs-numpy fork on hier300.

        The numpy engine refines blocks of >= 128 modules with batched
        gain sweeps, so the first divergence is the first refinement
        block above that floor walking coarsest-to-finest: the l=1,
        n=169 block, where csr emits a sequential ``mv`` and numpy a
        ``batch`` from the *same* recorded initial state.  If kernel or
        recorder changes legitimately move this point, re-pin from a
        fresh `repro diff-run` — silently passing on different values
        would hide a seed-stability break.
        """
        config = MLConfig(engine="clip")
        cuts = {}
        paths = {"csr": tmp_path / "csr.jsonl",
                 "numpy": tmp_path / "numpy.jsonl"}
        for mode, path in paths.items():
            with use_kernels(mode), recording(str(path)):
                cuts[mode] = ml_bipartition(hier300, config, seed=3).cut
        assert cuts == {"csr": 21, "numpy": 26}

        report = diff_recordings(paths["csr"], paths["numpy"])
        assert not report.identical
        first = report.first()
        assert first.ordinal == 783
        assert report.decisions_compared == 784
        # Event-kind fork: sequential move vs batched sweep.
        assert first.a["t"] == "mv" and first.b["t"] == "batch"
        assert first.a["m"] == 91 and first.a["s"] == 1
        assert first.b["mods"][0] == 91
        # Both sides fork inside the same refinement block...
        for block in (first.block_a, first.block_b):
            assert block["l"] == 1 and block["n"] == 169
            assert block["clip"] == 1
        # ...from the identical recorded initial state, differing only
        # in which engine took over.
        assert first.block_a["init"] == first.block_b["init"]
        assert first.block_a["np"] == 0 and first.block_b["np"] == 1
        rendered = report.render()
        assert "decision 783" in rendered
        assert "'mv'" in rendered and "'batch'" in rendered

    def test_exhaustion_divergence(self):
        a = [{"t": "start", "i": 0},
             {"t": "mv", "i": 0, "m": 1, "s": 1, "g": 1, "c": 4},
             {"t": "mv", "i": 0, "m": 2, "s": 0, "g": 0, "c": 4}]
        report = diff_events(a, a[:2])
        assert not report.identical
        first = report.first()
        assert first.b is None and first.a["m"] == 2


class TestCLIRoundTrip:
    """partition --record → replay → diff-run, through cli.main."""

    @pytest.fixture
    def netlist_file(self, hier300, tmp_path):
        path = tmp_path / "hier300.json"
        write_json(hier300, path)
        return str(path)

    def _partition(self, netlist_file, record, extra=()):
        from repro.cli import main
        return main(["partition", netlist_file, "--algorithm", "mlc",
                     "--runs", "2", "--seed", "5",
                     "--record", str(record), *extra])

    def test_record_replay_diff(self, netlist_file, tmp_path, capsys):
        from repro.cli import main
        rec_csr = tmp_path / "csr.record.jsonl"
        rec_np = tmp_path / "np.record.jsonl"
        assert self._partition(netlist_file, rec_csr) == 0
        assert "decision recording written" in capsys.readouterr().err

        assert main(["replay", str(rec_csr), netlist_file,
                     "--verify-states"]) == 0
        out = capsys.readouterr().out
        assert "verified bit-identical: 2/2" in out

        # Identical inputs → diff-run exits 0.
        assert main(["diff-run", str(rec_csr), str(rec_csr)]) == 0
        assert "identical" in capsys.readouterr().out

        if not _HAVE_NUMPY:
            return
        assert self._partition(netlist_file, rec_np,
                               extra=("--kernels", "numpy")) == 0
        capsys.readouterr()
        # Divergence → diff(1)-style exit code 1, with the fork shown.
        assert main(["diff-run", str(rec_csr), str(rec_np)]) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_missing_recording_is_an_error(self, tmp_path, capsys):
        # The tolerant reader maps a missing file to an empty stream;
        # the CLI must not let that silently "verify" nothing.
        from repro.cli import main
        assert main(["replay", str(tmp_path / "no.jsonl"),
                     str(tmp_path / "no.json")]) == 2
        assert main(["diff-run", str(tmp_path / "no.jsonl"),
                     str(tmp_path / "no.jsonl")]) == 2
        assert "recording not found" in capsys.readouterr().err

    def test_replay_rejects_wrong_netlist(self, netlist_file, tmp_path,
                                          capsys):
        from repro.cli import main
        rec = tmp_path / "r.jsonl"
        assert self._partition(netlist_file, rec) == 0
        other = tmp_path / "other.json"
        write_json(hierarchical_circuit(280, 330, seed=1, name="other"),
                   other)
        capsys.readouterr()
        # Structural mismatch surfaces either as a replay mismatch
        # (exit 1) or a hard ReplayError (exit 2) — never success.
        assert main(["replay", str(rec), str(other)]) in (1, 2)


class TestServiceRecording:
    """``"record": true`` requests execute uncached and expose a
    replayable stream at ``GET /record/<id>``."""

    def _serve(self, body):
        from repro.service import ServiceEngine
        from repro.service.protocol import PartitionRequest
        engine = ServiceEngine(jobs=1)

        async def main():
            engine.start()
            try:
                payloads = []
                for item in body:
                    payloads.append(await engine.serve(
                        PartitionRequest.from_json(item)))
                return payloads
            finally:
                await engine.drain(10)

        return engine, asyncio.run(main())

    def _body(self, **overrides):
        body = {
            "netlist": {"generate": {"name": "primary1", "scale": 0.05,
                                     "seed": 1}},
            "algorithm": "fm", "runs": 2, "seed": 7,
        }
        body.update(overrides)
        return body

    def test_record_payload_and_download(self):
        engine, payloads = self._serve([self._body(record=True)])
        payload = payloads[0]
        assert payload["record"] == f"/record/{payload['id']}"
        path = engine.record_file(payload["id"])
        events = list(read_record(path))
        kinds = {e["t"] for e in events}
        assert {"start", "mv", "result"} <= kinds
        results = [e for e in events if e["t"] == "result"]
        assert sorted(e["cut"] for e in results) == sorted(payload["cuts"])

    def test_recorded_requests_bypass_cache(self):
        engine, payloads = self._serve(
            [self._body(record=True), self._body(record=True)])
        assert all(p["cached"] is False for p in payloads)
        assert engine.counters()["executed_portfolios"] == 2
        # Distinct runs, distinct recordings.
        assert payloads[0]["record"] != payloads[1]["record"]

    def test_unknown_recording_is_404(self):
        from repro.service import ServiceEngine
        from repro.service.protocol import ProtocolError
        engine = ServiceEngine(jobs=1)
        with pytest.raises(ProtocolError) as excinfo:
            engine.record_file("nope")
        assert excinfo.value.status == 404
