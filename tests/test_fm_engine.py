"""Tests for the FM bipartitioning engine."""

import pytest

from repro.errors import ConfigError, PartitionError
from repro.fm import FMConfig, fm_bipartition
from repro.hypergraph import Hypergraph, grid_circuit, hierarchical_circuit
from repro.partition import BalanceConstraint, Partition, cut
from repro.rng import child_seeds


class TestConfig:
    def test_defaults_match_paper(self):
        config = FMConfig()
        assert config.bucket_policy == "lifo"
        assert not config.clip
        assert config.tolerance == 0.1
        assert config.max_net_size == 200

    def test_invalid_policy(self):
        with pytest.raises(ConfigError):
            FMConfig(bucket_policy="heap")

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigError):
            FMConfig(tolerance=1.0)

    def test_invalid_max_net_size(self):
        with pytest.raises(ConfigError):
            FMConfig(max_net_size=1)

    def test_invalid_max_passes(self):
        with pytest.raises(ConfigError):
            FMConfig(max_passes=0)

    def test_invalid_stall(self):
        with pytest.raises(ConfigError):
            FMConfig(early_exit_stall=0)


class TestCorrectness:
    def test_reported_cut_matches_reference(self, medium_hg):
        result = fm_bipartition(medium_hg, seed=1)
        assert result.cut == cut(medium_hg, result.partition)

    def test_balance_respected(self, medium_hg):
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        for seed in child_seeds(0, 5):
            result = fm_bipartition(medium_hg, seed=seed)
            areas = result.partition.part_areas(medium_hg)
            assert constraint.is_feasible(areas)

    def test_improves_on_initial(self, medium_hg):
        for seed in child_seeds(1, 5):
            result = fm_bipartition(medium_hg, seed=seed)
            assert result.cut <= result.initial_cut

    def test_refinement_never_worsens_given_solution(self, medium_hg):
        from repro.partition import random_partition
        initial = random_partition(medium_hg, seed=9)
        before = cut(medium_hg, initial)
        result = fm_bipartition(medium_hg, initial=initial, seed=9)
        assert result.cut <= before

    def test_finds_grid_optimum(self):
        hg = grid_circuit(6, 12, seed=3)
        best = min(fm_bipartition(hg, seed=s).cut
                   for s in child_seeds(0, 10))
        assert best == 6

    def test_finds_planted_bridge(self, tiny_hg):
        result = fm_bipartition(tiny_hg, seed=0)
        assert result.cut == 1

    def test_deterministic_given_seed(self, medium_hg):
        a = fm_bipartition(medium_hg, seed=4)
        b = fm_bipartition(medium_hg, seed=4)
        assert a.cut == b.cut
        assert a.partition == b.partition

    def test_pass_cuts_monotone_nonincreasing(self, medium_hg):
        result = fm_bipartition(medium_hg, seed=5)
        for earlier, later in zip(result.pass_cuts, result.pass_cuts[1:]):
            assert later <= earlier

    def test_rejects_kway_initial(self, medium_hg):
        from repro.partition import random_partition
        with pytest.raises(PartitionError, match="k=2"):
            fm_bipartition(medium_hg,
                           initial=random_partition(medium_hg, k=4, seed=0))

    def test_rebalances_infeasible_initial(self, medium_hg):
        bad = Partition([0] * medium_hg.num_modules, k=2)
        result = fm_bipartition(medium_hg, initial=bad, seed=0)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))


class TestLargeNets:
    def test_large_nets_excluded_but_counted(self):
        """A net over every module is ignored for refinement but still
        included in the reported cut."""
        base = [[i, i + 1] for i in range(9)]
        big = [list(range(10))]
        hg = Hypergraph(base + big, num_modules=10)
        config = FMConfig(max_net_size=5)
        result = fm_bipartition(hg, config=config, seed=0)
        # any genuine bipartition cuts the big net
        assert result.cut == result.internal_cut + 1

    def test_threshold_inclusive(self):
        nets = [[0, 1, 2], [2, 3], [0, 3]]
        hg = Hypergraph(nets, num_modules=4)
        result = fm_bipartition(hg, config=FMConfig(max_net_size=3), seed=0)
        assert result.cut == result.internal_cut


class TestPolicies:
    @pytest.mark.parametrize("policy", ["lifo", "fifo", "random"])
    def test_all_policies_produce_valid_solutions(self, medium_hg, policy):
        config = FMConfig(bucket_policy=policy)
        result = fm_bipartition(medium_hg, config=config, seed=2)
        assert result.cut == cut(medium_hg, result.partition)
        constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(medium_hg))

    def test_lifo_beats_fifo_on_average(self):
        """The paper's Table II headline at reduced scale."""
        hg = hierarchical_circuit(600, 720, seed=13)
        seeds = child_seeds(7, 8)
        lifo = [fm_bipartition(hg, config=FMConfig(bucket_policy="lifo"),
                               seed=s).cut for s in seeds]
        fifo = [fm_bipartition(hg, config=FMConfig(bucket_policy="fifo"),
                               seed=s).cut for s in seeds]
        assert sum(lifo) / len(lifo) < sum(fifo) / len(fifo)


class TestStallExit:
    def test_early_exit_limits_moves(self, medium_hg):
        full = fm_bipartition(medium_hg, seed=3)
        quick = fm_bipartition(medium_hg, seed=3,
                               config=FMConfig(early_exit_stall=10))
        assert quick.total_moves <= full.total_moves

    def test_early_exit_still_valid(self, medium_hg):
        result = fm_bipartition(medium_hg, seed=3,
                                config=FMConfig(early_exit_stall=5))
        assert result.cut == cut(medium_hg, result.partition)


class TestMaxPasses:
    def test_single_pass(self, medium_hg):
        result = fm_bipartition(medium_hg, seed=6,
                                config=FMConfig(max_passes=1))
        assert result.passes == 1

    def test_more_passes_never_hurt(self, medium_hg):
        one = fm_bipartition(medium_hg, seed=6,
                             config=FMConfig(max_passes=1))
        many = fm_bipartition(medium_hg, seed=6)
        assert many.cut <= one.cut


class TestFixedModules:
    def test_fixed_never_move(self, medium_hg):
        from repro.partition import random_partition
        initial = random_partition(medium_hg, seed=21)
        fixed = [v % 7 == 0 for v in range(medium_hg.num_modules)]
        result = fm_bipartition(medium_hg, initial=initial, fixed=fixed,
                                seed=21)
        for v in range(medium_hg.num_modules):
            if fixed[v]:
                assert result.partition.part_of(v) == initial.part_of(v)

    def test_fixed_with_clip(self, medium_hg):
        from repro.partition import random_partition
        initial = random_partition(medium_hg, seed=22)
        fixed = [v % 9 == 0 for v in range(medium_hg.num_modules)]
        result = fm_bipartition(medium_hg, initial=initial, fixed=fixed,
                                config=FMConfig(clip=True), seed=22)
        for v in range(medium_hg.num_modules):
            if fixed[v]:
                assert result.partition.part_of(v) == initial.part_of(v)

    def test_fixed_with_lookahead(self, medium_hg):
        from repro.partition import random_partition
        initial = random_partition(medium_hg, seed=23)
        fixed = [v % 11 == 0 for v in range(medium_hg.num_modules)]
        result = fm_bipartition(medium_hg, initial=initial, fixed=fixed,
                                config=FMConfig(lookahead=2), seed=23)
        for v in range(medium_hg.num_modules):
            if fixed[v]:
                assert result.partition.part_of(v) == initial.part_of(v)

    def test_all_fixed_returns_initial(self, medium_hg):
        from repro.partition import random_partition
        initial = random_partition(medium_hg, seed=24)
        result = fm_bipartition(medium_hg, initial=initial,
                                fixed=[True] * medium_hg.num_modules,
                                seed=24)
        assert result.partition == initial

    def test_bad_fixed_length(self, medium_hg):
        with pytest.raises(PartitionError, match="fixed"):
            fm_bipartition(medium_hg, fixed=[True, False], seed=0)

    def test_rebalance_respects_fixed(self, medium_hg):
        """Grossly unbalanced start with fixed modules: rebalancing
        must move only free modules."""
        n = medium_hg.num_modules
        initial = Partition([0] * n, k=2)
        fixed = [v < n // 8 for v in range(n)]
        result = fm_bipartition(medium_hg, initial=initial, fixed=fixed,
                                seed=25)
        for v in range(n // 8):
            assert result.partition.part_of(v) == 0


class TestWeightedInstances:
    def test_weighted_nets_drive_gains(self):
        """With a heavy net, FM must prefer cutting the light nets."""
        nets = [[0, 1], [2, 3], [0, 2], [1, 3]]
        weights = [100, 100, 1, 1]
        hg = Hypergraph(nets, num_modules=4, net_weights=weights)
        best = min(fm_bipartition(hg, seed=s).cut
                   for s in child_seeds(0, 8))
        assert best == 2  # cut the two unit nets, never a heavy one

    def test_heterogeneous_areas(self):
        areas = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 1.0]
        nets = [[i, (i + 1) % 8] for i in range(8)]
        hg = Hypergraph(nets, num_modules=8, areas=areas)
        result = fm_bipartition(hg, seed=0)
        constraint = BalanceConstraint.from_tolerance(hg, 0.1)
        assert constraint.is_feasible(result.partition.part_areas(hg))
