"""Tests for the gain-bucket data structures."""

import random

import pytest

from repro.errors import ConfigError
from repro.fm import LinkedListBuckets, RandomBuckets, make_buckets


class TestLinkedListLifo:
    def test_insert_pop_max(self):
        b = LinkedListBuckets(5, max_gain=3, policy="lifo")
        b.insert(0, 1)
        b.insert(1, 3)
        b.insert(2, -2)
        assert b.pop_max() == 1
        assert b.pop_max() == 0
        assert b.pop_max() == 2
        assert b.pop_max() is None

    def test_lifo_order_within_bucket(self):
        b = LinkedListBuckets(4, max_gain=2, policy="lifo")
        for item in (0, 1, 2, 3):
            b.insert(item, 2)
        assert [b.pop_max() for _ in range(4)] == [3, 2, 1, 0]

    def test_fifo_order_within_bucket(self):
        b = LinkedListBuckets(4, max_gain=2, policy="fifo")
        for item in (0, 1, 2, 3):
            b.insert(item, 2)
        assert [b.pop_max() for _ in range(4)] == [0, 1, 2, 3]

    def test_negative_gain_handled(self):
        """Regression: a legitimate gain of -2 must not read as absent."""
        b = LinkedListBuckets(2, max_gain=5, policy="lifo")
        b.insert(0, -2)
        assert b.contains(0)
        assert b.gain_of(0) == -2
        b.update(0, -2)
        assert b.contains(0)

    def test_update_moves_bucket(self):
        b = LinkedListBuckets(3, max_gain=4, policy="lifo")
        b.insert(0, 0)
        b.insert(1, 2)
        b.update(0, 4)
        assert b.pop_max() == 0

    def test_update_reinserts_at_head_lifo(self):
        b = LinkedListBuckets(3, max_gain=2, policy="lifo")
        b.insert(0, 1)
        b.insert(1, 1)
        b.update(0, 1)  # 0 should return to the head of its bucket
        assert b.pop_max() == 0

    def test_remove_middle(self):
        b = LinkedListBuckets(3, max_gain=1, policy="lifo")
        for item in (0, 1, 2):
            b.insert(item, 1)
        b.remove(1)
        assert [b.pop_max() for _ in range(2)] == [2, 0]

    def test_len(self):
        b = LinkedListBuckets(3, max_gain=1, policy="lifo")
        assert len(b) == 0
        b.insert(0, 0)
        b.insert(1, 1)
        assert len(b) == 2
        b.remove(0)
        assert len(b) == 1

    def test_double_insert_rejected(self):
        b = LinkedListBuckets(2, max_gain=1, policy="lifo")
        b.insert(0, 0)
        with pytest.raises(ConfigError, match="already"):
            b.insert(0, 1)

    def test_remove_absent_rejected(self):
        b = LinkedListBuckets(2, max_gain=1, policy="lifo")
        with pytest.raises(ConfigError, match="not in buckets"):
            b.remove(0)

    def test_gain_out_of_range_rejected(self):
        b = LinkedListBuckets(2, max_gain=1, policy="lifo")
        with pytest.raises(ConfigError, match="outside"):
            b.insert(0, 2)

    def test_iter_desc_order(self):
        b = LinkedListBuckets(6, max_gain=3, policy="lifo")
        gains = {0: 3, 1: -3, 2: 0, 3: 0, 4: 2, 5: -1}
        for item, gain in gains.items():
            b.insert(item, gain)
        order = list(b.iter_desc())
        assert [gains[i] for i in order] == \
            sorted((gains[i] for i in order), reverse=True)
        assert len(order) == 6

    def test_top_pointer_recovers_after_refill(self):
        b = LinkedListBuckets(3, max_gain=3, policy="lifo")
        b.insert(0, 3)
        b.remove(0)
        b.insert(1, 0)
        assert b.pop_max() == 1
        b.insert(2, 3)
        assert b.pop_max() == 2


class TestRandomBuckets:
    def test_always_from_top_bucket(self):
        rng = random.Random(0)
        b = RandomBuckets(10, max_gain=2, rng=rng)
        for item in range(8):
            b.insert(item, 0)
        b.insert(8, 2)
        b.insert(9, 2)
        assert b.pop_max() in (8, 9)
        assert b.pop_max() in (8, 9)
        assert b.pop_max() < 8

    def test_uniformity_over_top_bucket(self):
        counts = {0: 0, 1: 0, 2: 0}
        for trial in range(300):
            rng = random.Random(trial)
            b = RandomBuckets(3, max_gain=0, rng=rng)
            for item in range(3):
                b.insert(item, 0)
            counts[b.pop_max()] += 1
        assert all(count > 50 for count in counts.values())

    def test_remove_arbitrary(self):
        b = RandomBuckets(4, max_gain=0, rng=random.Random(1))
        for item in range(4):
            b.insert(item, 0)
        b.remove(2)
        remaining = {b.pop_max() for _ in range(3)}
        assert remaining == {0, 1, 3}

    def test_negative_gain_handled(self):
        b = RandomBuckets(2, max_gain=5, rng=random.Random(2))
        b.insert(0, -2)
        assert b.contains(0)
        b.update(0, -4)
        assert b.gain_of(0) == -4

    def test_len_tracking(self):
        b = RandomBuckets(3, max_gain=1, rng=random.Random(3))
        b.insert(0, 1)
        b.insert(1, -1)
        assert len(b) == 2
        b.pop_max()
        assert len(b) == 1


class TestFactory:
    def test_policies(self):
        assert isinstance(make_buckets(4, 2, "lifo"), LinkedListBuckets)
        assert isinstance(make_buckets(4, 2, "fifo"), LinkedListBuckets)
        assert isinstance(make_buckets(4, 2, "random"), RandomBuckets)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="unknown bucket policy"):
            make_buckets(4, 2, "stack")

    def test_negative_max_gain(self):
        with pytest.raises(ConfigError):
            make_buckets(4, -1, "lifo")


class TestAgainstNaiveModel:
    """Randomised differential test: buckets vs a sorted-list oracle."""

    @pytest.mark.parametrize("policy", ["lifo", "fifo"])
    def test_max_gain_always_agrees(self, policy):
        rng = random.Random(42)
        n, max_gain = 30, 8
        b = make_buckets(n, max_gain, policy)
        model = {}  # item -> gain
        for step in range(600):
            action = rng.random()
            if action < 0.4 and len(model) < n:
                item = rng.choice([i for i in range(n) if i not in model])
                gain = rng.randint(-max_gain, max_gain)
                b.insert(item, gain)
                model[item] = gain
            elif action < 0.7 and model:
                item = rng.choice(list(model))
                gain = rng.randint(-max_gain, max_gain)
                b.update(item, gain)
                model[item] = gain
            elif model:
                item = rng.choice(list(model))
                b.remove(item)
                del model[item]
            if model:
                top = next(iter(b.iter_desc()))
                assert model[top] == max(model.values())
            assert len(b) == len(model)
