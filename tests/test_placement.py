"""Tests for the top-down quadrisection placer."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.placement import (Region, hpwl, quadrisection_placement,
                             total_quadratic_wirelength)


class TestWirelength:
    def test_hpwl_simple(self):
        hg = Hypergraph([[0, 1], [1, 2]], num_modules=3)
        x, y = [0.0, 1.0, 1.0], [0.0, 0.0, 2.0]
        # net0 bbox: 1 + 0; net1 bbox: 0 + 2
        assert hpwl(hg, x, y) == 3.0

    def test_hpwl_weighted(self):
        hg = Hypergraph([[0, 1]], num_modules=2, net_weights=[5])
        assert hpwl(hg, [0.0, 2.0], [0.0, 0.0]) == 10.0

    def test_hpwl_zero_when_coincident(self):
        hg = Hypergraph([[0, 1, 2]], num_modules=3)
        assert hpwl(hg, [0.5] * 3, [0.5] * 3) == 0.0

    def test_quadratic_wirelength(self):
        hg = Hypergraph([[0, 1]], num_modules=2)
        assert total_quadratic_wirelength(
            hg, [0.0, 3.0], [0.0, 4.0]) == 25.0

    def test_length_mismatch(self):
        hg = Hypergraph([[0, 1]], num_modules=2)
        with pytest.raises(PartitionError):
            hpwl(hg, [0.0], [0.0, 1.0])


class TestRegion:
    def test_center_and_children(self):
        region = Region(0.0, 0.0, 1.0, 1.0, [])
        assert region.center == (0.5, 0.5)
        children = region.children()
        assert len(children) == 4
        assert children[0].x1 == 0.5 and children[0].y1 == 0.5
        assert children[3].x0 == 0.5 and children[3].y0 == 0.5

    def test_quadrant_centers_ordering(self):
        region = Region(0.0, 0.0, 1.0, 1.0, [])
        centers = region.quadrant_centers()
        assert centers[0] == (0.25, 0.25)  # left-bottom
        assert centers[1] == (0.25, 0.75)  # left-top
        assert centers[2] == (0.75, 0.25)  # right-bottom
        assert centers[3] == (0.75, 0.75)  # right-top


class TestPlacement:
    @pytest.fixture(scope="class")
    def placed(self):
        hg = hierarchical_circuit(300, 360, seed=61)
        return hg, quadrisection_placement(hg, levels=2, seed=1)

    def test_all_modules_inside_die(self, placed):
        hg, result = placed
        assert all(0.0 <= xv <= 1.0 for xv in result.x)
        assert all(0.0 <= yv <= 1.0 for yv in result.y)

    def test_region_count(self, placed):
        _, result = placed
        assert len(result.regions) == 16

    def test_regions_partition_modules(self, placed):
        hg, result = placed
        seen = sorted(v for region in result.regions
                      for v in region.modules)
        assert seen == list(range(hg.num_modules))

    def test_hpwl_recorded(self, placed):
        hg, result = placed
        assert result.hpwl == pytest.approx(hpwl(hg, result.x, result.y))

    def test_beats_random_placement(self, placed):
        hg, result = placed
        rng = random.Random(0)
        rand_x = [rng.random() for _ in range(hg.num_modules)]
        rand_y = [rng.random() for _ in range(hg.num_modules)]
        assert result.hpwl < 0.6 * hpwl(hg, rand_x, rand_y)

    def test_beats_random_at_same_granularity(self):
        """Coarser placements collapse modules onto fewer points, which
        deflates HPWL by itself — so compare against a *random*
        assignment to the same 16 region centres."""
        hg = hierarchical_circuit(300, 360, seed=62)
        result = quadrisection_placement(hg, levels=2, seed=2)
        centers = [( (i + 0.5) / 4, (j + 0.5) / 4)
                   for i in range(4) for j in range(4)]
        rng = random.Random(0)
        rand_x, rand_y = [], []
        for _ in range(hg.num_modules):
            cx, cy = rng.choice(centers)
            rand_x.append(cx)
            rand_y.append(cy)
        assert result.hpwl < hpwl(hg, rand_x, rand_y)

    def test_deterministic(self):
        hg = hierarchical_circuit(200, 240, seed=63)
        a = quadrisection_placement(hg, levels=1, seed=3)
        b = quadrisection_placement(hg, levels=1, seed=3)
        assert a.x == b.x and a.y == b.y

    def test_invalid_levels(self):
        hg = hierarchical_circuit(100, 120, seed=64)
        with pytest.raises(PartitionError):
            quadrisection_placement(hg, levels=0)

    def test_min_region_stops_subdivision(self):
        hg = hierarchical_circuit(100, 120, seed=65)
        result = quadrisection_placement(hg, levels=3,
                                         min_region_modules=200, seed=4)
        # the root region never subdivides
        assert len(result.regions) == 1
