"""Shared fixtures for the test suite."""

import os

import pytest

# The run ledger is on by default; the suite executes hundreds of
# portfolios and must not grow one.  Ledger tests opt back in by
# monkeypatching REPRO_LEDGER to a tmp path.
os.environ.setdefault("REPRO_LEDGER", "off")

from repro.hypergraph import Hypergraph, grid_circuit, hierarchical_circuit


@pytest.fixture
def tiny_hg() -> Hypergraph:
    """Six modules, five nets; small enough to verify by hand.

    Structure: two natural triangles {0,1,2} and {3,4,5} joined by one
    bridge net {2, 3}.  The optimal bisection cuts exactly 1 net.
    """
    return Hypergraph(
        nets=[[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]],
        num_modules=6,
        name="tiny")


@pytest.fixture
def weighted_hg() -> Hypergraph:
    """Four modules with mixed areas and net weights."""
    return Hypergraph(
        nets=[[0, 1], [1, 2, 3], [0, 3]],
        num_modules=4,
        areas=[1.0, 2.0, 3.0, 4.0],
        net_weights=[2, 1, 3],
        name="weighted")


@pytest.fixture
def grid_hg() -> Hypergraph:
    """8 x 8 mesh: optimal bisection cuts 8 nets."""
    return grid_circuit(8, 8, seed=5)


@pytest.fixture
def medium_hg() -> Hypergraph:
    """A 300-module hierarchical circuit for engine-level tests."""
    return hierarchical_circuit(300, 360, seed=17, name="medium")


@pytest.fixture
def large_hg() -> Hypergraph:
    """A 1000-module hierarchical circuit for multilevel tests."""
    return hierarchical_circuit(1000, 1200, seed=23, name="large")
