"""Tests for the Section V future-work extensions: boundary FM,
multiple coarsest-level starts, and recursive bisection."""

import pytest

from repro.core import MLConfig, ml_bipartition, recursive_bisection
from repro.errors import ConfigError, PartitionError
from repro.fm import FMConfig, fm_bipartition
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import BalanceConstraint, cut, random_partition
from repro.rng import child_seeds


class TestBoundaryFM:
    def test_incompatible_with_clip(self):
        with pytest.raises(ConfigError, match="boundary"):
            FMConfig(boundary=True, clip=True)

    def test_valid_solutions(self, medium_hg):
        config = FMConfig(boundary=True)
        for seed in child_seeds(0, 4):
            result = fm_bipartition(medium_hg, config=config, seed=seed)
            assert result.cut == cut(medium_hg, result.partition)
            constraint = BalanceConstraint.from_tolerance(medium_hg, 0.1)
            assert constraint.is_feasible(
                result.partition.part_areas(medium_hg))

    def test_never_worsens_initial(self, medium_hg):
        initial = random_partition(medium_hg, seed=5)
        before = cut(medium_hg, initial)
        result = fm_bipartition(medium_hg, initial=initial,
                                config=FMConfig(boundary=True), seed=5)
        assert result.cut <= before

    def test_fewer_moves_than_full_fm(self, large_hg):
        """Boundary mode should touch far fewer modules per pass when
        refining an already-good solution."""
        good = fm_bipartition(large_hg, seed=1).partition
        full = fm_bipartition(large_hg, initial=good, seed=2)
        boundary = fm_bipartition(large_hg, initial=good,
                                  config=FMConfig(boundary=True), seed=2)
        assert boundary.total_moves < full.total_moves

    def test_quality_close_to_full_fm(self, medium_hg):
        seeds = child_seeds(7, 6)
        full = [fm_bipartition(medium_hg, seed=s).cut for s in seeds]
        bound = [fm_bipartition(medium_hg, config=FMConfig(boundary=True),
                                seed=s).cut for s in seeds]
        assert sum(bound) / len(bound) <= 1.35 * sum(full) / len(full)

    def test_zero_cut_start_terminates(self):
        """No boundary modules at all: the pass must simply end."""
        hg = Hypergraph([[0, 1], [2, 3]], num_modules=4)
        from repro.partition import Partition
        perfect = Partition([0, 0, 1, 1], 2)
        result = fm_bipartition(hg, initial=perfect,
                                config=FMConfig(boundary=True), seed=0)
        assert result.cut == 0

    def test_inside_ml(self, large_hg):
        config = MLConfig(engine="fm", fm=FMConfig(boundary=True))
        result = ml_bipartition(large_hg, config=config, seed=3)
        assert result.cut == cut(large_hg, result.partition)


class TestCoarsestStarts:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MLConfig(coarsest_starts=0)

    def test_multiple_starts_never_worse(self, large_hg):
        seeds = child_seeds(11, 4)
        one = [ml_bipartition(large_hg, config=MLConfig(coarsest_starts=1),
                              seed=s).cut for s in seeds]
        many = [ml_bipartition(large_hg, config=MLConfig(coarsest_starts=8),
                               seed=s).cut for s in seeds]
        assert sum(many) <= sum(one) * 1.05

    def test_counts_extra_passes(self, medium_hg):
        one = ml_bipartition(medium_hg, config=MLConfig(coarsest_starts=1),
                             seed=4)
        many = ml_bipartition(medium_hg, config=MLConfig(coarsest_starts=5),
                              seed=4)
        assert many.total_passes > one.total_passes


class TestRecursiveBisection:
    def test_valid_k4(self, large_hg):
        partition = recursive_bisection(large_hg, k=4, seed=1)
        assert partition.k == 4
        sizes = partition.part_sizes()
        assert all(size > 0 for size in sizes)

    def test_k8(self, large_hg):
        partition = recursive_bisection(large_hg, k=8, seed=2)
        assert partition.k == 8
        assert len(set(partition.assignment)) == 8

    def test_rejects_non_power_of_two(self, medium_hg):
        with pytest.raises(PartitionError, match="power of two"):
            recursive_bisection(medium_hg, k=3)

    def test_rejects_too_few_modules(self):
        hg = Hypergraph([[0, 1]], num_modules=2)
        with pytest.raises(PartitionError):
            recursive_bisection(hg, k=4)

    def test_deterministic(self, medium_hg):
        a = recursive_bisection(medium_hg, k=4, seed=3)
        b = recursive_bisection(medium_hg, k=4, seed=3)
        assert a == b

    def test_roughly_balanced(self, large_hg):
        partition = recursive_bisection(large_hg, k=4, seed=4)
        sizes = partition.part_sizes()
        expected = large_hg.num_modules / 4
        assert all(0.5 * expected <= size <= 1.6 * expected
                   for size in sizes)

    def test_comparable_to_direct_kway(self, large_hg):
        """Neither strategy should dominate by a huge factor."""
        from repro.core import ml_quadrisection
        direct = ml_quadrisection(large_hg, seed=5).cut
        recursive = cut(large_hg, recursive_bisection(large_hg, k=4,
                                                      seed=5))
        assert recursive < 3 * direct
        assert direct < 3 * recursive

    def test_degenerate_tiny_subproblems(self):
        hg = Hypergraph([[i, (i + 1) % 8] for i in range(8)],
                        num_modules=8)
        partition = recursive_bisection(hg, k=8, seed=0)
        assert sorted(partition.part_sizes()) == [1] * 8
