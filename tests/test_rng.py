"""Tests for the seeded RNG helpers."""

import random

import pytest

from repro.rng import (child_seeds, choice_weighted, make_rng,
                       random_permutation, spawn, stable_seed)


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_random_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_stream(self):
        # Not deterministic; just check it works and differs on repeats
        values = {make_rng(None).random() for _ in range(3)}
        assert len(values) >= 2


class TestChildSeeds:
    def test_position_stable(self):
        assert child_seeds(42, 10)[:3] == child_seeds(42, 3)

    def test_distinct(self):
        seeds = child_seeds(0, 100)
        assert len(set(seeds)) == 100

    def test_different_parents_differ(self):
        assert child_seeds(1, 5) != child_seeds(2, 5)

    def test_zero_count(self):
        assert child_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            child_seeds(1, -1)


class TestPermutation:
    def test_is_permutation(self):
        perm = random_permutation(50, make_rng(3))
        assert sorted(perm) == list(range(50))

    def test_deterministic(self):
        assert random_permutation(20, make_rng(4)) == \
            random_permutation(20, make_rng(4))


class TestSpawn:
    def test_independent_streams(self):
        parent = make_rng(5)
        a = spawn(parent)
        b = spawn(parent)
        assert a.random() != b.random()


class TestStableSeed:
    def test_known_value_pinned(self):
        """Cross-process stability: this value must never change
        (unlike built-in hash(), which is salted per process)."""
        assert stable_seed("0", "struct", "FM") == 5932822562323333867

    def test_distinct_labels_distinct_seeds(self):
        assert stable_seed("a") != stable_seed("b")
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_in_seed_range(self):
        assert 0 <= stable_seed("x", 42) < 2**63 - 1


class TestChoiceWeighted:
    def test_empty_returns_none(self):
        assert choice_weighted([], [], make_rng(0)) is None

    def test_respects_weights(self):
        rng = make_rng(1)
        picks = [choice_weighted([0, 1], [0.0, 1.0], rng)
                 for _ in range(20)]
        assert all(p == 1 for p in picks)
