"""End-to-end request-scoped telemetry: real daemon, real sockets.

The contracts pinned here:

* a client-supplied ``X-Trace-Id`` reaches every span of the merged
  trace — including ``fm.pass`` spans emitted inside forked worker
  processes — and the run's ledger entry;
* a coalesced burst of identical requests produces exactly one
  execution tree whose ``exec_id`` every request-scoped root span
  references;
* ``/status`` and ``/profile`` serve the ops surfaces;
* the access log records one tolerant-readable JSONL line per request;
* the scraped latency histogram agrees with client-side stopwatches
  (the in-process analogue of the bench assertion).
"""

import json
import threading
import time

import pytest

from repro.obs import read_trace, summarize_service_trace
from repro.obs.ledger import read_ledger
from repro.obs.metrics import lint_prometheus
from repro.service import ServiceError
from repro.service.server import read_access_log

from tests.test_service_server import _ServerThread, _body

pytestmark = pytest.mark.service


class TestTracePropagation:
    def test_client_trace_id_reaches_workers_and_ledger(
            self, tiny_hg, tmp_path, monkeypatch):
        ledger = tmp_path / "ledger.jsonl"
        trace = tmp_path / "serve.trace.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        with _ServerThread(server_kw={"trace_path": str(trace)},
                           jobs=2) as srv:
            with srv.client() as client:
                payload = client.partition(_body(tiny_hg, runs=4),
                                           trace_id="t-e2e",
                                           request_id="q-e2e")
        assert payload["request_id"] == "q-e2e"
        assert payload["trace_id"] == "t-e2e"
        exec_id = payload["id"]

        events = [e for e in read_trace(trace) if isinstance(e, dict)]
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans, "daemon trace is empty"
        pids = {e.get("pid") for e in spans}
        assert len(pids) >= 2, "expected spans from forked workers too"

        fm_passes = [e for e in spans if e.get("name") == "fm.pass"]
        assert fm_passes, "no worker-side fm.pass spans in merged trace"
        for span in fm_passes:
            assert span["args"]["trace_id"] == "t-e2e"
        # Everything between the root and the workers carries it too.
        for name in ("service.execute", "portfolio.start", "fm.run"):
            carrying = [e for e in spans if e.get("name") == name]
            assert carrying, f"no {name} span"
            assert all(e["args"]["trace_id"] == "t-e2e"
                       for e in carrying)

        roots = [e for e in spans if e.get("name") == "service.request"
                 and e["args"].get("endpoint") == "partition"]
        assert len(roots) == 1
        assert roots[0]["args"]["request_id"] == "q-e2e"
        assert roots[0]["args"]["exec_id"] == exec_id

        entries = [e for e in read_ledger(ledger)
                   if e.get("kind") == "portfolio"]
        assert entries and entries[-1]["trace_id"] == "t-e2e"

    def test_generated_ids_echoed_when_absent(self, tiny_hg):
        with _ServerThread() as srv:
            with srv.client() as client:
                payload = client.partition(_body(tiny_hg))
        assert payload["request_id"]
        assert payload["trace_id"] == payload["request_id"]


class TestCoalescedBurstTrace:
    def test_burst_yields_one_execution_tree(self, tiny_hg, tmp_path):
        trace = tmp_path / "burst.trace.jsonl"
        width = 8
        body = _body(tiny_hg, runs=6, seed=11)
        results = [None] * width
        errors = []
        with _ServerThread(server_kw={"trace_path": str(trace)}) as srv:
            barrier = threading.Barrier(width)

            def fire(i):
                try:
                    with srv.client() as client:
                        barrier.wait(10)
                        results[i] = client.partition(
                            body, request_id=f"burst-{i}")
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(width)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        assert not errors, errors
        exec_ids = {r["id"] for r in results}
        assert len(exec_ids) == 1, "burst did not share one execution"

        spans = [e for e in read_trace(trace)
                 if isinstance(e, dict) and e.get("ph") == "X"]
        executions = [e for e in spans
                      if e.get("name") == "service.execute"]
        assert len(executions) == 1, \
            f"expected exactly one execution tree, got {len(executions)}"
        exec_id = executions[0]["args"]["exec_id"]
        roots = [e for e in spans if e.get("name") == "service.request"
                 and e["args"].get("endpoint") == "partition"]
        assert len(roots) == width
        assert all(r["args"]["exec_id"] == exec_id for r in roots)
        assert {r["args"]["request_id"] for r in roots} == \
            {f"burst-{i}" for i in range(width)}

        summary = summarize_service_trace(trace)
        assert summary.is_service_trace
        assert len(summary.executions[exec_id].requests) == width


class TestStatusEndpoint:
    def test_status_shape_and_latency_summaries(self, tiny_hg):
        with _ServerThread() as srv:
            with srv.client() as client:
                client.partition(_body(tiny_hg))
                status = client.status()
        for key in ("lane", "breaker", "result_cache", "counters",
                    "in_flight", "latency", "profiler", "connections"):
            assert key in status, f"/status missing {key!r}"
        assert status["profiler"]["enabled"] is False
        assert isinstance(status["in_flight"], list)
        rows = status["latency"]["latency"]
        partition_rows = [r for r in rows
                          if r["labels"].get("endpoint") == "partition"]
        assert partition_rows and partition_rows[0]["count"] == 1
        assert partition_rows[0]["p50"] is not None

    def test_in_flight_table_during_execution(self, tiny_hg):
        body = _body(tiny_hg, runs=40, seed=3)
        with _ServerThread(server_kw={"drain_seconds": 30.0}) as srv:
            done = threading.Event()
            holder = {}

            def slow():
                with srv.client() as client:
                    holder["payload"] = client.partition(
                        body, trace_id="t-inflight")
                done.set()

            thread = threading.Thread(target=slow)
            thread.start()
            rows = []
            with srv.client() as client:
                deadline = time.monotonic() + 20
                while not rows and time.monotonic() < deadline \
                        and not done.is_set():
                    rows = client.status()["in_flight"]
            done.wait(60)
            thread.join(10)
        if rows:  # tiny netlists can finish before the poll lands
            assert rows[0]["state"] in ("executing", "queued")
            assert rows[0]["age_seconds"] >= 0
            assert rows[0]["trace_id"] == "t-inflight"


class TestProfileEndpoint:
    def test_404_when_disabled(self, tiny_hg):
        with _ServerThread() as srv:
            with srv.client() as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.profile()
        assert excinfo.value.status == 404

    def test_profile_served_and_written_on_shutdown(self, tiny_hg,
                                                    tmp_path):
        profile_dir = tmp_path / "prof"
        with _ServerThread(server_kw={
                "profile_dir": str(profile_dir),
                "profile_interval": 0.002}) as srv:
            with srv.client() as client:
                client.partition(_body(tiny_hg, runs=4))
                status = client.status()
                text = client.profile()
        assert status["profiler"]["enabled"] is True
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and stack
        assert (profile_dir / "profile.collapsed").exists()

    def test_ledger_records_memory_peak_when_profiling(
            self, tiny_hg, tmp_path, monkeypatch):
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        with _ServerThread(server_kw={
                "profile_dir": str(tmp_path / "prof")}) as srv:
            with srv.client() as client:
                client.partition(_body(tiny_hg))
        entries = [e for e in read_ledger(ledger)
                   if e.get("kind") == "portfolio"]
        assert entries
        assert entries[-1].get("peak_mem_bytes", 0) > 0


class TestAccessLog:
    def test_one_tolerant_line_per_request(self, tiny_hg, tmp_path):
        log = tmp_path / "access.jsonl"
        with _ServerThread(server_kw={
                "access_log_path": str(log)}) as srv:
            with srv.client() as client:
                client.partition(_body(tiny_hg))
                client.partition(_body(tiny_hg))  # cache hit
                client.healthz()
        with open(log, "a", encoding="utf-8") as f:
            f.write('{"trunc')  # simulate a killed writer
        records = list(read_access_log(log))
        assert len(records) == 3
        partitions = [r for r in records if r["route"] == "/partition"]
        assert [r["cached"] for r in partitions] == [False, True]
        assert partitions[0]["exec_id"] == partitions[1]["exec_id"]
        for r in records:
            assert {"ts", "request_id", "trace_id", "method", "route",
                    "status", "latency_ms"} <= set(r)
            assert r["status"] == 200
            assert r["latency_ms"] >= 0


class TestLatencyHistogramAgreement:
    def test_scrape_quantiles_match_client_stopwatch(self, tiny_hg):
        """In-process version of the bench assertion: the daemon's
        admission-to-response histogram must agree with what a client
        measures on the cache-hit path."""
        body = _body(tiny_hg)
        samples = []
        with _ServerThread() as srv:
            with srv.client() as client:
                client.partition(body)  # warm the cache
                for _ in range(50):
                    t0 = time.perf_counter()
                    payload = client.partition(body)
                    samples.append(time.perf_counter() - t0)
                    assert payload["cached"] is True
                text = client.metrics()
                assert lint_prometheus(text) == []
                p50 = client.histogram_quantile(
                    "repro_service_latency_seconds", 0.5,
                    endpoint="partition")
        samples.sort()
        client_p50 = samples[len(samples) // 2]
        # Histogram quantiles are bucket-interpolated; sub-millisecond
        # hits quantise to the 1-2.5-5 grid, so allow a bucket of slack
        # rather than the bench's 20% (which has 1000 samples).
        assert p50 == pytest.approx(client_p50, rel=1.5, abs=0.002)
