"""Tests for restricted matching and V-cycle iteration."""

import pytest

from repro.clustering import match
from repro.core import MLConfig, ml_bipartition, ml_vcycle
from repro.errors import ClusteringError, ConfigError
from repro.hypergraph import hierarchical_circuit
from repro.partition import Partition, cut, random_partition
from repro.rng import child_seeds


class TestRestrictedMatching:
    def test_never_merges_across_labels(self, medium_hg):
        labels = random_partition(medium_hg, seed=1).assignment
        clustering = match(medium_hg, ratio=1.0, seed=2, restrict=labels)
        for group in clustering.groups():
            assert len({labels[v] for v in group}) == 1

    def test_restriction_reduces_matching(self, medium_hg):
        labels = random_partition(medium_hg, seed=3).assignment
        free = match(medium_hg, ratio=1.0, seed=4).num_clusters
        restricted = match(medium_hg, ratio=1.0, seed=4,
                           restrict=labels).num_clusters
        assert restricted >= free

    def test_bad_restrict_length(self, medium_hg):
        with pytest.raises(ClusteringError):
            match(medium_hg, restrict=[0, 1])

    def test_uniform_labels_equal_unrestricted(self, medium_hg):
        uniform = [0] * medium_hg.num_modules
        a = match(medium_hg, ratio=1.0, seed=5)
        b = match(medium_hg, ratio=1.0, seed=5, restrict=uniform)
        assert a.cluster_of == b.cluster_of


class TestVCycle:
    def test_monotone_best(self, large_hg):
        result = ml_vcycle(large_hg, cycles=3, seed=1)
        assert result.cut == cut(large_hg, result.partition)
        assert result.cut <= result.cycle_cuts[0]
        assert result.cut == min(result.cycle_cuts)

    def test_zero_cycles_equals_ml(self, large_hg):
        vc = ml_vcycle(large_hg, cycles=0, seed=2)
        ml = ml_bipartition(large_hg, seed=2)
        assert vc.cut == ml.cut

    def test_cycle_count_recorded(self, medium_hg):
        result = ml_vcycle(medium_hg, cycles=2, seed=3)
        assert result.cycles == 2
        assert len(result.cycle_cuts) == 3

    def test_refines_supplied_solution(self, large_hg):
        initial = random_partition(large_hg, seed=4)
        before = cut(large_hg, initial)
        result = ml_vcycle(large_hg, cycles=1, initial=initial, seed=4)
        assert result.cut <= before

    def test_rejects_negative_cycles(self, medium_hg):
        with pytest.raises(ConfigError):
            ml_vcycle(medium_hg, cycles=-1)

    def test_rejects_kway_initial(self, medium_hg):
        with pytest.raises(ConfigError):
            ml_vcycle(medium_hg, cycles=1,
                      initial=random_partition(medium_hg, k=4, seed=0))

    def test_never_worse_than_plain_ml(self):
        hg = hierarchical_circuit(1200, 1440, seed=81)
        for s in child_seeds(9, 4):
            base = ml_bipartition(hg, seed=s).cut
            vc = ml_vcycle(hg, cycles=2, seed=s).cut
            assert vc <= base

    def test_strict_improvement_case(self):
        """A pinned instance where V-cycling is known to help."""
        hg = hierarchical_circuit(1200, 1440, seed=5)
        base = ml_bipartition(hg, seed=3).cut
        vc = ml_vcycle(hg, cycles=3, seed=3).cut
        assert vc < base

    def test_with_clip_engine(self, large_hg):
        result = ml_vcycle(large_hg, cycles=1,
                           config=MLConfig(engine="clip"), seed=5)
        assert result.cut == cut(large_hg, result.partition)
