"""Tests for the ACM/SIGDA netD / are parsers."""

import pytest

from repro.errors import ParseError
from repro.hypergraph import read_are, read_netd

NETD = """\
0
8
3
5
2
a0 s I
a1 l O
p1 l B
a1 s O
a2 l I
a0 s I
a2 l O
p2 l B
"""

ARE = """\
a0 4
a1 2
a2 1
p1 1
p2 1
"""


@pytest.fixture
def netd_file(tmp_path):
    path = tmp_path / "c.netD"
    path.write_text(NETD)
    return path


@pytest.fixture
def are_file(tmp_path):
    path = tmp_path / "c.are"
    path.write_text(ARE)
    return path


class TestReadAre:
    def test_parse(self, are_file):
        areas = read_are(are_file)
        assert areas == {"a0": 4.0, "a1": 2.0, "a2": 1.0,
                         "p1": 1.0, "p2": 1.0}

    def test_bad_line(self, tmp_path):
        path = tmp_path / "bad.are"
        path.write_text("a0 1 2\n")
        with pytest.raises(ParseError):
            read_are(path)

    def test_nonpositive(self, tmp_path):
        path = tmp_path / "bad.are"
        path.write_text("a0 0\n")
        with pytest.raises(ParseError):
            read_are(path)


class TestReadNetd:
    def test_structure(self, netd_file):
        hg = read_netd(netd_file)
        assert hg.num_modules == 5
        assert hg.num_nets == 3
        assert hg.num_pins == 8
        assert hg.name == "c"
        assert hg.is_unit_area()

    def test_net_membership(self, netd_file):
        hg = read_netd(netd_file)
        sizes = sorted(hg.net_size(e) for e in hg.all_nets())
        assert sizes == [2, 3, 3]

    def test_areas_applied(self, netd_file, are_file):
        hg = read_netd(netd_file, are_path=are_file)
        assert hg.total_area == 9.0
        assert hg.max_area == 4.0

    def test_single_pin_nets_dropped(self, tmp_path):
        path = tmp_path / "c.netD"
        path.write_text("0\n3\n2\n2\n0\na0 s I\na0 s O\na1 l I\n")
        hg = read_netd(path)
        assert hg.num_nets == 1  # the 1-pin net is dropped
        assert hg.num_modules == 2

    def test_pin_count_mismatch(self, tmp_path):
        path = tmp_path / "c.netD"
        path.write_text("0\n9\n3\n5\n2\na0 s I\na1 l O\n")
        with pytest.raises(ParseError, match="pins"):
            read_netd(path)

    def test_net_count_mismatch(self, tmp_path):
        path = tmp_path / "c.netD"
        path.write_text("0\n2\n5\n2\n0\na0 s I\na1 l O\n")
        with pytest.raises(ParseError, match="nets"):
            read_netd(path)

    def test_continuation_before_start(self, tmp_path):
        path = tmp_path / "c.netD"
        path.write_text("0\n1\n1\n1\n0\na0 l I\n")
        with pytest.raises(ParseError, match="continuation"):
            read_netd(path)

    def test_bad_marker(self, tmp_path):
        path = tmp_path / "c.netD"
        path.write_text("0\n1\n1\n1\n0\na0 x I\n")
        with pytest.raises(ParseError, match="marker"):
            read_netd(path)

    def test_short_header(self, tmp_path):
        path = tmp_path / "c.netD"
        path.write_text("0\n1\n")
        with pytest.raises(ParseError, match="header"):
            read_netd(path)

    def test_partitionable(self, netd_file):
        from repro.fm import fm_bipartition
        hg = read_netd(netd_file)
        result = fm_bipartition(hg, seed=0)
        assert 0 <= result.cut <= hg.num_nets


class TestWriteNetd:
    def test_roundtrip_idempotent(self, tmp_path):
        """netD assigns indices by first appearance, so equality holds
        after one write/read normalisation pass."""
        from repro.hypergraph import (assert_same_structure,
                                      hierarchical_circuit, write_netd)
        hg = hierarchical_circuit(60, 70, seed=1)
        first_path = tmp_path / "a.netD"
        write_netd(hg, first_path)
        normalised = read_netd(first_path)
        second_path = tmp_path / "b.netD"
        write_netd(normalised, second_path)
        again = read_netd(second_path)
        assert_same_structure(normalised, again)

    def test_counts_preserved(self, tmp_path):
        from repro.hypergraph import hierarchical_circuit, write_netd
        hg = hierarchical_circuit(50, 60, seed=2)
        path = tmp_path / "c.netD"
        write_netd(hg, path)
        back = read_netd(path)
        assert back.num_modules == hg.num_modules
        assert back.num_nets == hg.num_nets
        assert back.num_pins == hg.num_pins
        net_sizes = sorted(hg.net_size(e) for e in hg.all_nets())
        assert sorted(back.net_size(e)
                      for e in back.all_nets()) == net_sizes

    def test_areas_roundtrip(self, tmp_path):
        from repro.hypergraph import Hypergraph, write_netd
        hg = Hypergraph([[0, 1], [1, 2]], num_modules=3,
                        areas=[2.0, 1.0, 3.0])
        path = tmp_path / "c.netD"
        are = tmp_path / "c.are"
        write_netd(hg, path, are_path=are)
        back = read_netd(path, are_path=are)
        assert sorted(back.areas()) == [1.0, 2.0, 3.0]
        assert back.total_area == 6.0

    def test_weighted_nets_rejected(self, tmp_path):
        from repro.hypergraph import Hypergraph, write_netd
        hg = Hypergraph([[0, 1]], num_modules=2, net_weights=[3])
        with pytest.raises(ParseError, match="weights"):
            write_netd(hg, tmp_path / "w.netD")

    def test_write_are_helper(self, tmp_path):
        from repro.hypergraph import write_are
        path = tmp_path / "x.are"
        write_are({"a0": 2.0, "p1": 1.5}, path)
        assert read_are(path) == {"a0": 2.0, "p1": 1.5}
