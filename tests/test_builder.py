"""Unit tests for HypergraphBuilder."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import HypergraphBuilder


class TestModules:
    def test_indices_assigned_in_order(self):
        b = HypergraphBuilder()
        assert b.add_module("a") == 0
        assert b.add_module("b") == 1
        assert b.add_module("c", area=2.5) == 2

    def test_reregistration_returns_same_index(self):
        b = HypergraphBuilder()
        assert b.add_module("a") == 0
        assert b.add_module("a") == 0
        assert b.num_modules == 1

    def test_reregistration_with_different_area_fails(self):
        b = HypergraphBuilder()
        b.add_module("a", area=1.0)
        with pytest.raises(HypergraphError, match="re-registered"):
            b.add_module("a", area=2.0)

    def test_nonpositive_area_rejected(self):
        b = HypergraphBuilder()
        with pytest.raises(HypergraphError, match="non-positive"):
            b.add_module("a", area=-1.0)

    def test_module_index_unknown(self):
        b = HypergraphBuilder()
        with pytest.raises(HypergraphError, match="unknown module"):
            b.module_index("ghost")

    def test_module_names_in_index_order(self):
        b = HypergraphBuilder()
        b.add_module("z")
        b.add_module("a")
        assert b.module_names() == ["z", "a"]


class TestNets:
    def test_auto_add_modules(self):
        b = HypergraphBuilder()
        assert b.add_net(["a", "b", "c"]) == 0
        assert b.num_modules == 3

    def test_no_auto_add_raises(self):
        b = HypergraphBuilder()
        b.add_module("a")
        with pytest.raises(HypergraphError, match="unknown"):
            b.add_net(["a", "b"], auto_add=False)

    def test_duplicate_pins_collapsed(self):
        b = HypergraphBuilder()
        b.add_net(["a", "b", "a"])
        hg = b.build()
        assert hg.net_size(0) == 2

    def test_degenerate_net_rejected_by_default(self):
        b = HypergraphBuilder()
        with pytest.raises(HypergraphError, match="fewer than two"):
            b.add_net(["a", "a"])

    def test_degenerate_net_skipped_when_configured(self):
        b = HypergraphBuilder(skip_degenerate_nets=True)
        assert b.add_net(["a", "a"]) is None
        assert b.num_nets == 0
        assert b.dropped_nets == 1

    def test_nonpositive_weight_rejected(self):
        b = HypergraphBuilder()
        with pytest.raises(HypergraphError, match="weight"):
            b.add_net(["a", "b"], weight=0)


class TestBuild:
    def test_roundtrip(self):
        b = HypergraphBuilder(name="circ")
        b.add_module("m0", area=2.0)
        b.add_net(["m0", "m1"], weight=3)
        b.add_net(["m1", "m2", "m0"])
        hg = b.build()
        assert hg.name == "circ"
        assert hg.num_modules == 3
        assert hg.num_nets == 2
        assert hg.area(0) == 2.0
        assert hg.area(1) == 1.0
        assert hg.net_weight(0) == 3
        assert hg.pins(1) == (1, 2, 0)

    def test_build_empty_nets_ok(self):
        b = HypergraphBuilder()
        b.add_module("only")
        b.add_module("two")
        hg = b.build()
        assert hg.num_modules == 2
        assert hg.num_nets == 0
