"""Tests for structural validation and hypergraph statistics."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import (Hypergraph, assert_same_structure,
                              check_consistency, compute_stats,
                              degree_histogram, hierarchical_circuit,
                              net_size_histogram)


class TestCheckConsistency:
    def test_valid_passes(self, tiny_hg, weighted_hg):
        check_consistency(tiny_hg)
        check_consistency(weighted_hg)

    def test_generated_pass(self):
        check_consistency(hierarchical_circuit(120, 150, seed=1))

    def test_tampered_pin_count_detected(self, tiny_hg):
        tiny_hg._num_pins += 1
        with pytest.raises(HypergraphError, match="num_pins"):
            check_consistency(tiny_hg)

    def test_tampered_area_detected(self, tiny_hg):
        tiny_hg._total_area += 5.0
        with pytest.raises(HypergraphError, match="total_area"):
            check_consistency(tiny_hg)

    def test_tampered_incidence_detected(self, tiny_hg):
        tiny_hg._module_nets_s = list(tiny_hg._module_nets)
        tiny_hg._module_nets_s[0] = ()
        with pytest.raises(HypergraphError):
            check_consistency(tiny_hg)


class TestSameStructure:
    def test_identical(self, tiny_hg):
        other = Hypergraph([list(tiny_hg.pins(e))
                            for e in tiny_hg.all_nets()],
                           num_modules=6)
        assert_same_structure(tiny_hg, other)

    def test_module_count_mismatch(self, tiny_hg):
        other = Hypergraph([[0, 1]], num_modules=7)
        with pytest.raises(HypergraphError, match="module counts"):
            assert_same_structure(tiny_hg, other)

    def test_net_count_mismatch(self, tiny_hg):
        other = Hypergraph([[0, 1]], num_modules=6)
        with pytest.raises(HypergraphError, match="net counts"):
            assert_same_structure(tiny_hg, other)

    def test_weight_mismatch(self):
        a = Hypergraph([[0, 1]], net_weights=[1])
        b = Hypergraph([[0, 1]], net_weights=[2])
        with pytest.raises(HypergraphError, match="weights"):
            assert_same_structure(a, b)

    def test_area_mismatch(self):
        a = Hypergraph([[0, 1]], areas=[1.0, 1.0])
        b = Hypergraph([[0, 1]], areas=[1.0, 2.0])
        with pytest.raises(HypergraphError, match="areas"):
            assert_same_structure(a, b)


class TestStats:
    def test_compute_stats(self, weighted_hg):
        stats = compute_stats(weighted_hg)
        assert stats.modules == 4
        assert stats.nets == 3
        assert stats.pins == 7
        assert stats.max_net_size == 3
        assert stats.total_area == 10.0
        assert stats.max_area == 4.0
        assert stats.mean_net_size == pytest.approx(7 / 3)

    def test_as_row(self, tiny_hg):
        row = compute_stats(tiny_hg).as_row()
        assert row["Test Case"] == "tiny"
        assert row["# Pins"] == 14

    def test_net_size_histogram(self, weighted_hg):
        assert net_size_histogram(weighted_hg) == {2: 2, 3: 1}

    def test_degree_histogram(self, tiny_hg):
        hist = degree_histogram(tiny_hg)
        assert sum(hist.values()) == 6
        assert hist[3] == 2  # modules 2 and 3 touch three nets each
