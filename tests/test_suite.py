"""Tests for the Table I suite registry."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import (TABLE_I, benchmark_names, benchmark_spec,
                              load_circuit, load_suite, mini_suite_names)


class TestRegistry:
    def test_all_23_circuits(self):
        assert len(TABLE_I) == 23
        assert benchmark_names()[0] == "balu"
        assert benchmark_names()[-1] == "golem3"

    def test_table1_spot_values(self):
        balu = benchmark_spec("balu")
        assert (balu.modules, balu.nets, balu.pins) == (801, 735, 2697)
        golem = benchmark_spec("golem3")
        assert golem.modules == 103048
        assert golem.pins == 338419

    def test_mean_net_size_in_realistic_band(self):
        for spec in TABLE_I:
            assert 2.0 < spec.mean_net_size < 4.5

    def test_unknown_name(self):
        with pytest.raises(HypergraphError, match="unknown benchmark"):
            benchmark_spec("nonsense")

    def test_mini_suite_subset(self):
        names = set(mini_suite_names())
        assert names <= set(benchmark_names())


class TestLoad:
    def test_scaled_counts(self):
        hg = load_circuit("struct", scale=0.1, seed=0)
        spec = benchmark_spec("struct")
        assert hg.num_modules == round(spec.modules * 0.1)
        assert hg.num_nets == round(spec.nets * 0.1)
        assert hg.name == "struct"

    def test_mean_net_size_tracks_spec(self):
        spec = benchmark_spec("biomed")
        hg = load_circuit("biomed", scale=0.2, seed=0)
        assert abs(hg.num_pins / hg.num_nets - spec.mean_net_size) < 0.5

    def test_deterministic(self):
        assert load_circuit("balu", scale=0.5, seed=3) == \
            load_circuit("balu", scale=0.5, seed=3)

    def test_seed_changes_instance(self):
        assert load_circuit("balu", scale=0.5, seed=3) != \
            load_circuit("balu", scale=0.5, seed=4)

    def test_different_circuits_differ(self):
        a = load_circuit("s9234", scale=0.05, seed=0)
        b = load_circuit("s13207", scale=0.05, seed=0)
        assert a.num_modules != b.num_modules

    def test_minimum_size_floor(self):
        hg = load_circuit("balu", scale=0.001, seed=0)
        assert hg.num_modules >= 16
        assert hg.num_nets >= 8

    def test_rejects_bad_scale(self):
        with pytest.raises(HypergraphError, match="scale"):
            load_circuit("balu", scale=0.0)

    def test_load_suite_defaults(self):
        suite = load_suite(names=["balu", "struct"], scale=0.1)
        assert [hg.name for hg in suite] == ["balu", "struct"]
