"""Tests for the classical partitioning metrics."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partition import (Partition, absorption, cut, ratio_cut,
                             scaled_cost, summarize)


@pytest.fixture
def square():
    """4-cycle: modules 0-1-2-3-0 with 2-pin nets."""
    return Hypergraph([[0, 1], [1, 2], [2, 3], [3, 0]], num_modules=4)


class TestRatioCut:
    def test_value(self, square):
        p = Partition([0, 0, 1, 1], 2)
        assert ratio_cut(square, p) == pytest.approx(2 / (2 * 2))

    def test_prefers_balanced_cut(self, square):
        balanced = Partition([0, 0, 1, 1], 2)   # cut 2, areas 2*2
        skewed = Partition([0, 1, 1, 1], 2)     # cut 2, areas 1*3
        assert ratio_cut(square, balanced) < ratio_cut(square, skewed)

    def test_area_weighted(self):
        hg = Hypergraph([[0, 1]], num_modules=2, areas=[2.0, 8.0])
        p = Partition([0, 1], 2)
        assert ratio_cut(hg, p) == pytest.approx(1 / 16)

    def test_rejects_kway(self, square):
        with pytest.raises(PartitionError):
            ratio_cut(square, Partition([0, 1, 2, 3], 4))

    def test_rejects_empty_side(self, square):
        with pytest.raises(PartitionError):
            ratio_cut(square, Partition([0, 0, 0, 0], 2))


class TestScaledCost:
    def test_bipartition_value(self, square):
        p = Partition([0, 0, 1, 1], 2)
        # both parts see the 2 cut nets: (2/2 + 2/2) / (4 * 1)
        assert scaled_cost(square, p) == pytest.approx(0.5)

    def test_kway(self, square):
        p = Partition([0, 1, 2, 3], 4)
        # every net cut; each part touches 2 nets of the 4
        expected = (2 / 1 * 4) / (4 * 3)
        assert scaled_cost(square, p) == pytest.approx(expected)

    def test_zero_for_uncut(self, square):
        hg = Hypergraph([[0, 1], [2, 3]], num_modules=4)
        p = Partition([0, 0, 1, 1], 2)
        assert scaled_cost(hg, p) == 0.0


class TestAbsorption:
    def test_uncut_nets_fully_absorbed(self, square):
        p = Partition([0, 0, 0, 0], 2)
        assert absorption(square, p) == pytest.approx(4.0)

    def test_two_pin_cut_net_zero(self):
        hg = Hypergraph([[0, 1]], num_modules=2)
        assert absorption(hg, Partition([0, 1], 2)) == 0.0

    def test_partial_absorption(self):
        hg = Hypergraph([[0, 1, 2]], num_modules=3)
        p = Partition([0, 0, 1], 2)
        assert absorption(hg, p) == pytest.approx(0.5)

    def test_monotone_in_cut(self, square):
        good = Partition([0, 0, 1, 1], 2)  # cut 2
        bad = Partition([0, 1, 0, 1], 2)   # cut 4
        assert absorption(square, good) > absorption(square, bad)


class TestSummarize:
    def test_keys(self, square):
        summary = summarize(square, Partition([0, 0, 1, 1], 2))
        for key in ("k", "cut", "soed", "absorption", "part_areas",
                    "balanced", "ratio_cut", "scaled_cost"):
            assert key in summary
        assert summary["cut"] == cut(square, Partition([0, 0, 1, 1], 2))
        assert summary["balanced"]

    def test_kway_has_no_ratio_cut(self, square):
        summary = summarize(square, Partition([0, 1, 2, 3], 4))
        assert "ratio_cut" not in summary
        assert summary["k"] == 4
