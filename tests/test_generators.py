"""Tests for the synthetic circuit generators."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import (check_consistency, grid_circuit,
                              hierarchical_circuit, random_hypergraph)
from repro.hypergraph.generators import net_size_distribution
from repro.partition import Partition, cut


class TestHierarchical:
    def test_exact_counts(self):
        hg = hierarchical_circuit(500, 620, seed=1)
        assert hg.num_modules == 500
        assert hg.num_nets == 620

    def test_structurally_consistent(self):
        check_consistency(hierarchical_circuit(300, 350, seed=2))

    def test_deterministic_given_seed(self):
        a = hierarchical_circuit(200, 240, seed=7)
        b = hierarchical_circuit(200, 240, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = hierarchical_circuit(200, 240, seed=7)
        b = hierarchical_circuit(200, 240, seed=8)
        assert a != b

    def test_mean_net_size_calibrated(self):
        for target in (2.8, 3.3, 3.7):
            hg = hierarchical_circuit(800, 1000, mean_net_size=target,
                                      seed=3)
            actual = hg.num_pins / hg.num_nets
            assert abs(actual - target) < 0.45

    def test_no_isolated_modules(self):
        hg = hierarchical_circuit(400, 420, seed=21)
        assert all(hg.degree(v) > 0 for v in hg.modules())

    def test_locality_reduces_natural_cut(self):
        """Nets biased to deep subtrees => some balanced split has a cut
        far below the random-hypergraph expectation."""
        local = hierarchical_circuit(400, 500, locality=0.9, seed=4)
        noise = random_hypergraph(400, 500, seed=4)

        def best_random_split_cut(hg, tries=40):
            import random
            best = hg.num_nets
            rng = random.Random(0)
            n = hg.num_modules
            for _ in range(tries):
                order = list(range(n))
                rng.shuffle(order)
                assignment = [0] * n
                for v in order[n // 2:]:
                    assignment[v] = 1
                best = min(best, cut(hg, Partition(assignment, 2)))
            return best

        # This is a weak bound on purpose (random splits can't find the
        # planted structure), but FM-refined cuts are compared in the
        # integration tests; here we only check the generators differ.
        from repro.fm import fm_bipartition
        local_cut = fm_bipartition(local, seed=0).cut
        noise_cut = fm_bipartition(noise, seed=0).cut
        assert local_cut < noise_cut

    def test_custom_areas(self):
        areas = [1.0 + (i % 3) for i in range(64)]
        hg = hierarchical_circuit(64, 80, seed=5, areas=areas)
        assert hg.area(2) == 3.0

    def test_rejects_tiny_instance(self):
        with pytest.raises(HypergraphError):
            hierarchical_circuit(3, 10)

    def test_rejects_zero_nets(self):
        with pytest.raises(HypergraphError):
            hierarchical_circuit(100, 0)


class TestGrid:
    def test_counts(self):
        hg = grid_circuit(4, 5)
        assert hg.num_modules == 20
        # (cols-1)*rows horizontal + (rows-1)*cols vertical
        assert hg.num_nets == 4 * 4 + 3 * 5

    def test_all_two_pin(self):
        hg = grid_circuit(3, 3)
        assert all(hg.net_size(e) == 2 for e in hg.all_nets())

    def test_shuffled_when_seeded(self):
        a = grid_circuit(4, 4)
        b = grid_circuit(4, 4, seed=1)
        assert a != b

    def test_deterministic_shuffle(self):
        assert grid_circuit(4, 4, seed=9) == grid_circuit(4, 4, seed=9)

    def test_optimal_bisection_known(self):
        """A straight cut across the short dimension cuts min(r, c)."""
        hg = grid_circuit(4, 8)  # unshuffled: index = r * cols + c
        assignment = [0 if (v % 8) < 4 else 1 for v in range(32)]
        assert cut(hg, Partition(assignment, 2)) == 4

    def test_rejects_bad_dims(self):
        with pytest.raises(HypergraphError):
            grid_circuit(0, 5)
        with pytest.raises(HypergraphError):
            grid_circuit(1, 1)


class TestRandom:
    def test_counts_and_sizes(self):
        hg = random_hypergraph(50, 80, min_net_size=2, max_net_size=4,
                               seed=2)
        assert hg.num_modules == 50
        assert hg.num_nets == 80
        assert all(2 <= hg.net_size(e) <= 4 for e in hg.all_nets())

    def test_deterministic(self):
        assert random_hypergraph(30, 40, seed=3) == \
            random_hypergraph(30, 40, seed=3)

    def test_rejects_bad_range(self):
        with pytest.raises(HypergraphError):
            random_hypergraph(10, 5, min_net_size=4, max_net_size=3)

    def test_rejects_too_few_modules(self):
        with pytest.raises(HypergraphError):
            random_hypergraph(1, 5)


class TestNetSizeDistribution:
    def test_weights_positive(self):
        weights = net_size_distribution(3.2)
        assert all(w > 0 for w in weights)

    def test_mean_monotone_in_target(self):
        def mean_of(target):
            weights = net_size_distribution(target)
            sizes = list(range(2, 2 + len(weights) - 1)) + [30]
            total = sum(weights)
            return sum(s * w for s, w in zip(sizes, weights)) / total

        assert mean_of(2.5) < mean_of(3.0) < mean_of(3.6)

    def test_rejects_small_max(self):
        with pytest.raises(HypergraphError):
            net_size_distribution(3.0, max_size=2)
