"""Tests for Partition, balance constraints, and reference objectives."""

import pytest

from repro.errors import BalanceError, PartitionError
from repro.hypergraph import Hypergraph
from repro.partition import (BalanceConstraint, Partition, cut,
                             random_partition, soed, spans)
from repro.partition.rebalance import rebalance_random


class TestPartition:
    def test_basic(self):
        p = Partition([0, 1, 0, 1], k=2)
        assert p.num_modules == 4
        assert p.part_of(1) == 1
        assert p.part_sizes() == [2, 2]
        assert p.parts() == [[0, 2], [1, 3]]

    def test_rejects_out_of_range(self):
        with pytest.raises(PartitionError):
            Partition([0, 2], k=2)

    def test_rejects_k_below_two(self):
        with pytest.raises(PartitionError):
            Partition([0, 0], k=1)

    def test_part_areas(self, weighted_hg):
        p = Partition([0, 0, 1, 1], k=2)
        assert p.part_areas(weighted_hg) == [3.0, 7.0]

    def test_part_areas_size_mismatch(self, weighted_hg):
        with pytest.raises(PartitionError):
            Partition([0, 1], k=2).part_areas(weighted_hg)

    def test_copy_independent(self):
        p = Partition([0, 1], k=2)
        q = p.copy()
        q.assignment[0] = 1
        assert p.assignment[0] == 0

    def test_relabeled_canonical(self):
        a = Partition([1, 0, 1], k=2).relabeled()
        b = Partition([0, 1, 0], k=2).relabeled()
        assert a == b

    def test_equality_and_hash(self):
        assert Partition([0, 1], 2) == Partition([0, 1], 2)
        assert hash(Partition([0, 1], 2)) == hash(Partition([0, 1], 2))
        assert Partition([0, 1], 2) != Partition([1, 0], 2)


class TestRandomPartition:
    def test_balanced_unit_areas(self, medium_hg):
        p = random_partition(medium_hg, k=2, seed=0)
        sizes = p.part_sizes()
        assert abs(sizes[0] - sizes[1]) <= 1

    def test_balanced_k4(self, medium_hg):
        p = random_partition(medium_hg, k=4, seed=0)
        sizes = p.part_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_balanced_heterogeneous_areas(self):
        areas = [1.0 + (i % 5) for i in range(100)]
        hg = Hypergraph([[i, (i + 1) % 100] for i in range(100)],
                        num_modules=100, areas=areas)
        p = random_partition(hg, k=2, seed=3)
        a = p.part_areas(hg)
        assert abs(a[0] - a[1]) <= hg.max_area

    def test_deterministic(self, medium_hg):
        assert random_partition(medium_hg, seed=5) == \
            random_partition(medium_hg, seed=5)


class TestObjectives:
    def test_cut_simple(self, tiny_hg):
        p = Partition([0, 0, 0, 1, 1, 1], k=2)
        assert cut(tiny_hg, p) == 1  # only the bridge net {2,3}

    def test_cut_all_one_side_is_zero(self, tiny_hg):
        assert cut(tiny_hg, Partition([0] * 6, k=2)) == 0

    def test_cut_weighted(self, weighted_hg):
        p = Partition([0, 1, 1, 0], k=2)
        # net0 {0,1} cut (w=2); net1 {1,2,3} cut (w=1); net2 {0,3} uncut
        assert cut(weighted_hg, p) == 3

    def test_soed_is_twice_cut_for_bipartition(self, tiny_hg):
        p = Partition([0, 1, 0, 1, 0, 1], k=2)
        assert soed(tiny_hg, p) == 2 * cut(tiny_hg, p)

    def test_soed_kway(self):
        hg = Hypergraph([[0, 1, 2, 3]], num_modules=4)
        assert soed(hg, Partition([0, 1, 2, 3], k=4)) == 4
        assert soed(hg, Partition([0, 0, 1, 1], k=4)) == 2
        assert soed(hg, Partition([0, 0, 0, 0], k=4)) == 0

    def test_spans(self, tiny_hg):
        p = Partition([0, 1, 0, 1, 0, 1], k=2)
        assert spans(tiny_hg, p, 0) == 2
        assert spans(tiny_hg, p, 2) == 1

    def test_size_mismatch(self, tiny_hg):
        with pytest.raises(PartitionError):
            cut(tiny_hg, Partition([0, 1], k=2))


class TestBalanceConstraint:
    def test_paper_formula(self, medium_hg):
        c = BalanceConstraint.from_tolerance(medium_hg, 0.1, k=2)
        total = medium_hg.total_area
        slack = max(medium_hg.max_area, 0.1 * total)
        assert c.lower == pytest.approx(total / 2 - slack)
        assert c.upper == pytest.approx(total / 2 + slack)

    def test_max_area_dominates_for_tight_r(self):
        hg = Hypergraph([[0, 1]], areas=[10.0, 1.0])
        c = BalanceConstraint.from_tolerance(hg, 0.01, k=2)
        # slack must be max(A(v*), r*A) = 10, not 0.11
        assert c.upper - hg.total_area / 2 == pytest.approx(10.0)

    def test_is_feasible(self):
        c = BalanceConstraint(lower=4.0, upper=6.0, k=2)
        assert c.is_feasible([5.0, 5.0])
        assert not c.is_feasible([3.0, 7.0])

    def test_violations(self):
        c = BalanceConstraint(lower=4.0, upper=6.0, k=3)
        assert c.violations([3.0, 5.0, 7.0]) == [0, 2]

    def test_wrong_length(self):
        c = BalanceConstraint(lower=0.0, upper=1.0, k=2)
        with pytest.raises(BalanceError):
            c.is_feasible([1.0])

    def test_move_allowed(self):
        c = BalanceConstraint(lower=4.0, upper=6.0, k=2)
        assert c.move_allowed(6.0, 4.0, 1.0)
        assert not c.move_allowed(4.0, 6.0, 1.0)  # source would break lower

    def test_bad_tolerance(self, tiny_hg):
        with pytest.raises(BalanceError):
            BalanceConstraint.from_tolerance(tiny_hg, 1.0)
        with pytest.raises(BalanceError):
            BalanceConstraint.from_tolerance(tiny_hg, -0.1)

    def test_invalid_bounds(self):
        with pytest.raises(BalanceError):
            BalanceConstraint(lower=2.0, upper=1.0, k=2)


class TestRebalance:
    def test_already_feasible_untouched(self, medium_hg):
        p = random_partition(medium_hg, seed=1)
        c = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        q = rebalance_random(medium_hg, p, c, seed=0)
        assert q.assignment == p.assignment

    def test_fixes_gross_imbalance(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=2)
        c = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        q = rebalance_random(medium_hg, p, c, seed=0)
        assert c.is_feasible(q.part_areas(medium_hg))

    def test_input_not_modified(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=2)
        c = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        rebalance_random(medium_hg, p, c, seed=0)
        assert all(x == 0 for x in p.assignment)

    def test_kway(self, medium_hg):
        p = Partition([0] * medium_hg.num_modules, k=4)
        c = BalanceConstraint.from_tolerance(medium_hg, 0.1, k=4)
        q = rebalance_random(medium_hg, p, c, seed=0)
        assert c.is_feasible(q.part_areas(medium_hg))

    def test_respects_movable_mask(self, medium_hg):
        n = medium_hg.num_modules
        p = Partition([0] * n, k=2)
        c = BalanceConstraint.from_tolerance(medium_hg, 0.1)
        movable = [v >= n // 4 for v in range(n)]
        q = rebalance_random(medium_hg, p, c, seed=0, movable=movable)
        assert c.is_feasible(q.part_areas(medium_hg))
        assert all(q.assignment[v] == 0 for v in range(n // 4))

    def test_infeasible_raises(self):
        hg = Hypergraph([[0, 1]], areas=[100.0, 1.0])
        c = BalanceConstraint(lower=45.0, upper=55.0, k=2)
        with pytest.raises(BalanceError):
            rebalance_random(hg, Partition([0, 0], 2), c, seed=0)
