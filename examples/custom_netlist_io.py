"""Working with your own netlists: build, save, load, partition.

Shows the three ways to get a netlist into the library —
HypergraphBuilder with named modules, the hMETIS exchange format
(compatible with the real ACM/SIGDA benchmark conversions), and the
JSON container — and runs the full ML partitioner on the result.

Run:  python examples/custom_netlist_io.py
"""

import tempfile
from pathlib import Path

from repro import (HypergraphBuilder, MLConfig, ml_bipartition,
                   read_hmetis, write_hmetis)


def build_half_adder_array(copies: int = 60) -> "object":
    """A toy structural netlist: a chain of half-adder-ish cells.

    Demonstrates named modules and per-module areas; each cell has an
    XOR (area 2), an AND (area 1), and nets wiring it to the next cell.
    """
    builder = HypergraphBuilder(name="adder_chain")
    for i in range(copies):
        xor = f"u{i}_xor"
        and_ = f"u{i}_and"
        builder.add_module(xor, area=2.0)
        builder.add_module(and_, area=1.0)
        # local nets inside the cell
        builder.add_net([xor, and_])
        if i > 0:
            # carry chain to the previous cell
            builder.add_net([f"u{i - 1}_and", xor, and_])
    # a clock-like global net touching every XOR (large fanout)
    builder.add_net([f"u{i}_xor" for i in range(copies)])
    return builder.build()


def main() -> None:
    netlist = build_half_adder_array()
    print(f"built: {netlist.num_modules} modules, {netlist.num_nets} nets, "
          f"total area {netlist.total_area:g}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "adder_chain.hgr"
        write_hmetis(netlist, path)
        print(f"wrote hMETIS file: {path.name} "
              f"({path.stat().st_size} bytes)")
        loaded = read_hmetis(path)
        assert loaded.num_nets == netlist.num_nets

    result = ml_bipartition(loaded, config=MLConfig(engine="clip"), seed=3)
    areas = [round(a, 1) for a in result.partition.part_areas(loaded)]
    print(f"\nML_C bipartition: cut = {result.cut}, "
          f"side areas = {areas}")
    print("note: the 60-pin clock net is ignored during refinement "
          "only if it exceeds max_net_size; it is always counted in "
          "the reported cut.")


if __name__ == "__main__":
    main()
