"""Top-down placement by recursive multilevel quadrisection.

The paper's quadrisection algorithm became the core of a cell placement
package [24].  This example runs the whole flow:

1. 4-way partition a circuit with ML (sum-of-degrees gain, R = 1.0,
   T = 100) and compare the cut against the GORDIAN-style quadratic
   placement split (the Table IX experiment on one circuit);
2. recursively quadrisect down to a 4 x 4 grid of regions with terminal
   propagation, and score the resulting placement by half-perimeter
   wirelength against a random placement.

Run:  python examples/quadrisection_placement.py
"""

import random
import time

from repro import load_circuit, ml_quadrisection
from repro.baselines import gordian_quadrisection
from repro.placement import hpwl, quadrisection_placement


def main() -> None:
    netlist = load_circuit("biomed", scale=0.1, seed=0)
    print(f"circuit: {netlist.name} at 10% scale "
          f"({netlist.num_modules} modules, {netlist.num_nets} nets)\n")

    # --- Table IX style comparison on one circuit ------------------
    start = time.perf_counter()
    ml = ml_quadrisection(netlist, seed=1)
    ml_time = time.perf_counter() - start
    gordian = gordian_quadrisection(netlist, seed=1)
    print(f"4-way cut: ML_F {ml.cut} (soed {ml.soed}, "
          f"{ml.levels} levels, {ml_time:.1f}s) "
          f"vs GORDIAN-sim {gordian.cut}")

    # --- Full top-down placement -----------------------------------
    start = time.perf_counter()
    placement = quadrisection_placement(netlist, levels=2, seed=1)
    place_time = time.perf_counter() - start

    rng = random.Random(0)
    random_hpwl = hpwl(netlist,
                       [rng.random() for _ in netlist.modules()],
                       [rng.random() for _ in netlist.modules()])
    print(f"\nplacement: {len(placement.regions)} regions, "
          f"HPWL {placement.hpwl:.1f} in {place_time:.1f}s "
          f"(random placement: {random_hpwl:.1f})")

    occupancy = sorted(len(r.modules) for r in placement.regions)
    print(f"region occupancy: min {occupancy[0]}, max {occupancy[-1]}")


if __name__ == "__main__":
    main()
