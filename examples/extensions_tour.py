"""Tour of the Section V extensions implemented beyond the base paper.

The paper's conclusions list several planned improvements; this example
exercises the ones built here, on one circuit, side by side:

* boundary FM refinement (cheaper passes on good starting solutions),
* multiple coarsest-level starts,
* V-cycle iteration with restricted matching (hMETIS-style),
* Krishnamurthy lookahead, including the CL-LA3 configuration
  (CLIP + 3-level lookahead) that Table VII compares against.

Run:  python examples/extensions_tour.py
"""

import time
from statistics import mean

from repro import (FMConfig, MLConfig, fm_bipartition, load_circuit,
                   ml_bipartition, ml_vcycle)
from repro.rng import child_seeds


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label:<28} cut {result.cut:4d}   "
          f"[{time.perf_counter() - start:.2f}s]")
    return result


def averaged(label, fn, runs=3):
    start = time.perf_counter()
    cuts = [fn(s).cut for s in child_seeds(label, runs)]
    print(f"  {label:<28} min {min(cuts):4d}  avg {mean(cuts):6.1f}  "
          f"[{time.perf_counter() - start:.2f}s, {runs} runs]")


def main() -> None:
    netlist = load_circuit("biomed", scale=0.15, seed=0)
    print(f"circuit: {netlist.name} ({netlist.num_modules} modules, "
          f"{netlist.num_nets} nets)\n")

    print("flat engines (single runs are noisy; 3 runs each):")
    averaged("FM (LIFO)", lambda s: fm_bipartition(netlist, seed=s))
    averaged("FM + lookahead 3", lambda s: fm_bipartition(
        netlist, config=FMConfig(lookahead=3), seed=s))
    averaged("CLIP", lambda s: fm_bipartition(
        netlist, config=FMConfig(clip=True), seed=s))
    averaged("CL-LA3 (CLIP + LA3)", lambda s: fm_bipartition(
        netlist, config=FMConfig(clip=True, lookahead=3), seed=s))

    print("\nmultilevel:")
    base = timed("ML_F baseline", lambda: ml_bipartition(
        netlist, config=MLConfig(engine="fm"), seed=7))
    timed("ML_F + boundary FM", lambda: ml_bipartition(
        netlist, config=MLConfig(engine="fm", fm=FMConfig(boundary=True)),
        seed=7))
    timed("ML_F + 8 coarsest starts", lambda: ml_bipartition(
        netlist, config=MLConfig(engine="fm", coarsest_starts=8), seed=7))
    vc = timed("ML_F + 2 V-cycles", lambda: ml_vcycle(
        netlist, cycles=2, config=MLConfig(engine="fm"), seed=7))

    print(f"\nV-cycle trajectory: {vc.cycle_cuts} "
          f"(baseline single ML run: {base.cut})")


if __name__ == "__main__":
    main()
