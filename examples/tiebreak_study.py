"""Reproduce the Section II-A tie-breaking study (Table II) in miniature.

Runs FM with LIFO, FIFO, and RANDOM gain-bucket disciplines on a few
suite circuits and prints min/avg/std cuts — demonstrating the paper's
(then-surprising) finding that the bucket discipline alone changes
solution quality dramatically.

Run:  python examples/tiebreak_study.py [runs]
"""

import sys
from statistics import mean, pstdev

from repro import FMConfig, fm_bipartition, load_circuit
from repro.harness import format_table
from repro.rng import child_seeds, stable_seed


def main(runs: int = 10) -> None:
    circuits = ["struct", "primary2", "s9234"]
    policies = ["lifo", "fifo", "random"]
    rows = []
    for name in circuits:
        netlist = load_circuit(name, scale=0.1, seed=0)
        row = [name]
        for policy in policies:
            config = FMConfig(bucket_policy=policy)
            cuts = [fm_bipartition(netlist, config=config, seed=s).cut
                    for s in child_seeds(stable_seed(name, policy), runs)]
            row.extend([min(cuts), round(mean(cuts), 1),
                        round(pstdev(cuts), 1)])
        rows.append(row)

    headers = ["circuit"]
    for policy in policies:
        headers += [f"{policy} min", f"{policy} avg", f"{policy} std"]
    print(format_table(headers, rows,
                       title=f"FM bucket disciplines ({runs} runs, "
                             "circuits at 10% of Table I scale)"))
    print("\nExpected shape (paper, Table II): LIFO and RANDOM close, "
          "FIFO much worse.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
