"""Reproduce the Figure 4 study: matching ratio R vs solution quality.

Sweeps the matching ratio of ML_C over a grid and prints the average
cut and CPU time per point, plus the number of hierarchy levels each R
produces — showing the paper's key mechanism: smaller R coarsens more
slowly, creating more levels and more refinement opportunities, at a
CPU cost.

Run:  python examples/matching_ratio_study.py [runs]
"""

import sys
import time
from statistics import mean

from repro import MLConfig, build_hierarchy, load_circuit, ml_bipartition
from repro.harness import format_table
from repro.rng import child_seeds


def main(runs: int = 5) -> None:
    netlist = load_circuit("avqsmall", scale=0.1, seed=0)
    print(f"circuit: {netlist.name} at 10% scale "
          f"({netlist.num_modules} modules, {netlist.num_nets} nets)\n")

    rows = []
    for ratio in (1.0, 0.8, 0.6, 0.4, 0.2):
        config = MLConfig(engine="clip", matching_ratio=ratio)
        levels = build_hierarchy(netlist, config, seed=0).levels
        start = time.perf_counter()
        cuts = [ml_bipartition(netlist, config=config, seed=s).cut
                for s in child_seeds(ratio, runs)]
        elapsed = time.perf_counter() - start
        rows.append([ratio, levels, min(cuts), round(mean(cuts), 1),
                     round(elapsed, 2)])

    print(format_table(
        ["R", "levels", "min cut", "avg cut", "CPU (s)"], rows,
        title=f"ML_C matching-ratio sweep ({runs} runs per point)"))
    print("\nExpected shape (paper, Fig. 4 + Tables V/VI): levels grow "
          "as R shrinks; average cut drifts down (strongly so on the "
          "paper's full-size circuits); CPU grows.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
