"""Quickstart: bipartition a netlist with the ML multilevel algorithm.

Builds a synthetic circuit, runs the paper's ML_C configuration
(CLIP refinement, matching ratio R = 0.5, threshold T = 35), and
compares the result against a flat FM run — the paper's headline
comparison in one screen of code.

Run:  python examples/quickstart.py
"""

from repro import (FMConfig, MLConfig, fm_bipartition, hierarchical_circuit,
                   ml_bipartition)


def main() -> None:
    # A 2000-module netlist with the hierarchical structure of a real
    # circuit (see repro.hypergraph.generators for what that means).
    netlist = hierarchical_circuit(num_modules=2000, num_nets=2400,
                                   seed=7, name="demo")
    print(f"netlist: {netlist.num_modules} modules, "
          f"{netlist.num_nets} nets, {netlist.num_pins} pins")

    # Flat FM from a random start (the classical baseline).
    flat = fm_bipartition(netlist, config=FMConfig(), seed=42)
    print(f"\nflat FM:      cut = {flat.cut:4d}  "
          f"({flat.passes} passes, started from cut {flat.initial_cut})")

    # ML_C: coarsen with Match (R = 0.5), partition the coarsest
    # netlist, then uncoarsen with CLIP refinement at every level.
    config = MLConfig(engine="clip", matching_ratio=0.5,
                      coarsening_threshold=35)
    ml = ml_bipartition(netlist, config=config, seed=42)
    print(f"multilevel:   cut = {ml.cut:4d}  "
          f"({ml.levels} levels: {ml.level_sizes})")

    sides = ml.partition.part_sizes()
    print(f"\nfinal balance: {sides[0]} vs {sides[1]} modules "
          f"(tolerance r = {config.fm.tolerance})")
    improvement = 100.0 * (flat.cut - ml.cut) / flat.cut
    print(f"ML improves on flat FM by {improvement:.1f}% on this run")


if __name__ == "__main__":
    main()
