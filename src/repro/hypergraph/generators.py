"""Synthetic benchmark-circuit generators.

The paper evaluates on 23 ACM/SIGDA benchmark circuits obtained from the
CAD Benchmarking Laboratory (Table I).  Those netlists are not shipped
here, so this module provides generators that produce *structurally
comparable* synthetic circuits:

* :func:`hierarchical_circuit` — the workhorse.  Modules are placed at
  the leaves of a recursive bisection tree and nets are drawn with a
  strong locality bias (a net's pins share a deep subtree with high
  probability).  Real netlists exhibit exactly this kind of recursive
  community structure (Rent's rule); it is what makes multilevel
  coarsening effective and flat FM degrade with size — the central
  phenomenon of the paper.
* :func:`grid_circuit` — a rectangular mesh with known, analysable
  min-cut structure; used heavily by the test suite.
* :func:`random_hypergraph` — unstructured uniform random nets; used by
  property-based tests and as a pathological "no structure" input.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import HypergraphError
from ..rng import SeedLike, make_rng
from .hypergraph import Hypergraph

__all__ = [
    "hierarchical_circuit",
    "grid_circuit",
    "random_hypergraph",
    "net_size_distribution",
]


def net_size_distribution(mean_size: float,
                          max_size: int = 10,
                          large_net_fraction: float = 0.01,
                          large_net_size: int = 30) -> List[float]:
    """Weights over net sizes ``2..max_size`` plus a rare large-net bucket.

    Returns a weight vector indexed so that entry ``k`` is the weight of
    net size ``k + 2``; the final entry corresponds to ``large_net_size``.
    The geometric decay rate is solved numerically so the distribution's
    mean matches ``mean_size`` (clamped to the representable range).

    Real circuits are dominated by 2- and 3-pin nets with a thin tail of
    high-fanout nets (clock/reset); Table I's pins/nets ratios fall in
    ``[2.8, 3.7]``, squarely inside the representable range.
    """
    if max_size < 3:
        raise HypergraphError("max_size must be at least 3")
    sizes = list(range(2, max_size + 1)) + [large_net_size]

    def mean_for(decay: float) -> float:
        weights = [decay ** i for i in range(max_size - 1)]
        weights.append(large_net_fraction * sum(weights))
        total = sum(weights)
        return sum(s * w for s, w in zip(sizes, weights)) / total

    lo, hi = 1e-6, 1.0
    target = min(max(mean_size, mean_for(lo) + 1e-9), mean_for(hi) - 1e-9)
    for _ in range(60):
        mid = (lo + hi) / 2
        if mean_for(mid) < target:
            lo = mid
        else:
            hi = mid
    decay = (lo + hi) / 2
    weights = [decay ** i for i in range(max_size - 1)]
    weights.append(large_net_fraction * sum(weights))
    return weights


def _leaf_assignment(num_modules: int, depth: int,
                     rng: random.Random) -> List[int]:
    """Assign each module a leaf id of a depth-``depth`` bisection tree.

    Modules are spread evenly over the ``2**depth`` leaves and then the
    module indices are shuffled, so module index carries no positional
    information (partitioners must discover the structure).
    """
    leaves = 1 << depth
    leaf_of = [i * leaves // num_modules for i in range(num_modules)]
    rng.shuffle(leaf_of)
    return leaf_of


def hierarchical_circuit(num_modules: int,
                         num_nets: int,
                         mean_net_size: float = 3.2,
                         depth: Optional[int] = None,
                         locality: float = 0.9,
                         seed: SeedLike = None,
                         name: str = "",
                         areas: Optional[Sequence[float]] = None,
                         ) -> Hypergraph:
    """Generate a hierarchically clustered synthetic circuit.

    Parameters
    ----------
    num_modules, num_nets:
        Target sizes (matched exactly).
    mean_net_size:
        Target average pins per net; pin totals land close to
        ``num_nets * mean_net_size``.
    depth:
        Depth of the implicit bisection tree.  Defaults to
        ``log2(num_modules / 4)`` so leaves hold roughly 4 modules —
        tight micro-clusters like the gate-level cones of real
        netlists, which is what makes cluster-aware methods (CLIP,
        multilevel coarsening) pay off the way the paper reports.
    locality:
        Probability, at each tree level, that a net stays inside the
        current subtree rather than escaping to the sibling.  Higher
        values produce smaller natural cuts.
    seed:
        Determinism control.
    areas:
        Optional per-module areas (defaults to unit areas, as in all the
        paper's bipartitioning experiments).

    The construction draws each net by walking down the bisection tree:
    at each level the net "commits" to one child with probability
    ``locality``; once committed the net's pins are sampled from the
    chosen subtree.  A net that never commits becomes a global net.
    The resulting netlist has an expected cut at the top-level split far
    below that of a random hypergraph, so good partitioners separate
    cleanly from bad ones.
    """
    if num_modules < 4:
        raise HypergraphError("hierarchical_circuit needs >= 4 modules")
    if num_nets < 1:
        raise HypergraphError("hierarchical_circuit needs >= 1 net")
    rng = make_rng(seed)

    if depth is None:
        depth = max(1, (num_modules // 4).bit_length() - 1)
    depth = max(1, min(depth, (num_modules // 2).bit_length() - 1))

    leaf_of = _leaf_assignment(num_modules, depth, rng)
    num_leaves = 1 << depth

    # modules_by_leaf[leaf] = module indices living at that leaf.
    modules_by_leaf: List[List[int]] = [[] for _ in range(num_leaves)]
    for v, leaf in enumerate(leaf_of):
        modules_by_leaf[leaf].append(v)

    # Prefix structure: modules under internal node (level, index) are the
    # concatenation of a contiguous leaf range.  We sample by picking a
    # leaf range [lo, hi) and then sampling modules from its leaves.
    size_weights = net_size_distribution(mean_net_size)
    size_values = list(range(2, 2 + len(size_weights) - 1)) + [30]

    def sample_from_range(lo: int, hi: int, count: int) -> List[int]:
        """Sample ``count`` distinct modules whose leaf is in [lo, hi)."""
        pool_size = sum(len(modules_by_leaf[leaf]) for leaf in range(lo, hi))
        count = min(count, pool_size)
        chosen: set = set()
        # Rejection sampling over leaves keeps this O(count) in the common
        # case; fall back to explicit pooling for tiny ranges.
        if pool_size <= 4 * count:
            pool = [v for leaf in range(lo, hi)
                    for v in modules_by_leaf[leaf]]
            return rng.sample(pool, count)
        while len(chosen) < count:
            leaf = rng.randrange(lo, hi)
            bucket = modules_by_leaf[leaf]
            if bucket:
                chosen.add(bucket[rng.randrange(len(bucket))])
        return list(chosen)

    nets: List[List[int]] = []
    for _ in range(num_nets):
        size = rng.choices(size_values, weights=size_weights, k=1)[0]
        lo, hi = 0, num_leaves
        while hi - lo > 1 and rng.random() < locality:
            mid = (lo + hi) // 2
            if rng.random() < 0.5:
                hi = mid
            else:
                lo = mid
        pins = sample_from_range(lo, hi, size)
        if len(pins) < 2:
            # Subtree too small for the drawn size; widen to the whole
            # netlist so the net is never dropped.
            pins = sample_from_range(0, num_leaves, max(2, size))
        nets.append(pins)

    # Real netlists contain no unconnected cells: splice any module the
    # sampling missed into a small net from its own leaf neighbourhood
    # (net and pin counts barely change, locality is preserved).
    connected = [False] * num_modules
    net_by_leaf: List[List[int]] = [[] for _ in range(num_leaves)]
    for idx, pins in enumerate(nets):
        for v in pins:
            connected[v] = True
        net_by_leaf[leaf_of[pins[0]]].append(idx)
    small_nets = [idx for idx, pins in enumerate(nets) if len(pins) < 8]
    for v in range(num_modules):
        if connected[v]:
            continue
        local = net_by_leaf[leaf_of[v]]
        pool = local if local else small_nets
        if not pool:
            pool = range(len(nets))
        nets[rng.choice(list(pool))].append(v)
        connected[v] = True

    return Hypergraph(nets, num_modules=num_modules, areas=areas, name=name)


def grid_circuit(rows: int, cols: int, seed: SeedLike = None,
                 name: str = "") -> Hypergraph:
    """A ``rows x cols`` mesh of 2-pin nets.

    The optimal bisection of a mesh cuts ``min(rows, cols)`` nets (a
    straight cut across the short dimension), which gives the test suite
    a known ground truth.  Module indices are shuffled when a seed is
    given so the structure is not index-aligned.
    """
    if rows < 1 or cols < 1:
        raise HypergraphError("grid dimensions must be positive")
    if rows * cols < 2:
        raise HypergraphError("grid must contain at least two modules")
    n = rows * cols
    ids = list(range(n))
    if seed is not None:
        make_rng(seed).shuffle(ids)

    def at(r: int, c: int) -> int:
        return ids[r * cols + c]

    nets: List[List[int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                nets.append([at(r, c), at(r, c + 1)])
            if r + 1 < rows:
                nets.append([at(r, c), at(r + 1, c)])
    return Hypergraph(nets, num_modules=n,
                      name=name or f"grid{rows}x{cols}")


def random_hypergraph(num_modules: int, num_nets: int,
                      min_net_size: int = 2, max_net_size: int = 5,
                      seed: SeedLike = None,
                      name: str = "") -> Hypergraph:
    """Uniform random hypergraph with nets of size in the given range."""
    if num_modules < max(2, min_net_size):
        raise HypergraphError(
            "random_hypergraph needs at least min_net_size (>= 2) modules")
    if min_net_size < 2 or max_net_size < min_net_size:
        raise HypergraphError("invalid net size range")
    rng = make_rng(seed)
    nets = []
    for _ in range(num_nets):
        size = rng.randint(min_net_size, min(max_net_size, num_modules))
        nets.append(rng.sample(range(num_modules), size))
    return Hypergraph(nets, num_modules=num_modules,
                      name=name or "random")
