"""Incremental construction of hypergraphs.

:class:`HypergraphBuilder` supports named modules and incremental net
addition, which is what netlist parsers and synthetic generators need;
it emits an immutable :class:`~repro.hypergraph.Hypergraph` at the end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import HypergraphError
from .hypergraph import Hypergraph

__all__ = ["HypergraphBuilder"]


class HypergraphBuilder:
    """Builds a :class:`Hypergraph` module-by-module and net-by-net.

    Modules may be referred to by arbitrary hashable names; indices are
    assigned in first-registration order.  Nets whose pins collapse to a
    single module are rejected by default (``skip_degenerate_nets=True``
    silently drops them instead, which parsers of real netlists often
    want for single-pin nets).
    """

    def __init__(self, name: str = "", skip_degenerate_nets: bool = False):
        self.name = name
        self._skip_degenerate = skip_degenerate_nets
        self._index: Dict[object, int] = {}
        self._areas: List[float] = []
        self._nets: List[List[int]] = []
        self._net_weights: List[int] = []
        self._dropped_nets = 0

    # ------------------------------------------------------------------

    def add_module(self, name: object, area: float = 1.0) -> int:
        """Register module ``name`` and return its index.

        Re-registering an existing name returns the existing index; the
        area must then match (a mismatch is an error, not an update).
        """
        if name in self._index:
            idx = self._index[name]
            if self._areas[idx] != float(area):
                raise HypergraphError(
                    f"module {name!r} re-registered with area {area}, "
                    f"already has {self._areas[idx]}")
            return idx
        if area <= 0:
            raise HypergraphError(
                f"module {name!r} has non-positive area {area}")
        idx = len(self._areas)
        self._index[name] = idx
        self._areas.append(float(area))
        return idx

    def module_index(self, name: object) -> int:
        """Index of an already-registered module."""
        try:
            return self._index[name]
        except KeyError:
            raise HypergraphError(f"unknown module {name!r}") from None

    def add_net(self, pin_names: Iterable[object], weight: int = 1,
                auto_add: bool = True) -> Optional[int]:
        """Add a net over the named pins; returns the net index.

        Unknown names are registered with unit area when ``auto_add``.
        Returns ``None`` when a degenerate net was skipped.
        """
        pins: List[int] = []
        seen = set()
        for pname in pin_names:
            if auto_add:
                idx = self.add_module(pname) if pname not in self._index \
                    else self._index[pname]
            else:
                idx = self.module_index(pname)
            if idx not in seen:
                seen.add(idx)
                pins.append(idx)
        if len(pins) < 2:
            if self._skip_degenerate:
                self._dropped_nets += 1
                return None
            raise HypergraphError(
                f"net over {list(pin_names)!r} spans fewer than two "
                "distinct modules")
        if weight <= 0:
            raise HypergraphError(f"net weight must be positive, got {weight}")
        self._nets.append(pins)
        self._net_weights.append(int(weight))
        return len(self._nets) - 1

    # ------------------------------------------------------------------

    @property
    def num_modules(self) -> int:
        return len(self._areas)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    @property
    def dropped_nets(self) -> int:
        """Number of degenerate nets silently skipped."""
        return self._dropped_nets

    def module_names(self) -> List[object]:
        """Module names in index order."""
        names: List[object] = [None] * len(self._areas)
        for name, idx in self._index.items():
            names[idx] = name
        return names

    def build(self) -> Hypergraph:
        """Emit the immutable hypergraph."""
        return Hypergraph(self._nets,
                          num_modules=len(self._areas),
                          areas=self._areas,
                          net_weights=self._net_weights,
                          name=self.name)
