"""The paper's benchmark suite (Table I), as synthetic stand-ins.

Table I of the paper lists 23 benchmark circuits from the CAD
Benchmarking Laboratory with their module/net/pin counts.  Those
netlists are not redistributable here, so :func:`load_circuit` returns a
:func:`~repro.hypergraph.generators.hierarchical_circuit` whose
module and net counts match Table I (optionally scaled down), and whose
mean net size matches the circuit's pins/nets ratio.  See DESIGN.md for
why this substitution preserves the paper's qualitative results.

Real benchmark files, if available locally in hMETIS format, can be
loaded through :func:`repro.hypergraph.io.read_hmetis` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import HypergraphError
from ..rng import SeedLike, make_rng, stable_seed
from .generators import hierarchical_circuit
from .hypergraph import Hypergraph

__all__ = [
    "BenchmarkSpec",
    "TABLE_I",
    "benchmark_names",
    "benchmark_spec",
    "load_circuit",
    "load_suite",
    "mini_suite_names",
    "MINI_SCALE",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Size characteristics of one Table I circuit."""

    name: str
    modules: int
    nets: int
    pins: int

    @property
    def mean_net_size(self) -> float:
        """Average pins per net, the generator's calibration target."""
        return self.pins / self.nets


#: Table I of the paper, verbatim.
TABLE_I: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("balu", 801, 735, 2697),
    BenchmarkSpec("bm1", 882, 903, 2910),
    BenchmarkSpec("primary1", 833, 902, 2908),
    BenchmarkSpec("test04", 1515, 1658, 5975),
    BenchmarkSpec("test03", 1607, 1618, 5807),
    BenchmarkSpec("test02", 1663, 1720, 6134),
    BenchmarkSpec("test06", 1752, 1541, 6638),
    BenchmarkSpec("struct", 1952, 1920, 5471),
    BenchmarkSpec("test05", 2595, 2750, 10076),
    BenchmarkSpec("19ks", 2844, 3282, 10547),
    BenchmarkSpec("primary2", 3014, 3029, 11219),
    BenchmarkSpec("s9234", 5866, 5844, 14065),
    BenchmarkSpec("biomed", 6514, 5742, 21040),
    BenchmarkSpec("s13207", 8772, 8651, 20606),
    BenchmarkSpec("s15850", 10470, 10383, 24712),
    BenchmarkSpec("industry2", 12637, 13419, 48404),
    BenchmarkSpec("industry3", 15406, 21923, 65792),
    BenchmarkSpec("s35932", 18148, 17828, 48145),
    BenchmarkSpec("s38584", 20995, 20717, 55203),
    BenchmarkSpec("avqsmall", 21918, 22124, 76231),
    BenchmarkSpec("s38417", 23849, 23843, 57613),
    BenchmarkSpec("avqlarge", 25178, 25384, 82751),
    BenchmarkSpec("golem3", 103048, 144949, 338419),
)

_BY_NAME: Dict[str, BenchmarkSpec] = {s.name: s for s in TABLE_I}

#: Default scale for the "mini" suite used by tests and benchmarks: the
#: full-size pure-Python experiments from the paper (100 runs on up to
#: 103k modules) would take days, so CI-speed runs use circuits ~20x
#: smaller, which preserves every qualitative comparison.
MINI_SCALE = 0.05

#: Subset of circuits used in the quick benchmark tables (spanning the
#: small, medium, and large thirds of Table I).
_MINI_NAMES = ("balu", "primary1", "struct", "primary2", "s9234",
               "biomed", "avqsmall", "golem3")


def benchmark_names() -> List[str]:
    """Names of all 23 Table I circuits, in the paper's order."""
    return [s.name for s in TABLE_I]


def mini_suite_names() -> List[str]:
    """Names of the circuits included in the fast benchmark suite."""
    return list(_MINI_NAMES)


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Table I row for ``name``."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise HypergraphError(
            f"unknown benchmark {name!r}; known: "
            f"{', '.join(_BY_NAME)}") from None


def load_circuit(name: str, scale: float = 1.0,
                 seed: SeedLike = 0) -> Hypergraph:
    """Synthetic stand-in for Table I circuit ``name``.

    ``scale`` multiplies the module and net counts (pins scale
    implicitly through the preserved mean net size).  The generator seed
    is derived from both the circuit name and ``seed`` so different
    circuits are independent but each (name, seed, scale) is
    reproducible.
    """
    spec = benchmark_spec(name)
    if scale <= 0:
        raise HypergraphError(f"scale must be positive, got {scale}")
    modules = max(16, round(spec.modules * scale))
    nets = max(8, round(spec.nets * scale))
    rng = make_rng(seed)
    circuit_seed = stable_seed(name, rng.randrange(2**61))
    return hierarchical_circuit(
        num_modules=modules,
        num_nets=nets,
        mean_net_size=spec.mean_net_size,
        seed=circuit_seed,
        name=name,
    )


def load_suite(names: Optional[List[str]] = None, scale: float = MINI_SCALE,
               seed: SeedLike = 0) -> List[Hypergraph]:
    """Load several suite circuits at a common scale."""
    if names is None:
        names = mini_suite_names()
    return [load_circuit(n, scale=scale, seed=seed) for n in names]
