"""Descriptive statistics over netlist hypergraphs.

Used by the benchmark harness to print Table I-style characteristics and
by the generators' calibration tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .hypergraph import Hypergraph

__all__ = ["HypergraphStats", "compute_stats", "net_size_histogram",
           "degree_histogram"]


@dataclass(frozen=True)
class HypergraphStats:
    """Summary characteristics of one netlist (Table I columns + extras)."""

    name: str
    modules: int
    nets: int
    pins: int
    mean_net_size: float
    max_net_size: int
    mean_degree: float
    max_degree: int
    total_area: float
    max_area: float

    def as_row(self) -> Dict[str, object]:
        """Dictionary form used by the table formatter."""
        return {
            "Test Case": self.name,
            "# Modules": self.modules,
            "# Nets": self.nets,
            "# Pins": self.pins,
        }


def compute_stats(hg: Hypergraph) -> HypergraphStats:
    """Compute :class:`HypergraphStats` for ``hg``."""
    net_sizes = [hg.net_size(e) for e in hg.all_nets()]
    degrees = [hg.degree(v) for v in hg.modules()]
    return HypergraphStats(
        name=hg.name,
        modules=hg.num_modules,
        nets=hg.num_nets,
        pins=hg.num_pins,
        mean_net_size=(sum(net_sizes) / len(net_sizes)) if net_sizes else 0.0,
        max_net_size=max(net_sizes, default=0),
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        max_degree=max(degrees, default=0),
        total_area=hg.total_area,
        max_area=hg.max_area,
    )


def net_size_histogram(hg: Hypergraph) -> Dict[int, int]:
    """Map net size -> number of nets of that size."""
    return dict(Counter(hg.net_size(e) for e in hg.all_nets()))


def degree_histogram(hg: Hypergraph) -> Dict[int, int]:
    """Map module degree -> number of modules of that degree."""
    return dict(Counter(hg.degree(v) for v in hg.modules()))
