"""Flat-array (CSR) incidence layer for the hot kernels.

Engineering-focused multilevel partitioners (KaHIP, KaHyPar) get their
speed from compressed sparse row adjacency: two index arrays and two
flat pin arrays replace nested containers, so whole-netlist sweeps
touch contiguous storage and random accesses are plain index
operations.  :class:`CSRIncidence` materialises that layout once per
:class:`~repro.hypergraph.Hypergraph` (built lazily on first access to
``Hypergraph.csr``, then cached for the lifetime of the immutable
netlist):

* ``xpins`` / ``pins_flat`` — net ``e``'s pins are
  ``pins_flat[xpins[e]:xpins[e+1]]``, in the hypergraph's pin order.
* ``xnets`` / ``nets_flat`` — module ``v``'s incident nets are
  ``nets_flat[xnets[v]:xnets[v+1]]``, in the hypergraph's net order.
* ``net_weights`` / ``net_sizes`` (``array('i')``) and ``areas``
  (``array('d')``) — per-net and per-module scalars.

The compact arrays are the canonical export layout (and the natural
ABI for future native kernels); they are materialised lazily on first
access, since the pure-Python kernels never read them and a multilevel
run builds one view per hierarchy level.  Because CPython re-boxes
every read
from an ``array`` while list indexing returns existing objects
(measured ~1.6x faster; see DESIGN.md), the view additionally exposes
*kernel twins* — ``weights_list``, ``sizes_list``, ``areas_list`` and
the shared per-object tuple views ``net_pins`` / ``module_nets`` —
which the pure-Python kernels bind locally.  Both families describe
the same incidence; ``tests/test_kernels.py`` asserts they reconstruct
``pins(e)``/``nets(v)`` exactly.

The view also hosts the per-netlist caches the refinement engines
share: the active-net list for a given net-size threshold and the
maximum weighted degree over that active set (the FM gain bound).
Both are pure functions of the immutable hypergraph, so caching them
per threshold is safe and makes repeated FM calls on one level (CLIP
restarts, multi-start portfolios reusing a hierarchy) stop
recomputing O(pins) scans.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

__all__ = ["CSRIncidence"]


class CSRIncidence:
    """Read-only flat incidence view over one immutable hypergraph."""

    __slots__ = ("_hg", "num_modules", "num_nets", "num_pins",
                 "_xpins", "_pins_flat", "_xnets", "_nets_flat",
                 "_net_weights_arr", "_net_sizes_arr", "_areas_arr",
                 "_net_pins_t", "_module_nets_t", "_sizes_l",
                 "weights_list", "areas_list",
                 "_active_cache", "_maxdeg_cache", "_all_nets",
                 "_incidence_cache", "_np_view")

    def __init__(self, hg) -> None:
        self._hg = hg
        self.num_modules = hg.num_modules
        self.num_nets = hg.num_nets
        self.num_pins = hg.num_pins

        # Kernel twins share the hypergraph's own (immutable) lists and
        # tuples — no copy, and list indexing returns existing objects.
        # Flat-built netlists (the numpy-mode coarsening path) defer
        # the tuple twins: they materialise through the hypergraph's
        # lazy properties only if a scalar kernel actually asks.
        self.weights_list = hg._net_weights
        self.areas_list = hg._areas
        if hg._net_pins_s is not None:
            self._net_pins_t = hg._net_pins_s
            self._module_nets_t = hg._module_nets
            self._sizes_l = [len(p) for p in hg._net_pins_s]
        else:
            self._net_pins_t = None
            self._module_nets_t = None
            self._sizes_l = None

        # The compact array exports are built lazily: the pure-Python
        # kernels never touch them, so eager construction would charge
        # every hierarchy level for a layout only exporters use.
        self._xpins: Optional[array] = None
        self._pins_flat: Optional[array] = None
        self._xnets: Optional[array] = None
        self._nets_flat: Optional[array] = None
        self._net_weights_arr: Optional[array] = None
        self._net_sizes_arr: Optional[array] = None
        self._areas_arr: Optional[array] = None

        self._active_cache: Dict[Optional[int], Tuple[int, ...]] = {}
        self._maxdeg_cache: Dict[Optional[int], int] = {}
        self._all_nets: Optional[Tuple[int, ...]] = None
        self._incidence_cache: Dict[Optional[int], list] = {}
        self._np_view = None

    # ------------------------------------------------------------------
    # Kernel twins (lazy for flat-built netlists).
    # ------------------------------------------------------------------

    @property
    def net_pins(self) -> list:
        """Per-net pin tuples (the scalar kernels' pin layout)."""
        pins = self._net_pins_t
        if pins is None:
            pins = self._hg._net_pins
            self._net_pins_t = pins
        return pins

    @property
    def module_nets(self) -> list:
        """Per-module incident-net tuples."""
        nets = self._module_nets_t
        if nets is None:
            nets = self._hg._module_nets
            self._module_nets_t = nets
        return nets

    @property
    def sizes_list(self) -> list:
        """Per-net pin counts as a plain list."""
        sizes = self._sizes_l
        if sizes is None:
            flat = self._hg._flat
            if flat is not None:
                xpins = flat[0]
                sizes = (xpins[1:] - xpins[:-1]).tolist()
            else:
                sizes = [len(p) for p in self.net_pins]
            self._sizes_l = sizes
        return sizes

    # ------------------------------------------------------------------
    # Compact array exports (lazy).
    # ------------------------------------------------------------------

    def _build_pin_arrays(self) -> None:
        xpins = array("i", [0])
        pins_flat = array("i")
        for pins in self.net_pins:
            pins_flat.extend(pins)
            xpins.append(len(pins_flat))
        self._xpins = xpins
        self._pins_flat = pins_flat

    def _build_net_arrays(self) -> None:
        xnets = array("i", [0])
        nets_flat = array("i")
        for nets in self.module_nets:
            nets_flat.extend(nets)
            xnets.append(len(nets_flat))
        self._xnets = xnets
        self._nets_flat = nets_flat

    @property
    def xpins(self) -> array:
        """Net index array: net ``e`` spans ``xpins[e]:xpins[e+1]``."""
        if self._xpins is None:
            self._build_pin_arrays()
        return self._xpins

    @property
    def pins_flat(self) -> array:
        """Flat pin array, indexed through :attr:`xpins`."""
        if self._pins_flat is None:
            self._build_pin_arrays()
        return self._pins_flat

    @property
    def xnets(self) -> array:
        """Module index array: ``v`` spans ``xnets[v]:xnets[v+1]``."""
        if self._xnets is None:
            self._build_net_arrays()
        return self._xnets

    @property
    def nets_flat(self) -> array:
        """Flat incident-net array, indexed through :attr:`xnets`."""
        if self._nets_flat is None:
            self._build_net_arrays()
        return self._nets_flat

    @property
    def net_weights(self) -> array:
        """Per-net weights as a compact ``array('i')``."""
        if self._net_weights_arr is None:
            self._net_weights_arr = array("i", self.weights_list)
        return self._net_weights_arr

    @property
    def net_sizes(self) -> array:
        """Per-net pin counts as a compact ``array('i')``."""
        if self._net_sizes_arr is None:
            self._net_sizes_arr = array("i", self.sizes_list)
        return self._net_sizes_arr

    @property
    def areas(self) -> array:
        """Per-module areas as a compact ``array('d')``."""
        if self._areas_arr is None:
            self._areas_arr = array("d", self.areas_list)
        return self._areas_arr

    @property
    def np(self):
        """NumPy export of this view (lazy, cached; see ``npview``)."""
        view = self._np_view
        if view is None:
            from .npview import NumpyIncidence
            flat = self._hg._flat
            if flat is not None:
                view = NumpyIncidence._from_flat(self, flat[0], flat[1])
            else:
                view = NumpyIncidence(self)
            self._np_view = view
        return view

    # ------------------------------------------------------------------
    # Reconstruction helpers (the equivalence contract, used by tests).
    # ------------------------------------------------------------------

    def pins(self, net: int) -> Tuple[int, ...]:
        """``pins(net)`` rebuilt from the flat arrays."""
        return tuple(self.pins_flat[self.xpins[net]:self.xpins[net + 1]])

    def nets(self, module: int) -> Tuple[int, ...]:
        """``nets(module)`` rebuilt from the flat arrays."""
        return tuple(
            self.nets_flat[self.xnets[module]:self.xnets[module + 1]])

    # ------------------------------------------------------------------
    # Shared per-netlist caches.
    # ------------------------------------------------------------------

    def all_nets(self) -> Tuple[int, ...]:
        """Cached ``(0, 1, ..., num_nets - 1)`` tuple."""
        nets = self._all_nets
        if nets is None:
            nets = tuple(range(self.num_nets))
            self._all_nets = nets
        return nets

    def active_nets(self, max_net_size: Optional[int]) -> Tuple[int, ...]:
        """Nets no larger than ``max_net_size`` (all nets for ``None``).

        This is the FM engines' active set (nets above the threshold
        are excluded from refinement, Section III-B); the tuple is
        cached per threshold and shared by every engine call.
        """
        cached = self._active_cache.get(max_net_size)
        if cached is None:
            if max_net_size is None:
                cached = self.all_nets()
            else:
                sizes = self.sizes_list
                cached = tuple(e for e in range(self.num_nets)
                               if sizes[e] <= max_net_size)
            self._active_cache[max_net_size] = cached
        return cached

    def active_incidence(self, max_net_size: Optional[int]) -> list:
        """Per-module incident nets restricted to the active set.

        When every net is active (the common case — the paper's 200-pin
        threshold rarely excludes anything on these netlists) this is
        ``module_nets`` itself, so the hot loops iterate the filtered
        incidence directly and never test an ``active[e]`` flag per
        visit.  Cached per threshold like :meth:`active_nets`.
        """
        cached = self._incidence_cache.get(max_net_size)
        if cached is None:
            active = self.active_nets(max_net_size)
            if len(active) == self.num_nets:
                cached = self.module_nets
            else:
                flags = [False] * self.num_nets
                for e in active:
                    flags[e] = True
                cached = [tuple(e for e in nets if flags[e])
                          for nets in self.module_nets]
            self._incidence_cache[max_net_size] = cached
        return cached

    def max_weighted_degree(self, max_net_size: Optional[int] = None) -> int:
        """Largest per-module sum of active-net weights (the gain bound).

        Cached per threshold: repeated FM calls on the same netlist
        (CLIP restarts, portfolio starts over a reused hierarchy) pay
        the O(pins) scan once.
        """
        cached = self._maxdeg_cache.get(max_net_size)
        if cached is None:
            weights = self.weights_list
            best = 0
            if max_net_size is None:
                for nets in self.module_nets:
                    d = 0
                    for e in nets:
                        d += weights[e]
                    if d > best:
                        best = d
            else:
                sizes = self.sizes_list
                for nets in self.module_nets:
                    d = 0
                    for e in nets:
                        if sizes[e] <= max_net_size:
                            d += weights[e]
                    if d > best:
                        best = d
            cached = best
            self._maxdeg_cache[max_net_size] = cached
        return cached

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRIncidence(modules={self.num_modules} "
                f"nets={self.num_nets} pins={self.num_pins})")
