"""NumPy export of the flat CSR incidence layer.

:class:`NumpyIncidence` materialises one :class:`~repro.hypergraph.
csr.CSRIncidence` as ndarrays (built straight from the kernel twins —
forcing the compact ``array`` exports would cost more than the whole
conversion) plus the handful of derived arrays the vectorized kernels
share:

* ``pins_flat`` / ``xpins`` — net ``e``'s pins are
  ``pins_flat[xpins[e]:xpins[e+1]]`` (hypergraph pin order).
* ``net_ids`` — per-pin net id, i.e. ``repeat(arange(m), net_sizes)``;
  the companion column that turns per-pin sweeps into ``bincount`` /
  ``add.at`` reductions.
* ``nets_flat`` / ``xnets`` — module ``v``'s incident nets.
* ``net_weights`` / ``net_sizes`` (int64) and ``areas`` (float64).

The view is built lazily on first access to ``CSRIncidence.np`` and
cached for the netlist's lifetime, like every other per-netlist cache.
Per-threshold products (the active-net mask and the *effective weight*
vector — net weights with inactive nets zeroed, so kernels never test
an ``active[e]`` flag) are cached per ``max_net_size`` exactly like
``CSRIncidence.active_nets``.

Arithmetic contract (DESIGN.md §13): the kernels implemented here are
pure integer counting, so their results are bit-identical to the
scalar modes regardless of reduction order.  Float accumulations that
must match the scalar modes bit-for-bit (matching scores, cluster
areas) are *not* hosted here — they live with their call sites and use
``np.add.at``/``np.bincount``, whose element-order C loops reproduce
the reference accumulation order (``np.sum``/``reduceat`` pairwise
summation would not).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["NumpyIncidence"]


class NumpyIncidence:
    """Read-only ndarray incidence view over one immutable hypergraph."""

    __slots__ = ("num_modules", "num_nets", "num_pins",
                 "xpins", "pins_flat", "xnets", "nets_flat",
                 "net_ids", "net_weights", "net_sizes", "areas",
                 "_mask_cache", "_weff_cache", "_pinw_cache",
                 "_weffl_cache", "_xnets_l", "_nets_flat_l")

    def __init__(self, csr) -> None:
        from itertools import chain

        self.num_modules = csr.num_modules
        self.num_nets = csr.num_nets
        self.num_pins = csr.num_pins

        # Built from the kernel twins, NOT the compact ``array``
        # exports: forcing those would run the per-net Python extend
        # loops, which cost more than this whole constructor.
        self.net_weights = np.asarray(csr.weights_list, dtype=np.int64)
        self.net_sizes = np.asarray(csr.sizes_list, dtype=np.int64)
        self.areas = np.asarray(csr.areas_list, dtype=np.float64)
        self.net_ids = np.repeat(
            np.arange(self.num_nets, dtype=np.intc), self.net_sizes)
        self.pins_flat = np.fromiter(
            chain.from_iterable(csr.net_pins), dtype=np.intc,
            count=self.num_pins)
        self.xpins = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(self.net_sizes)))
        self._build_derived()

    @classmethod
    def _from_flat(cls, csr, xpins: np.ndarray,
                   pins_flat: np.ndarray) -> "NumpyIncidence":
        """Build from a flat-constructed hypergraph's own pin arrays.

        The numpy-mode coarsening path (``induce``) emits coarse
        netlists directly as ``(xpins, pins_flat)`` ndarrays; reusing
        them here skips the tuple twins entirely, so a multilevel run
        under the numpy kernels never materialises per-net tuples on
        the large levels.
        """
        self = object.__new__(cls)
        self.num_modules = csr.num_modules
        self.num_nets = csr.num_nets
        self.num_pins = csr.num_pins
        self.net_weights = np.asarray(csr.weights_list, dtype=np.int64)
        self.areas = np.asarray(csr.areas_list, dtype=np.float64)
        self.xpins = np.asarray(xpins, dtype=np.int64)
        self.pins_flat = np.asarray(pins_flat, dtype=np.intc)
        self.net_sizes = self.xpins[1:] - self.xpins[:-1]
        self.net_ids = np.repeat(
            np.arange(self.num_nets, dtype=np.intc), self.net_sizes)
        self._build_derived()
        return self

    def _build_derived(self) -> None:
        # Per-module incident nets: sorting (pin, net) pairs by module
        # then net reproduces ``module_nets`` exactly, because each
        # module's net list is ascending by construction.
        order = np.lexsort((self.net_ids, self.pins_flat))
        self.nets_flat = self.net_ids[order]
        degrees = np.bincount(self.pins_flat, minlength=self.num_modules)
        self.xnets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(degrees)))

        self._mask_cache: Dict[Optional[int], np.ndarray] = {}
        self._weff_cache: Dict[Optional[int], np.ndarray] = {}
        self._pinw_cache: Dict[Optional[int], np.ndarray] = {}
        self._weffl_cache: Dict[Optional[int], list] = {}
        self._xnets_l: Optional[list] = None
        self._nets_flat_l: Optional[list] = None

    # ------------------------------------------------------------------
    # Per-threshold caches (the FM active-net contract, Section III-B).
    # ------------------------------------------------------------------

    def active_mask(self, max_net_size: Optional[int]) -> np.ndarray:
        """Boolean per-net mask: net is refined (size ≤ threshold)."""
        cached = self._mask_cache.get(max_net_size)
        if cached is None:
            if max_net_size is None:
                cached = np.ones(self.num_nets, dtype=bool)
            else:
                cached = self.net_sizes <= max_net_size
            self._mask_cache[max_net_size] = cached
        return cached

    def effective_weights(self, max_net_size: Optional[int]) -> np.ndarray:
        """Net weights with inactive nets zeroed (int64).

        Zero weight and "excluded from refinement" are arithmetically
        interchangeable everywhere gains and internal cuts are summed,
        so kernels multiply by this vector instead of masking.
        """
        cached = self._weff_cache.get(max_net_size)
        if cached is None:
            if max_net_size is None:
                cached = self.net_weights
            else:
                cached = np.where(self.active_mask(max_net_size),
                                  self.net_weights, 0)
            self._weff_cache[max_net_size] = cached
        return cached

    def pin_weights(self, max_net_size: Optional[int]) -> np.ndarray:
        """Per-pin effective weight of the pin's net (int64)."""
        cached = self._pinw_cache.get(max_net_size)
        if cached is None:
            cached = self.effective_weights(max_net_size)[self.net_ids]
            self._pinw_cache[max_net_size] = cached
        return cached

    # ------------------------------------------------------------------
    # Plain-list exports for the sequential polish walk (npengine):
    # converted once per netlist, then every per-move access is a list
    # index instead of a boxed ndarray scalar read (~5x faster).
    # ------------------------------------------------------------------

    def eff_weights_list(self, max_net_size: Optional[int]) -> list:
        """:meth:`effective_weights` as a cached plain list."""
        cached = self._weffl_cache.get(max_net_size)
        if cached is None:
            cached = self.effective_weights(max_net_size).tolist()
            self._weffl_cache[max_net_size] = cached
        return cached

    @property
    def xnets_list(self) -> list:
        """:attr:`xnets` as a cached plain list."""
        cached = self._xnets_l
        if cached is None:
            cached = self.xnets.tolist()
            self._xnets_l = cached
        return cached

    @property
    def nets_flat_list(self) -> list:
        """:attr:`nets_flat` as a cached plain list."""
        cached = self._nets_flat_l
        if cached is None:
            cached = self.nets_flat.tolist()
            self._nets_flat_l = cached
        return cached

    # ------------------------------------------------------------------
    # Vectorized kernels (k == 2).  Pure integer counting: bit-identical
    # to the scalar modes by commutativity of integer addition.
    # ------------------------------------------------------------------

    def counts2(self, part: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pins-on-side tallies ``(c0, c1)`` over *all* nets (int64).

        ``part`` is the per-module side vector (0/1).  Callers that
        honour an active set mask at use time (via
        :meth:`effective_weights`), not here — the full tallies are
        what :class:`~repro.partition.PartitionState` zero-fills for
        inactive nets itself.
        """
        on_side = part[self.pins_flat] != 0
        c1 = np.bincount(self.net_ids[on_side], minlength=self.num_nets)
        c1 = c1.astype(np.int64, copy=False)
        return self.net_sizes - c1, c1

    def initial_gains2(self, part: np.ndarray, c0: np.ndarray,
                       c1: np.ndarray, pin_weights: np.ndarray,
                       ) -> np.ndarray:
        """Per-module FM gain vector for the current assignment (int64).

        Net-centric formulation over pins: a pin on side ``s``
        contributes ``+w`` when its net has exactly one pin on ``s``
        (moving it uncuts the net) and ``-w`` when the net has no pin
        on the other side (moving it cuts the net).  Elementwise over
        the pin axis, then an integer ``bincount`` reduction per
        module — same integer sums as the scalar kernels.

        ``pin_weights`` is the per-pin effective weight vector (usually
        :meth:`pin_weights`; a caller with a non-threshold active set
        supplies its own zero-masked vector).
        """
        pf = self.pins_flat
        e = self.net_ids
        side = part[pf] != 0
        csrc = np.where(side, c1[e], c0[e])
        cdst = np.where(side, c0[e], c1[e])
        contrib = pin_weights * (
            (csrc == 1).astype(np.int64) - (cdst == 0).astype(np.int64))
        gains = np.bincount(pf, weights=contrib, minlength=self.num_modules)
        return gains.astype(np.int64)

    def cut2(self, part: np.ndarray) -> int:
        """Total weight of nets spanning both sides (exact int)."""
        c0, c1 = self.counts2(part)
        return int(self.net_weights[(c0 > 0) & (c1 > 0)].sum())

    # ------------------------------------------------------------------
    # Batch incidence gather (the npengine's apply step).
    # ------------------------------------------------------------------

    def incident_nets(self, modules: np.ndarray,
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated incident-net ids of ``modules``.

        Returns ``(nets, lengths)`` where ``nets`` is the concatenation
        of ``nets_flat[xnets[v]:xnets[v+1]]`` for each ``v`` in order
        and ``lengths`` the per-module segment lengths, so callers can
        ``np.repeat`` per-module deltas across their segments.
        """
        xnets = self.xnets
        starts = xnets[modules]
        lengths = xnets[modules + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return (np.empty(0, dtype=self.nets_flat.dtype),
                    lengths)
        offsets = np.cumsum(lengths) - lengths
        idx = (np.arange(total, dtype=np.int64)
               + np.repeat(starts - offsets, lengths))
        return self.nets_flat[idx], lengths

    def net_pins_of(self, nets: np.ndarray,
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated pins of ``nets``; same layout as
        :meth:`incident_nets`."""
        starts = self.xpins[nets]
        lengths = self.net_sizes[nets]
        total = int(lengths.sum())
        if total == 0:
            return (np.empty(0, dtype=self.pins_flat.dtype),
                    lengths)
        offsets = np.cumsum(lengths) - lengths
        idx = (np.arange(total, dtype=np.int64)
               + np.repeat(starts - offsets, lengths))
        return self.pins_flat[idx], lengths

    def gains_for(self, modules: np.ndarray, part: np.ndarray,
                  c0: np.ndarray, c1: np.ndarray,
                  w_eff: np.ndarray) -> np.ndarray:
        """FM gains of a subset of ``modules`` (int64).

        Same arithmetic as :meth:`initial_gains2`, but summed per
        gathered module segment (``reduceat`` on integers — exact), so
        refreshing the few modules a batched commit touched costs
        O(their pins) instead of O(all pins).
        """
        if modules.size == 0:
            return np.empty(0, dtype=np.int64)
        nets, lens = self.incident_nets(modules)
        side = np.repeat(part[modules] != 0, lens)
        csrc = np.where(side, c1[nets], c0[nets])
        cdst = np.where(side, c0[nets], c1[nets])
        contrib = w_eff[nets] * (
            (csrc == 1).astype(np.int64) - (cdst == 0).astype(np.int64))
        offs = np.cumsum(lens) - lens
        out = np.add.reduceat(contrib, offs) if contrib.size else offs
        return np.where(lens > 0, out, 0)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"NumpyIncidence(modules={self.num_modules} "
                f"nets={self.num_nets} pins={self.num_pins})")
