"""Netlist file I/O.

Three formats are supported:

* **hMETIS** (``.hgr``): the de-facto exchange format for hypergraph
  partitioning benchmarks.  First line is ``<#nets> <#modules> [fmt]``
  where ``fmt`` is ``1`` (weighted nets), ``10`` (weighted modules) or
  ``11`` (both); each net line lists 1-based module indices, prefixed by
  the net weight when nets are weighted; module weight lines follow when
  modules are weighted.  Comment lines start with ``%``.
* **ACM/SIGDA netD** (``.netD`` / ``.net``): the format the paper's
  benchmark circuits were distributed in by the CAD Benchmarking
  Laboratory.  Five header lines (a literal ``0``, then pin, net,
  module, and pad-offset counts) are followed by one line per pin:
  ``<name> <s|l> [dir]`` where ``s`` starts a new net and ``l``
  continues the current one; cell names start with ``a``, pad names
  with ``p``.  A companion ``.are`` file lists ``<name> <area>`` pairs.
* **JSON**: a simple self-describing container used for round-tripping
  within this library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ParseError, ReproError
from .builder import HypergraphBuilder
from .hypergraph import Hypergraph

__all__ = ["read_hmetis", "write_hmetis", "read_netd", "write_netd",
           "read_are", "write_are", "read_json", "write_json"]

PathLike = Union[str, Path]


def _tokenized_lines(text: str):
    """Yield (line_number, tokens) for non-comment, non-blank lines."""
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        yield lineno, line.split()


def read_hmetis(path: PathLike, name: str = "") -> Hypergraph:
    """Read a hypergraph in hMETIS format."""
    text = Path(path).read_text()
    lines = _tokenized_lines(text)

    try:
        header_lineno, header = next(lines)
    except StopIteration:
        raise ParseError("empty hMETIS file") from None
    if len(header) not in (2, 3):
        raise ParseError("header must be '<#nets> <#modules> [fmt]'",
                         header_lineno)
    try:
        num_nets, num_modules = int(header[0]), int(header[1])
        fmt = int(header[2]) if len(header) == 3 else 0
    except ValueError:
        raise ParseError("non-integer header field", header_lineno) from None
    if fmt not in (0, 1, 10, 11):
        raise ParseError(f"unsupported fmt code {fmt}", header_lineno)
    weighted_nets = fmt in (1, 11)
    weighted_modules = fmt in (10, 11)

    nets: List[List[int]] = []
    net_weights: List[int] = []
    for _ in range(num_nets):
        try:
            lineno, tokens = next(lines)
        except StopIteration:
            raise ParseError(
                f"expected {num_nets} net lines, found {len(nets)}") from None
        try:
            values = [int(t) for t in tokens]
        except ValueError:
            raise ParseError("non-integer pin", lineno) from None
        if weighted_nets:
            if len(values) < 3:
                raise ParseError("weighted net needs weight + >=2 pins",
                                 lineno)
            net_weights.append(values[0])
            values = values[1:]
        if any(v < 1 or v > num_modules for v in values):
            raise ParseError("pin index out of range", lineno)
        nets.append([v - 1 for v in values])

    areas = None
    if weighted_modules:
        areas = []
        for _ in range(num_modules):
            try:
                lineno, tokens = next(lines)
            except StopIteration:
                raise ParseError(
                    f"expected {num_modules} module weight lines, found "
                    f"{len(areas)}") from None
            try:
                areas.append(float(tokens[0]))
            except ValueError:
                raise ParseError("non-numeric module weight", lineno) \
                    from None

    return Hypergraph(nets, num_modules=num_modules, areas=areas,
                      net_weights=net_weights if weighted_nets else None,
                      name=name or Path(path).stem)


def write_hmetis(hg: Hypergraph, path: PathLike) -> None:
    """Write ``hg`` in hMETIS format (weights emitted only when needed)."""
    weighted_nets = any(hg.net_weight(e) != 1 for e in hg.all_nets())
    weighted_modules = not hg.is_unit_area()
    fmt = (1 if weighted_nets else 0) + (10 if weighted_modules else 0)

    out: List[str] = []
    header = f"{hg.num_nets} {hg.num_modules}"
    if fmt:
        header += f" {fmt}"
    out.append(header)
    for e in hg.all_nets():
        pins = " ".join(str(v + 1) for v in hg.pins(e))
        if weighted_nets:
            out.append(f"{hg.net_weight(e)} {pins}")
        else:
            out.append(pins)
    if weighted_modules:
        for v in hg.modules():
            area = hg.area(v)
            out.append(str(int(area)) if area == int(area) else str(area))
    Path(path).write_text("\n".join(out) + "\n")


def read_are(path: PathLike) -> Dict[str, float]:
    """Read an ACM/SIGDA ``.are`` file: module name -> area."""
    areas: Dict[str, float] = {}
    for lineno, tokens in _tokenized_lines(Path(path).read_text()):
        if len(tokens) != 2:
            raise ParseError("expected '<name> <area>'", lineno)
        try:
            value = float(tokens[1])
        except ValueError:
            raise ParseError("non-numeric area", lineno) from None
        if value <= 0:
            raise ParseError(f"non-positive area {value}", lineno)
        areas[tokens[0]] = value
    return areas


def read_netd(path: PathLike, are_path: Optional[PathLike] = None,
              name: str = "") -> Hypergraph:
    """Read an ACM/SIGDA netD netlist (optionally with module areas).

    Single-pin nets (common in the raw benchmarks) are dropped, as
    every partitioner in the paper's lineage does.  Module areas
    default to 1 unless ``are_path`` provides them, matching the
    paper's unit-area experimental setting.
    """
    lines = list(_tokenized_lines(Path(path).read_text()))
    if len(lines) < 5:
        raise ParseError("netD file needs 5 header lines")
    header_values = []
    for lineno, tokens in lines[:5]:
        try:
            header_values.append(int(tokens[0]))
        except ValueError:
            raise ParseError("non-integer header line", lineno) from None
    _ignored, num_pins, num_nets, num_modules, _pad_offset = header_values

    areas = read_are(are_path) if are_path is not None else {}
    builder = HypergraphBuilder(name=name or Path(path).stem,
                                skip_degenerate_nets=True)

    current: List[str] = []
    pin_count = 0
    for lineno, tokens in lines[5:]:
        if len(tokens) < 2:
            raise ParseError("expected '<name> <s|l> [dir]'", lineno)
        module, marker = tokens[0], tokens[1]
        if marker not in ("s", "l"):
            raise ParseError(f"pin marker must be 's' or 'l', got "
                             f"{marker!r}", lineno)
        builder.add_module(module, area=areas.get(module, 1.0))
        if marker == "s":
            if current:
                builder.add_net(current)
            current = [module]
        else:
            if not current:
                raise ParseError("continuation pin before any net start",
                                 lineno)
            current.append(module)
        pin_count += 1
    if current:
        builder.add_net(current)

    if pin_count != num_pins:
        raise ParseError(
            f"header declares {num_pins} pins, file contains {pin_count}")
    if builder.num_modules > num_modules:
        raise ParseError(
            f"header declares {num_modules} modules, file references "
            f"{builder.num_modules}")
    declared_nets = builder.num_nets + builder.dropped_nets
    if declared_nets != num_nets:
        raise ParseError(
            f"header declares {num_nets} nets, file contains "
            f"{declared_nets}")
    return builder.build()


def write_netd(hg: Hypergraph, path: PathLike,
               are_path: Optional[PathLike] = None) -> None:
    """Write ``hg`` in ACM/SIGDA netD format (cells named ``a<i>``).

    Net weights are not representable in netD; writing a weighted
    netlist raises rather than silently dropping information.  Areas go
    to ``are_path`` when given (they are not representable in the netD
    file itself).
    """
    if any(hg.net_weight(e) != 1 for e in hg.all_nets()):
        raise ParseError(
            "netD cannot represent net weights; use hMETIS or JSON")
    lines = ["0", str(hg.num_pins), str(hg.num_nets),
             str(hg.num_modules), "0"]
    for e in hg.all_nets():
        for i, v in enumerate(hg.pins(e)):
            marker = "s" if i == 0 else "l"
            lines.append(f"a{v} {marker} B")
    Path(path).write_text("\n".join(lines) + "\n")
    if are_path is not None:
        area_lines = []
        for v in hg.modules():
            area = hg.area(v)
            rendered = str(int(area)) if area == int(area) else str(area)
            area_lines.append(f"a{v} {rendered}")
        Path(are_path).write_text("\n".join(area_lines) + "\n")


def write_are(areas: Dict[str, float], path: PathLike) -> None:
    """Write a name -> area mapping in ``.are`` format."""
    lines = []
    for name, area in areas.items():
        rendered = str(int(area)) if area == int(area) else str(area)
        lines.append(f"{name} {rendered}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_json(path: PathLike) -> Hypergraph:
    """Read a hypergraph from this library's JSON container.

    Every malformed-input failure — syntactically invalid JSON, a
    non-object top level, missing keys, or values the
    :class:`Hypergraph` constructor rejects (non-list nets, pins out of
    range, mismatched weight vectors, ...) — surfaces as
    :class:`~repro.errors.ParseError`, with the line number where the
    JSON decoder can provide one, so the CLI's error contract holds
    for this format exactly as it does for hMETIS and netD.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc.msg}",
                         line=exc.lineno) from None
    if not isinstance(data, dict):
        raise ParseError(
            f"top-level JSON value must be an object, got "
            f"{type(data).__name__}")
    for key in ("num_modules", "nets"):
        if key not in data:
            raise ParseError(f"missing key {key!r}")
    try:
        return Hypergraph(data["nets"],
                          num_modules=data["num_modules"],
                          areas=data.get("areas"),
                          net_weights=data.get("net_weights"),
                          name=data.get("name", ""))
    except ParseError:
        raise
    except (ReproError, TypeError, ValueError, KeyError,
            IndexError) as exc:
        raise ParseError(f"malformed netlist JSON: {exc}") from None


def write_json(hg: Hypergraph, path: PathLike) -> None:
    """Write ``hg`` to this library's JSON container."""
    data = {
        "name": hg.name,
        "num_modules": hg.num_modules,
        "nets": [list(hg.pins(e)) for e in hg.all_nets()],
        "areas": hg.areas(),
        "net_weights": hg.net_weights(),
    }
    Path(path).write_text(json.dumps(data))
