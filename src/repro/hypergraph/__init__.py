"""Netlist hypergraph substrate: representation, construction, I/O,
synthetic benchmark generators, and the Table I suite registry."""

from .builder import HypergraphBuilder
from .csr import CSRIncidence
from .generators import (grid_circuit, hierarchical_circuit,
                         random_hypergraph)
from .hypergraph import Hypergraph
from .io import (read_are, read_hmetis, read_json, read_netd,
                 write_are, write_hmetis, write_json, write_netd)
from .stats import (HypergraphStats, compute_stats, degree_histogram,
                    net_size_histogram)
from .suite import (MINI_SCALE, TABLE_I, BenchmarkSpec, benchmark_names,
                    benchmark_spec, load_circuit, load_suite,
                    mini_suite_names)
from .validate import assert_same_structure, check_consistency

__all__ = [
    "Hypergraph",
    "CSRIncidence",
    "HypergraphBuilder",
    "hierarchical_circuit",
    "grid_circuit",
    "random_hypergraph",
    "read_hmetis",
    "write_hmetis",
    "read_json",
    "read_netd",
    "read_are",
    "write_netd",
    "write_are",
    "write_json",
    "HypergraphStats",
    "compute_stats",
    "net_size_histogram",
    "degree_histogram",
    "BenchmarkSpec",
    "TABLE_I",
    "MINI_SCALE",
    "benchmark_names",
    "benchmark_spec",
    "load_circuit",
    "load_suite",
    "mini_suite_names",
    "check_consistency",
    "assert_same_structure",
]
