"""Structural validation and consistency checks for hypergraphs.

:class:`~repro.hypergraph.Hypergraph` already rejects malformed input at
construction; the checks here verify the *internal* cross-references
(pins vs nets directions, cached totals) and are used by the test suite
and by :func:`repro.clustering.induce` in debug mode.
"""

from __future__ import annotations

from typing import List

from ..errors import HypergraphError
from .hypergraph import Hypergraph

__all__ = ["check_consistency", "assert_same_structure"]


def check_consistency(hg: Hypergraph) -> None:
    """Raise :class:`HypergraphError` if ``hg`` violates any invariant."""
    pin_count = 0
    for e in hg.all_nets():
        pins = hg.pins(e)
        if len(set(pins)) != len(pins):
            raise HypergraphError(f"net {e} has duplicate pins")
        if len(pins) < 2:
            raise HypergraphError(f"net {e} has fewer than two pins")
        for v in pins:
            if not 0 <= v < hg.num_modules:
                raise HypergraphError(f"net {e} pin {v} out of range")
            if e not in hg.nets(v):
                raise HypergraphError(
                    f"net {e} lists module {v} but module {v} does not "
                    f"list net {e}")
        pin_count += len(pins)

    for v in hg.modules():
        for e in hg.nets(v):
            if v not in hg.pins(e):
                raise HypergraphError(
                    f"module {v} lists net {e} but net {e} does not "
                    f"contain module {v}")

    if pin_count != hg.num_pins:
        raise HypergraphError(
            f"cached num_pins {hg.num_pins} != actual {pin_count}")
    actual_area = sum(hg.area(v) for v in hg.modules())
    if abs(actual_area - hg.total_area) > 1e-9 * max(1.0, actual_area):
        raise HypergraphError(
            f"cached total_area {hg.total_area} != actual {actual_area}")


def assert_same_structure(a: Hypergraph, b: Hypergraph) -> None:
    """Raise unless ``a`` and ``b`` have identical nets/areas/weights.

    Net order matters (these are netlists, not abstract set systems);
    used by I/O round-trip tests.
    """
    if a.num_modules != b.num_modules:
        raise HypergraphError(
            f"module counts differ: {a.num_modules} vs {b.num_modules}")
    if a.num_nets != b.num_nets:
        raise HypergraphError(
            f"net counts differ: {a.num_nets} vs {b.num_nets}")
    for e in a.all_nets():
        if tuple(a.pins(e)) != tuple(b.pins(e)):
            raise HypergraphError(f"net {e} pins differ")
        if a.net_weight(e) != b.net_weight(e):
            raise HypergraphError(f"net {e} weights differ")
    mismatched: List[int] = [v for v in a.modules()
                             if abs(a.area(v) - b.area(v)) > 1e-12]
    if mismatched:
        raise HypergraphError(f"areas differ at modules {mismatched[:5]}")
