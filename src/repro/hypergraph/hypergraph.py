"""Netlist hypergraph representation.

A netlist hypergraph ``H(V, E)`` has ``n`` modules and a set of nets; a
net is a subset of modules with size greater than one (paper, Section I).
Modules are integers ``0..n-1``.  Each module has an area (default 1, the
paper's unit-area experiments) and each net has an integer weight
(default 1; weights > 1 arise when :func:`repro.clustering.induce`
merges duplicate nets of a coarsened netlist).

The representation is a static bidirectional incidence structure:

* ``pins(e)``   — tuple of modules on net ``e``
* ``nets(v)``   — tuple of nets incident to module ``v``

Both directions are materialised once at construction; the hypergraph is
immutable afterwards, which lets partitioning state share it safely.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import HypergraphError
from .csr import CSRIncidence

__all__ = ["Hypergraph"]


class Hypergraph:
    """An immutable netlist hypergraph.

    Parameters
    ----------
    nets:
        Iterable of nets; each net is an iterable of module indices.
        Every net must contain at least two *distinct* modules.  Duplicate
        pins within a net are collapsed.
    num_modules:
        Number of modules ``n``.  If omitted, inferred as
        ``max(pin) + 1`` over all nets (isolated trailing modules would be
        lost, so pass it explicitly when modules may be isolated).
    areas:
        Per-module areas.  Defaults to unit area for every module.
    net_weights:
        Per-net integer weights.  Defaults to 1 for every net.
    name:
        Optional circuit name used in reports.
    """

    __slots__ = ("name", "_net_pins_s", "_module_nets_s", "_flat",
                 "_areas", "_net_weights", "_num_pins", "_total_area",
                 "_max_area", "_csr")

    def __init__(self,
                 nets: Iterable[Iterable[int]],
                 num_modules: Optional[int] = None,
                 areas: Optional[Sequence[float]] = None,
                 net_weights: Optional[Sequence[int]] = None,
                 name: str = ""):
        net_pins: List[Tuple[int, ...]] = []
        max_seen = -1
        for raw in nets:
            # Collapse duplicate pins while preserving first-seen order so
            # construction is deterministic.
            seen = dict.fromkeys(int(v) for v in raw)
            pins = tuple(seen)
            if len(pins) < 2:
                raise HypergraphError(
                    f"net {len(net_pins)} has {len(pins)} distinct pins; "
                    "a net must span at least two modules")
            for v in pins:
                if v < 0:
                    raise HypergraphError(f"negative module index {v}")
                if v > max_seen:
                    max_seen = v
            net_pins.append(pins)

        if num_modules is None:
            num_modules = max_seen + 1
        elif max_seen >= num_modules:
            raise HypergraphError(
                f"net references module {max_seen} but num_modules is "
                f"{num_modules}")

        if areas is None:
            area_list = [1.0] * num_modules
        else:
            area_list = [float(a) for a in areas]
            if len(area_list) != num_modules:
                raise HypergraphError(
                    f"areas has length {len(area_list)}, expected "
                    f"{num_modules}")
            for i, a in enumerate(area_list):
                if a <= 0:
                    raise HypergraphError(
                        f"module {i} has non-positive area {a}")

        if net_weights is None:
            weight_list = [1] * len(net_pins)
        else:
            weight_list = [int(w) for w in net_weights]
            if len(weight_list) != len(net_pins):
                raise HypergraphError(
                    f"net_weights has length {len(weight_list)}, expected "
                    f"{len(net_pins)}")
            for e, w in enumerate(weight_list):
                if w <= 0:
                    raise HypergraphError(
                        f"net {e} has non-positive weight {w}")

        module_nets: List[List[int]] = [[] for _ in range(num_modules)]
        for e, pins in enumerate(net_pins):
            for v in pins:
                module_nets[v].append(e)

        self.name = name
        self._net_pins_s = net_pins
        self._module_nets_s = [tuple(ns) for ns in module_nets]
        self._flat = None
        self._areas = area_list
        self._net_weights = weight_list
        self._num_pins = sum(len(p) for p in net_pins)
        self._total_area = sum(area_list)
        self._max_area = max(area_list) if area_list else 0.0
        self._csr: Optional[CSRIncidence] = None

    @classmethod
    def _trusted(cls, net_pins: List[Tuple[int, ...]],
                 areas: List[float], net_weights: List[int],
                 name: str = "") -> "Hypergraph":
        """Construct from pre-validated internals, skipping checks.

        Internal fast path for :func:`repro.clustering.induce`, whose
        output satisfies every constructor invariant by construction
        (deduplicated sorted pin tuples, >= 2 pins per net, positive
        areas and weights).  Revalidating each coarse netlist of a
        multilevel hierarchy would otherwise show up in profiles.
        """
        self = cls.__new__(cls)
        module_nets: List[List[int]] = [[] for _ in range(len(areas))]
        for e, pins in enumerate(net_pins):
            for v in pins:
                module_nets[v].append(e)
        self.name = name
        self._net_pins_s = net_pins
        self._module_nets_s = [tuple(ns) for ns in module_nets]
        self._flat = None
        self._areas = areas
        self._net_weights = net_weights
        self._num_pins = sum(len(p) for p in net_pins)
        self._total_area = sum(areas)
        self._max_area = max(areas) if areas else 0.0
        self._csr = None
        return self

    @classmethod
    def _from_flat(cls, xpins, pins_flat,
                   areas: List[float], net_weights: List[int],
                   name: str = "") -> "Hypergraph":
        """Construct from pre-validated flat pin arrays (ndarrays).

        The ``numpy`` kernel path of :func:`repro.clustering.induce`
        produces coarse netlists directly in CSR form (net ``e``'s pins
        are ``pins_flat[xpins[e]:xpins[e+1]]``, sorted and distinct).
        The tuple incidence structures — which only the scalar kernels
        read — are materialised lazily on first access, so a multilevel
        run under the ``numpy`` kernels never pays for building them on
        the large levels.  Same invariants as :meth:`_trusted`.
        """
        self = cls.__new__(cls)
        self.name = name
        self._net_pins_s = None
        self._module_nets_s = None
        self._flat = (xpins, pins_flat)
        self._areas = areas
        self._net_weights = net_weights
        self._num_pins = len(pins_flat)
        self._total_area = sum(areas)
        self._max_area = max(areas) if areas else 0.0
        self._csr = None
        return self

    # ------------------------------------------------------------------
    # Lazy tuple incidence (scalar-kernel layout).
    # ------------------------------------------------------------------

    @property
    def _net_pins(self) -> List[Tuple[int, ...]]:
        """Per-net pin tuples, materialised on demand for flat builds."""
        pins = self._net_pins_s
        if pins is None:
            xpins, pins_flat = self._flat
            xl = xpins.tolist()
            pl = pins_flat.tolist()
            pins = [tuple(pl[a:b]) for a, b in zip(xl, xl[1:])]
            self._net_pins_s = pins
        return pins

    @property
    def _module_nets(self) -> List[Tuple[int, ...]]:
        """Per-module net tuples, materialised on demand for flat builds."""
        nets = self._module_nets_s
        if nets is None:
            module_nets: List[List[int]] = [[] for _ in self._areas]
            for e, pins in enumerate(self._net_pins):
                for v in pins:
                    module_nets[v].append(e)
            nets = [tuple(ns) for ns in module_nets]
            self._module_nets_s = nets
        return nets

    # ------------------------------------------------------------------
    # Size characteristics (Table I columns).
    # ------------------------------------------------------------------

    @property
    def num_modules(self) -> int:
        """Number of modules ``|V|``."""
        return len(self._areas)

    @property
    def num_nets(self) -> int:
        """Number of nets ``|E|``."""
        return len(self._net_weights)

    @property
    def num_pins(self) -> int:
        """Total pin count (sum of net sizes)."""
        return self._num_pins

    @property
    def total_area(self) -> float:
        """``A(V)``: sum of all module areas."""
        return self._total_area

    @property
    def max_area(self) -> float:
        """``A(v*)``: the largest single module area."""
        return self._max_area

    @property
    def total_net_weight(self) -> int:
        """Sum of net weights (equals ``num_nets`` for unweighted input)."""
        return sum(self._net_weights)

    @property
    def csr(self) -> CSRIncidence:
        """The flat-array (CSR) incidence view of this netlist.

        Built on first access and cached — the hypergraph is immutable,
        so the view stays valid for its whole lifetime.  All hot
        kernels (state bookkeeping, FM gain maintenance, matching)
        consume this layer; the tuple accessors below remain the
        stable public API.
        """
        view = self._csr
        if view is None:
            from ..obs import tracer
            tr = tracer()
            t0 = tr.now() if tr.enabled else 0
            view = CSRIncidence(self)
            self._csr = view
            if tr.enabled:
                tr.complete("csr.build", t0, {
                    "modules": view.num_modules, "nets": view.num_nets,
                    "pins": view.num_pins})
        return view

    # ------------------------------------------------------------------
    # Incidence accessors.
    # ------------------------------------------------------------------

    def pins(self, net: int) -> Tuple[int, ...]:
        """Modules on ``net``."""
        return self._net_pins[net]

    def nets(self, module: int) -> Tuple[int, ...]:
        """Nets incident to ``module``."""
        return self._module_nets[module]

    def net_size(self, net: int) -> int:
        """Number of modules on ``net``."""
        return len(self._net_pins[net])

    def net_weight(self, net: int) -> int:
        """Weight of ``net``."""
        return self._net_weights[net]

    def degree(self, module: int) -> int:
        """Number of nets incident to ``module``."""
        return len(self._module_nets[module])

    def area(self, module: int) -> float:
        """Area ``A(module)``."""
        return self._areas[module]

    def areas(self) -> List[float]:
        """Copy of the per-module area vector."""
        return list(self._areas)

    def net_weights(self) -> List[int]:
        """Copy of the per-net weight vector."""
        return list(self._net_weights)

    def area_of(self, modules: Iterable[int]) -> float:
        """``A(S)`` for a subset ``S`` of modules."""
        areas = self._areas
        return sum(areas[v] for v in modules)

    def modules(self) -> range:
        """Iterable over all module indices."""
        return range(self.num_modules)

    def all_nets(self) -> range:
        """Iterable over all net indices."""
        return range(self.num_nets)

    def neighbors(self, module: int) -> List[int]:
        """Distinct modules sharing at least one net with ``module``."""
        seen = {module}
        out: List[int] = []
        for e in self._module_nets[module]:
            for w in self._net_pins[e]:
                if w not in seen:
                    seen.add(w)
                    out.append(w)
        return out

    def is_unit_area(self) -> bool:
        """True when every module has area exactly 1 (paper's default)."""
        return all(a == 1.0 for a in self._areas)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (f"Hypergraph({label} modules={self.num_modules} "
                f"nets={self.num_nets} pins={self.num_pins})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (self._net_pins == other._net_pins
                and self._areas == other._areas
                and self._net_weights == other._net_weights)

    def __hash__(self) -> int:
        return hash((tuple(self._net_pins), tuple(self._areas),
                     tuple(self._net_weights)))
