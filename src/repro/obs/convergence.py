"""Convergence analytics: what the per-pass FM telemetry says.

The tracing layer already records everything the paper's Table VIII
(CPU breakdown per phase) and its convergence discussion need — this
module reduces a trace to those shapes:

* **phase split** — where the traced time went: coarsening, initial
  partitioning, refinement, and everything else, as seconds and
  percentages of the ``ml.bipartition`` total (the Table VIII shape);
* **refinement attribution by level** — for each hierarchy level
  (keyed by module count, aggregated over every ML start in the
  trace): spans, refinement seconds, FM passes, moves, and the min /
  mean cut reached there.  Moves are attributed by interval
  containment — an ``fm.pass`` belongs to the ``ml.refine.level`` (or
  ``ml.initial``) span of the same process whose ``[ts, ts+dur]``
  window contains it;
* **cut vs pass** — how the cut evolves with FM pass number inside a
  refinement call, averaged over all calls: the convergence curve
  (most of the gain lands in the first pass or two; CLIP's whole
  argument).

All counters are pure functions of the move sequence, so the tables
are identical under the reference and CSR kernel modes and stable for
a fixed seed — golden-testable, and safe to diff across commits.

The *decision* recordings of :mod:`repro.obs.recorder` enable a finer
pair of views (``repro report --record``):

* **gain distribution by pass** — a histogram of per-move cut gains
  keyed by pass number, showing the paper's convergence claim at move
  granularity: early passes are dominated by positive gains, later
  passes churn around zero;
* **cut vs move index** — the raw convergence curve: internal cut
  after every decision, downsampled per start.  This is the curve
  ``repro diff-run`` overlays for two recordings.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import Histogram
from .recorder import group_starts, read_record
from .trace import read_trace

__all__ = ["ConvergenceReport", "convergence_from_events",
           "convergence_report", "DecisionReport",
           "decision_from_events", "decision_report", "GAIN_BUCKETS"]

#: Gain-histogram bucket upper bounds: FM gains are small signed ints,
#: so a handful of buckets around zero resolves the whole shape.
GAIN_BUCKETS = (-4.0, -1.0, 0.0, 1.0, 4.0)

Row = Sequence[object]
Table = Tuple[str, Sequence[str], List[Row]]


@dataclass
class _LevelAgg:
    modules: int
    spans: int = 0
    total_us: int = 0
    passes: int = 0
    moves: int = 0
    cuts: List[int] = field(default_factory=list)


@dataclass
class _PassAgg:
    number: int
    count: int = 0
    cut_before: List[int] = field(default_factory=list)
    cut_after: List[int] = field(default_factory=list)
    gain: List[int] = field(default_factory=list)
    moves_attempted: int = 0
    moves_committed: int = 0


@dataclass
class ConvergenceReport:
    """The reduced convergence view of one trace."""

    events: int = 0
    ml_runs: int = 0
    total_seconds: float = 0.0
    #: phase name -> microseconds inside ``ml.bipartition`` spans.
    phase_us: Dict[str, int] = field(default_factory=dict)
    levels: List[_LevelAgg] = field(default_factory=list)
    passes: List[_PassAgg] = field(default_factory=list)

    # -- table views ----------------------------------------------------

    def phase_table(self) -> Table:
        total = sum(self.phase_us.values())
        rows: List[Row] = []
        for name in ("coarsening", "initial", "refinement", "other"):
            us = self.phase_us.get(name, 0)
            pct = 100.0 * us / total if total else 0.0
            rows.append([name, round(us / 1e6, 4), round(pct, 1)])
        return ("CPU breakdown by phase (Table VIII shape)",
                ["phase", "seconds", "% of total"], rows)

    def level_table(self) -> Table:
        rows: List[Row] = [
            [agg.modules, agg.spans, round(agg.total_us / 1e6, 4),
             agg.passes, agg.moves,
             min(agg.cuts) if agg.cuts else None,
             round(mean(agg.cuts), 1) if agg.cuts else None]
            for agg in self.levels]
        return ("Refinement attribution by level (coarsest first)",
                ["modules", "spans", "seconds", "passes", "moves",
                 "min cut", "mean cut"], rows)

    def pass_table(self) -> Table:
        rows: List[Row] = [
            [agg.number, agg.count,
             round(mean(agg.cut_before), 1) if agg.cut_before else None,
             round(mean(agg.cut_after), 1) if agg.cut_after else None,
             round(mean(agg.gain), 2) if agg.gain else None,
             agg.moves_committed,
             agg.moves_attempted - agg.moves_committed]
            for agg in self.passes]
        return ("Cut vs FM pass (mean over all refinement calls)",
                ["pass", "calls", "mean cut before", "mean cut after",
                 "mean gain", "moves committed", "rolled back"], rows)

    def tables(self) -> List[Table]:
        out: List[Table] = []
        if self.phase_us:
            out.append(self.phase_table())
        if self.levels:
            out.append(self.level_table())
        if self.passes:
            out.append(self.pass_table())
        return out

    def render(self) -> str:
        """Plain-text rendering (the ``repro report`` building block)."""
        from ..harness.formatting import format_table
        tables = self.tables()
        if not tables:
            return ("no convergence telemetry in trace "
                    "(no fm.pass / ml.* spans)")
        parts = [f"{self.events} events, {self.ml_runs} ML run(s), "
                 f"{self.total_seconds:.3f}s traced"]
        for title, headers, rows in tables:
            parts.append(format_table(headers, rows, title=title))
        return "\n\n".join(parts)


def _attribute_moves(containers: List[Tuple[int, int, int, "_LevelAgg"]],
                     fm_passes: List[Tuple[int, int, Dict[str, object]]]
                     ) -> None:
    """Sum fm.pass move counts into their containing level spans.

    ``containers`` is ``(pid, start, end, agg)``; attribution is by
    interval containment within the same process.  Mutates each
    container's ``agg`` in place.
    """
    by_pid: Dict[int, List[Tuple[int, int, object]]] = {}
    for pid, start, end, agg in containers:
        by_pid.setdefault(pid, []).append((start, end, agg))
    starts_by_pid = {}
    for pid, spans in by_pid.items():
        spans.sort(key=lambda s: s[0])
        starts_by_pid[pid] = [s[0] for s in spans]
    for pid, ts, args in fm_passes:
        spans = by_pid.get(pid)
        if not spans:
            continue
        i = bisect_right(starts_by_pid[pid], ts) - 1
        if i < 0:
            continue
        start, end, agg = spans[i]
        if ts > end:
            continue
        agg.moves += int(args.get("moves_attempted", 0) or 0)


def convergence_from_events(events) -> ConvergenceReport:
    """Reduce an iterable of trace events to a
    :class:`ConvergenceReport`."""
    report = ConvergenceReport()
    total_us = 0
    phase_us = {"coarsening": 0, "initial": 0, "refinement": 0}
    level_aggs: Dict[int, _LevelAgg] = {}
    pass_aggs: Dict[int, _PassAgg] = {}
    containers: List[Tuple[int, int, int, _LevelAgg]] = []
    fm_passes: List[Tuple[int, int, Dict[str, object]]] = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        report.events += 1
        name = event.get("name")
        args = event.get("args")
        if not isinstance(args, dict):
            args = {}
        try:
            ts = int(event.get("ts", 0))
            dur = int(event.get("dur", 0))
        except (TypeError, ValueError):
            continue
        pid = event.get("pid", 0)
        if name == "ml.bipartition":
            report.ml_runs += 1
            total_us += dur
        elif name == "ml.coarsen":
            phase_us["coarsening"] += dur
        elif name == "ml.initial":
            phase_us["initial"] += dur
        if name in ("ml.refine.level", "ml.initial"):
            modules = args.get("modules")
            if isinstance(modules, int):
                agg = level_aggs.get(modules)
                if agg is None:
                    agg = level_aggs[modules] = _LevelAgg(modules)
                agg.spans += 1
                agg.total_us += dur
                agg.passes += int(args.get("passes", 0) or 0)
                cut = args.get("cut")
                if isinstance(cut, (int, float)):
                    agg.cuts.append(int(cut))
                containers.append((pid, ts, ts + dur, agg))
            if name == "ml.refine.level":
                phase_us["refinement"] += dur
        elif name == "fm.pass":
            number = args.get("pass")
            if not isinstance(number, int):
                continue
            agg = pass_aggs.get(number)
            if agg is None:
                agg = pass_aggs[number] = _PassAgg(number)
            agg.count += 1
            for attr, key in (("cut_before", "cut_before"),
                              ("cut_after", "cut_after"),
                              ("gain", "gain")):
                value = args.get(key)
                if isinstance(value, (int, float)):
                    getattr(agg, attr).append(int(value))
            agg.moves_attempted += int(args.get("moves_attempted", 0) or 0)
            agg.moves_committed += int(args.get("moves_committed", 0) or 0)
            fm_passes.append((pid, ts, args))
    _attribute_moves(containers, fm_passes)
    known = sum(phase_us.values())
    if total_us:
        phase_us["other"] = max(0, total_us - known)
    report.total_seconds = (total_us or known) / 1e6
    report.phase_us = {k: v for k, v in phase_us.items() if v or total_us}
    # Coarsest (fewest modules) first — the order refinement runs in.
    report.levels = [level_aggs[m] for m in sorted(level_aggs)]
    report.passes = [pass_aggs[n] for n in sorted(pass_aggs)]
    return report


def convergence_report(path) -> ConvergenceReport:
    """Reduce the trace file at ``path`` to a
    :class:`ConvergenceReport`."""
    return convergence_from_events(read_trace(path))


# -- decision-recording analytics ---------------------------------------

def _bucket_labels(buckets: Sequence[float]) -> List[str]:
    labels = []
    lower = None
    for upper in buckets:
        left = "-inf" if lower is None else f"{lower:g}"
        labels.append(f"({left},{upper:g}]")
        lower = upper
    labels.append(f"({lower:g},inf)")
    return labels


@dataclass
class DecisionReport:
    """The reduced decision-analytics view of one recording."""

    events: int = 0
    starts: int = 0
    moves: int = 0
    merges: int = 0
    batches: int = 0
    #: pass number -> histogram of that pass's per-move gains.
    gain_hists: Dict[int, Histogram] = field(default_factory=dict)
    #: start index -> full (decision ordinal, internal cut) curve.
    curves: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    def gain_table(self) -> Table:
        labels = _bucket_labels(GAIN_BUCKETS)
        rows: List[Row] = []
        for number in sorted(self.gain_hists):
            hist = self.gain_hists[number]
            mean_gain = hist.sum / hist.count if hist.count else 0.0
            rows.append([number, hist.count, round(mean_gain, 3),
                         *hist.counts])
        return ("Gain distribution by FM pass (all sequential moves)",
                ["pass", "moves", "mean gain", *labels], rows)

    def curve_table(self, points: int = 10) -> Table:
        rows: List[Row] = []
        for start in sorted(self.curves):
            curve = self.curves[start]
            if not curve:
                continue
            if len(curve) <= points:
                sampled = curve
            else:
                step = (len(curve) - 1) / (points - 1)
                sampled = [curve[round(i * step)] for i in range(points)]
            for ordinal, cut in sampled:
                rows.append([start, ordinal, cut])
        return ("Cut vs decision ordinal (downsampled per start)",
                ["start", "decision", "internal cut"], rows)

    def tables(self) -> List[Table]:
        out: List[Table] = []
        if self.gain_hists:
            out.append(self.gain_table())
        if any(self.curves.values()):
            out.append(self.curve_table())
        return out

    def render(self) -> str:
        from ..harness.formatting import format_table
        tables = self.tables()
        if not tables:
            return "no decision events in recording"
        parts = [f"{self.events} events, {self.starts} start(s): "
                 f"{self.moves} move(s), {self.merges} merge(s), "
                 f"{self.batches} batch/polish commit(s)"]
        for title, headers, rows in tables:
            parts.append(format_table(headers, rows, title=title))
        return "\n\n".join(parts)


def decision_from_events(events) -> DecisionReport:
    """Reduce a decision recording's events to a
    :class:`DecisionReport`."""
    report = DecisionReport()
    for start, block in sorted(group_starts(events).items()):
        report.starts += 1
        current_pass = 1
        ordinal = 0
        curve: List[Tuple[int, int]] = []
        for ev in block:
            report.events += 1
            t = ev.get("t")
            if t == "fm":
                current_pass = 1
            elif t == "pass":
                p = ev.get("p")
                current_pass = (p + 1 if isinstance(p, int)
                                else current_pass + 1)
            elif t == "merge":
                report.merges += 1
            elif t == "mv":
                report.moves += 1
                gain = ev.get("g")
                if isinstance(gain, (int, float)):
                    hist = report.gain_hists.get(current_pass)
                    if hist is None:
                        hist = report.gain_hists[current_pass] = \
                            Histogram(GAIN_BUCKETS)
                    hist.observe(gain)
                cut = ev.get("c")
                if isinstance(cut, int):
                    curve.append((ordinal, cut))
                ordinal += 1
            elif t in ("batch", "polish"):
                report.batches += 1
                cut = ev.get("c")
                if isinstance(cut, int):
                    curve.append((ordinal, cut))
                ordinal += 1
        report.curves[start] = curve
    return report


def decision_report(path) -> DecisionReport:
    """Reduce the recording file at ``path`` to a
    :class:`DecisionReport`."""
    return decision_from_events(read_record(path))
