"""Statistical comparison of recorded runs: no more raw percent deltas.

Single-shot wall-clock comparisons are noise (``BENCH_obs.json`` once
reported *negative* instrumentation overhead from exactly that), and
the paper's own claims are distributional — min/average cut over many
starts.  This module reduces repeated-seed samples with robust
statistics and classifies each delta as ``improved`` / ``regressed`` /
``indistinguishable``:

* **median** of each sample set (robust to the odd straggler start);
* a paired **sign test** (exact binomial, two-sided) over per-seed
  pairs — starts are paired by index because the seed derivation is
  position-stable, so pair *i* ran the same seed in both sweeps;
* a seeded **bootstrap confidence interval** on the difference of
  medians, for effect-size context (deterministic: the resampling RNG
  is keyed on the comparison's identity).

A verdict is *confirmed* — the only kind ``repro compare --gate``
fails on — when the sign test is significant at ``alpha`` **and** the
median moved by at least ``min_effect_pct``.  Identical samples (the
same pinned-seed suite run twice) have zero informative pairs, a sign
test p-value of 1, and come out ``indistinguishable`` by construction.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..rng import stable_seed

__all__ = ["VERDICT_IMPROVED", "VERDICT_REGRESSED",
           "VERDICT_INDISTINGUISHABLE", "Comparison", "sign_test",
           "bootstrap_delta_ci", "compare_samples", "compare_sample_sets",
           "load_samples"]

VERDICT_IMPROVED = "improved"
VERDICT_REGRESSED = "regressed"
VERDICT_INDISTINGUISHABLE = "indistinguishable"

#: Metrics the loaders emit, with gate-relevant defaults: quality
#: deltas are meaningful from small effects, runtime deltas only past
#: scheduling noise.
QUALITY_METRICS = ("cut",)
RUNTIME_METRICS = ("wall", "cpu")


def sign_test(baseline: Sequence[float],
              current: Sequence[float]) -> float:
    """Two-sided exact sign test over index-paired samples.

    Pairs ``baseline[i]`` with ``current[i]`` (position-stable seeds
    make index pairing seed pairing); ties contribute no information.
    Returns the p-value for "the paired differences are symmetric
    around zero" — 1.0 when every pair ties or either side is empty.
    """
    pairs = min(len(baseline), len(current))
    pos = neg = 0
    for i in range(pairs):
        d = current[i] - baseline[i]
        if d > 0:
            pos += 1
        elif d < 0:
            neg += 1
    n = pos + neg
    if n == 0:
        return 1.0
    k = min(pos, neg)
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2.0 ** n
    return min(1.0, 2.0 * tail)


def bootstrap_delta_ci(baseline: Sequence[float],
                       current: Sequence[float],
                       n_boot: int = 1000,
                       confidence: float = 0.95,
                       seed: int = 0) -> Tuple[float, float]:
    """Percentile bootstrap CI for ``median(current) - median(baseline)``.

    Each side is resampled independently with replacement by a seeded
    ``random.Random`` — the same inputs and seed always produce the
    same interval, so comparisons are reproducible run to run.
    """
    if not baseline or not current:
        return (0.0, 0.0)
    rng = random.Random(seed)
    deltas = []
    for _ in range(n_boot):
        b = [rng.choice(baseline) for _ in baseline]
        c = [rng.choice(current) for _ in current]
        deltas.append(median(c) - median(b))
    deltas.sort()
    lo = int(round((1.0 - confidence) / 2.0 * (n_boot - 1)))
    hi = int(round((1.0 + confidence) / 2.0 * (n_boot - 1)))
    return (deltas[lo], deltas[hi])


@dataclass
class Comparison:
    """One metric of one key, baseline vs current, with a verdict."""

    key: str
    metric: str
    baseline: List[float]
    current: List[float]
    baseline_median: float
    current_median: float
    delta: float
    delta_pct: Optional[float]
    p_value: float
    ci_low: float
    ci_high: float
    verdict: str
    confirmed: bool

    @property
    def regressed(self) -> bool:
        return self.verdict == VERDICT_REGRESSED

    def describe(self) -> str:
        pct = ("n/a" if self.delta_pct is None
               else f"{self.delta_pct:+.1f}%")
        return (f"{self.key} {self.metric}: {self.baseline_median:g} -> "
                f"{self.current_median:g} ({pct}, p={self.p_value:.3f}, "
                f"95% CI [{self.ci_low:+g}, {self.ci_high:+g}]) "
                f"{self.verdict}")


def compare_samples(key: str, metric: str,
                    baseline: Sequence[float], current: Sequence[float],
                    alpha: float = 0.05,
                    min_effect_pct: float = 0.0,
                    lower_is_better: bool = True,
                    n_boot: int = 1000) -> Comparison:
    """Classify one metric's delta between two sample sets.

    The verdict is directional (``lower_is_better`` says which way is
    an improvement) and conservative: anything short of a significant
    sign test *and* a median shift of at least ``min_effect_pct``
    percent is ``indistinguishable``.
    """
    baseline = [float(x) for x in baseline]
    current = [float(x) for x in current]
    if not baseline or not current:
        m_base = median(baseline) if baseline else 0.0
        m_cur = median(current) if current else 0.0
        return Comparison(key, metric, baseline, current, m_base, m_cur,
                          m_cur - m_base, None, 1.0, 0.0, 0.0,
                          VERDICT_INDISTINGUISHABLE, False)
    m_base = median(baseline)
    m_cur = median(current)
    delta = m_cur - m_base
    delta_pct = (100.0 * delta / m_base) if m_base else None
    p = sign_test(baseline, current)
    ci_low, ci_high = bootstrap_delta_ci(
        baseline, current, n_boot=n_boot,
        seed=stable_seed("bootstrap", key, metric))
    significant = p < alpha and delta != 0.0
    meaningful = (delta_pct is None
                  or abs(delta_pct) >= min_effect_pct)
    if significant and meaningful:
        worse = (delta > 0) == lower_is_better
        verdict = VERDICT_REGRESSED if worse else VERDICT_IMPROVED
        confirmed = True
    else:
        verdict = VERDICT_INDISTINGUISHABLE
        confirmed = False
    return Comparison(key, metric, baseline, current, m_base, m_cur,
                      delta, delta_pct, p, ci_low, ci_high, verdict,
                      confirmed)


SampleSets = Dict[str, Dict[str, List[float]]]


def compare_sample_sets(baseline: SampleSets, current: SampleSets,
                        alpha: float = 0.05,
                        min_effect_pct: float = 1.0,
                        time_min_effect_pct: float = 25.0
                        ) -> List[Comparison]:
    """Compare every (key, metric) present on both sides.

    Quality metrics use ``min_effect_pct``; runtime metrics the looser
    ``time_min_effect_pct`` (CI machines breathe).  Keys or metrics
    present on only one side are skipped — the gate compares what both
    sweeps measured, it does not punish coverage changes.
    """
    comparisons: List[Comparison] = []
    for key in sorted(set(baseline) & set(current)):
        base_metrics = baseline[key]
        cur_metrics = current[key]
        for metric in sorted(set(base_metrics) & set(cur_metrics)):
            effect = (time_min_effect_pct if metric in RUNTIME_METRICS
                      else min_effect_pct)
            comparisons.append(compare_samples(
                key, metric, base_metrics[metric], cur_metrics[metric],
                alpha=alpha, min_effect_pct=effect))
    return comparisons


# -- loading recorded samples ------------------------------------------

def _samples_from_ledger(path: Union[str, Path]) -> SampleSets:
    """Latest entry per (circuit, algorithm) key -> its sample lists.

    A ledger may hold many generations of the same experiment; the
    *latest* entry per key is the one a comparison should see (the
    per-entry ``cuts`` list already carries the repeated-seed samples).
    """
    from .ledger import read_ledger
    latest: Dict[str, Dict[str, object]] = {}
    for entry in read_ledger(path):
        key = f"{entry.get('circuit', '?')}/{entry.get('algorithm', '?')}"
        latest[key] = entry
    out: SampleSets = {}
    for key, entry in latest.items():
        metrics: Dict[str, List[float]] = {}
        cuts = entry.get("cuts")
        if isinstance(cuts, list) and cuts:
            metrics["cut"] = [float(c) for c in cuts]
        for metric, field in (("wall", "run_wall"), ("cpu", "run_cpu")):
            values = entry.get(field)
            if isinstance(values, list) and values:
                metrics[metric] = [float(v) for v in values]
        if metrics:
            out[key] = metrics
    return out


def _samples_from_bench_json(path: Union[str, Path]) -> SampleSets:
    """Adapt a committed ``BENCH_*.json`` report to sample sets.

    Both ``BENCH_kernels.json`` and ``BENCH_obs.json`` carry a
    ``results`` list of per-circuit rows; every numeric field of a row
    becomes a single-sample metric keyed by circuit (and kernel, when
    present).  Single samples can never *confirm* a verdict — they
    exist so a ledger can be sanity-checked against the committed
    baselines, not to replace them.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    rows = data.get("results")
    if not isinstance(rows, list):
        raise ReproError(
            f"{path}: not a ledger (.jsonl) and has no 'results' rows; "
            "cannot extract samples to compare")
    out: SampleSets = {}
    for row in rows:
        if not isinstance(row, dict):
            continue
        key = str(row.get("circuit", "?"))
        if "kernel" in row:
            key = f"{key}/{row['kernel']}"
        metrics = out.setdefault(key, {})
        for field, value in row.items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            metrics.setdefault(field, []).append(float(value))
    return out


def load_samples(path: Union[str, Path]) -> SampleSets:
    """Load comparable samples from a ledger (``.jsonl``) or a
    ``BENCH_*.json`` report, keyed ``circuit[/kernel]`` or
    ``circuit/algorithm``."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"{path}: no such ledger or benchmark report")
    if path.suffix == ".jsonl":
        return _samples_from_ledger(path)
    return _samples_from_bench_json(path)
