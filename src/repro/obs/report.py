"""`repro report`: a markdown / HTML view over the run ledger.

Turns the append-only ledger (and optionally a trace file) into the
report a human actually reads after a sweep:

* **Latest runs** — the newest ledger entry per (circuit, algorithm)
  key: runs, min/median cut, wall time, kernel mode, git SHA;
* **Trends** — where a key has more than one recorded generation, the
  latest entry is compared against the previous one with the
  statistical comparator (median + sign test), and the verdict is
  shown instead of a raw percent delta;
* **Convergence** — when a trace file is given, the cut-vs-pass and
  per-level refinement-attribution tables from
  :mod:`repro.obs.convergence`;
* **Decision analytics** — when a decision recording (``--record``)
  is given, the per-pass gain-distribution histogram and the
  cut-vs-move convergence curve.

Rendering reuses :mod:`repro.harness.formatting` — the same table
builder the paper-table harness uses — in its markdown and HTML
flavours.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .compare import compare_samples
from .convergence import convergence_report, decision_report
from .ledger import ledger_path, read_ledger

__all__ = ["build_report", "REPORT_FORMATS"]

REPORT_FORMATS = ("markdown", "html")

Table = Tuple[str, Sequence[str], List[Sequence[object]]]


def _entry_samples(entry: Dict[str, object], field: str) -> List[float]:
    values = entry.get(field)
    if isinstance(values, list):
        return [float(v) for v in values]
    return []


def _runs_tables(entries: List[Dict[str, object]]) -> List[Table]:
    """The latest-runs and trends tables from raw ledger entries."""
    by_key: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        key = f"{entry.get('circuit', '?')}/{entry.get('algorithm', '?')}"
        by_key.setdefault(key, []).append(entry)

    latest_rows: List[Sequence[object]] = []
    trend_rows: List[Sequence[object]] = []
    for key in sorted(by_key):
        history = by_key[key]
        latest = history[-1]
        statuses = latest.get("statuses") or {}
        ok = statuses.get("ok", 0) if isinstance(statuses, dict) else 0
        latest_rows.append([
            key, latest.get("runs"), ok, latest.get("min_cut"),
            latest.get("median_cut"), latest.get("wall_seconds"),
            latest.get("kernel_mode"), latest.get("git_sha"),
            latest.get("ts"),
        ])
        if len(history) >= 2:
            previous = history[-2]
            cut = compare_samples(key, "cut",
                                  _entry_samples(previous, "cuts"),
                                  _entry_samples(latest, "cuts"))
            wall = compare_samples(key, "wall",
                                   _entry_samples(previous, "run_wall"),
                                   _entry_samples(latest, "run_wall"),
                                   min_effect_pct=25.0)
            trend_rows.append([
                key, len(history),
                cut.baseline_median, cut.current_median,
                ("n/a" if cut.delta_pct is None
                 else f"{cut.delta_pct:+.1f}%"),
                cut.verdict,
                ("n/a" if wall.delta_pct is None
                 else f"{wall.delta_pct:+.1f}%"),
                wall.verdict,
            ])
    tables: List[Table] = [(
        "Latest runs",
        ["circuit/algorithm", "runs", "ok", "min cut", "median cut",
         "wall s", "kernels", "git", "when"],
        latest_rows)]
    if trend_rows:
        tables.append((
            "Trends (latest vs previous recorded generation)",
            ["circuit/algorithm", "entries", "prev median cut",
             "median cut", "cut Δ", "cut verdict", "wall Δ",
             "wall verdict"],
            trend_rows))
    return tables


def build_report(ledger: Union[str, Path, None] = None,
                 trace: Union[str, Path, None] = None,
                 fmt: str = "markdown",
                 last: int = 50,
                 record: Union[str, Path, None] = None) -> str:
    """Assemble the report text.

    ``ledger`` defaults to the active ledger; ``last`` bounds how many
    trailing entries are read (a long-lived ledger can hold thousands).
    ``record`` adds decision analytics from a recording file.
    """
    if fmt not in REPORT_FORMATS:
        raise ValueError(f"format must be one of {REPORT_FORMATS}, "
                         f"got {fmt!r}")
    from ..harness.formatting import (format_html_table,
                                      format_markdown_table)
    source = Path(ledger) if ledger is not None else ledger_path()
    entries: List[Dict[str, object]] = []
    if source is not None:
        entries = list(read_ledger(source))[-max(last, 1):]

    tables: List[Table] = []
    notes: List[str] = []
    if entries:
        tables.extend(_runs_tables(entries))
        notes.append(f"{len(entries)} ledger entr"
                     f"{'y' if len(entries) == 1 else 'ies'} read from "
                     f"`{source}`.")
    else:
        notes.append("no ledger entries found"
                     + (f" in `{source}`" if source is not None else
                        " (ledger is off)") + ".")
    if trace is not None:
        convergence = convergence_report(trace)
        conv_tables = convergence.tables()
        if conv_tables:
            notes.append(f"convergence from `{trace}`: "
                         f"{convergence.events} span(s), "
                         f"{convergence.ml_runs} ML run(s), "
                         f"{convergence.total_seconds:.3f}s traced.")
            tables.extend(conv_tables)
        else:
            notes.append(f"no convergence telemetry in `{trace}`.")
    if record is not None:
        decisions = decision_report(record)
        dec_tables = decisions.tables()
        if dec_tables:
            notes.append(f"decision analytics from `{record}`: "
                         f"{decisions.starts} start(s), "
                         f"{decisions.moves} move(s), "
                         f"{decisions.merges} merge(s).")
            tables.extend(dec_tables)
        else:
            notes.append(f"no decision events in `{record}`.")

    if fmt == "markdown":
        parts = ["# repro performance report", ""]
        parts += [f"- {note}" for note in notes]
        for title, headers, rows in tables:
            parts += ["", f"## {title}", "",
                      format_markdown_table(headers, rows)]
        return "\n".join(parts) + "\n"

    body = ["<h1>repro performance report</h1>", "<ul>"]
    body += [f"<li>{note.replace('`', '')}</li>" for note in notes]
    body.append("</ul>")
    for title, headers, rows in tables:
        body.append(f"<h2>{title}</h2>")
        body.append(format_html_table(headers, rows))
    return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            "<title>repro performance report</title><style>"
            "body{font-family:sans-serif;margin:2em}"
            "table{border-collapse:collapse;margin:1em 0}"
            "th,td{border:1px solid #ccc;padding:0.3em 0.6em;"
            "text-align:right}th:first-child,td:first-child"
            "{text-align:left}</style></head><body>\n"
            + "\n".join(body) + "\n</body></html>\n")
