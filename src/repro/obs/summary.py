"""Aggregate a trace file into a per-phase time/cut breakdown.

Backs the ``repro trace-summary`` CLI subcommand: reads a trace
written by :class:`~repro.obs.trace.JsonlTraceWriter` (possibly merged
from many worker processes) and reduces it to the questions the
paper's tables ask — where did the wall clock go, phase by phase, and
how did the cut evolve level by level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional

from .trace import read_trace

__all__ = ["PhaseStats", "TraceSummary", "summarize_trace"]


@dataclass
class PhaseStats:
    """All spans of one name, folded."""

    name: str
    count: int = 0
    total_us: int = 0
    max_us: int = 0

    @property
    def total_seconds(self) -> float:
        return self.total_us / 1e6

    @property
    def mean_ms(self) -> float:
        return self.total_us / self.count / 1e3 if self.count else 0.0


@dataclass
class TraceSummary:
    """The reduced trace: phase table plus per-level cut statistics."""

    events: int = 0
    processes: int = 0
    span_seconds: float = 0.0
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    #: ``coarse modules at level`` -> cuts seen by refinement there.
    level_cuts: Dict[int, List[int]] = field(default_factory=dict)
    start_cuts: List[int] = field(default_factory=list)
    instants: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        if not self.events:
            return "no events in trace (empty or header-only file)"
        lines = [f"{self.events} events from {self.processes} process(es), "
                 f"{self.span_seconds:.3f}s traced"]
        if self.phases:
            lines.append("")
            lines.append(f"{'phase':<22} {'count':>7} {'total s':>9} "
                         f"{'mean ms':>9} {'max ms':>9}")
            ordered = sorted(self.phases.values(),
                             key=lambda p: p.total_us, reverse=True)
            for p in ordered:
                lines.append(f"{p.name:<22} {p.count:>7} "
                             f"{p.total_seconds:>9.3f} {p.mean_ms:>9.3f} "
                             f"{p.max_us / 1e3:>9.3f}")
        if self.instants:
            lines.append("")
            lines.append("events: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.instants.items())))
        if self.level_cuts:
            lines.append("")
            lines.append(f"cut by level ({'finest last'}):")
            lines.append(f"{'modules':>9} {'spans':>7} {'min cut':>9} "
                         f"{'mean cut':>10}")
            for modules in sorted(self.level_cuts, reverse=True):
                cuts = self.level_cuts[modules]
                lines.append(f"{modules:>9} {len(cuts):>7} "
                             f"{min(cuts):>9} {mean(cuts):>10.1f}")
        if self.start_cuts:
            lines.append("")
            lines.append(
                f"portfolio: {len(self.start_cuts)} finished start(s), "
                f"min cut {min(self.start_cuts)}, "
                f"mean cut {mean(self.start_cuts):.1f}")
        return "\n".join(lines)


def summarize_trace(path) -> TraceSummary:
    """Reduce the trace at ``path`` to a :class:`TraceSummary`."""
    summary = TraceSummary()
    pids = set()
    t_min: Optional[int] = None
    t_max: Optional[int] = None
    for event in read_trace(path):
        if not isinstance(event, dict):
            continue  # unknown payload: tolerate, don't raise
        summary.events += 1
        if "pid" in event:
            pids.add(event["pid"])
        ph = event.get("ph")
        args = event.get("args")
        if not isinstance(args, dict):
            args = {}
        ts = event.get("ts")
        if ph == "X":
            name = str(event.get("name", "?"))
            try:
                dur = int(event.get("dur", 0))
            except (TypeError, ValueError):
                dur = 0
            stats = summary.phases.get(name)
            if stats is None:
                stats = summary.phases[name] = PhaseStats(name)
            stats.count += 1
            stats.total_us += dur
            stats.max_us = max(stats.max_us, dur)
            if isinstance(ts, (int, float)):
                t_min = ts if t_min is None else min(t_min, ts)
                t_max = (ts + dur if t_max is None
                         else max(t_max, ts + dur))
            cut = args.get("cut")
            if isinstance(cut, (int, float)):
                if name in ("ml.refine.level", "ml.initial"):
                    modules = args.get("modules", 0)
                    if not isinstance(modules, int):
                        modules = 0
                    summary.level_cuts.setdefault(modules, []).append(
                        int(cut))
                elif name == "portfolio.start" \
                        and args.get("status") == "ok":
                    summary.start_cuts.append(int(cut))
        elif ph == "i":
            name = str(event.get("name", "?"))
            summary.instants[name] = summary.instants.get(name, 0) + 1
    summary.processes = len(pids)
    if t_min is not None and t_max is not None:
        summary.span_seconds = (t_max - t_min) / 1e6
    return summary
