"""Aggregate a trace file into a per-phase time/cut breakdown.

Backs the ``repro trace-summary`` CLI subcommand: reads a trace
written by :class:`~repro.obs.trace.JsonlTraceWriter` (possibly merged
from many worker processes) and reduces it to the questions the
paper's tables ask — where did the wall clock go, phase by phase, and
how did the cut evolve level by level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional

from .trace import read_trace

__all__ = ["PhaseStats", "TraceSummary", "summarize_trace",
           "ServiceRequest", "ExecutionTree", "ServiceTraceSummary",
           "summarize_service_trace"]


@dataclass
class PhaseStats:
    """All spans of one name, folded."""

    name: str
    count: int = 0
    total_us: int = 0
    max_us: int = 0

    @property
    def total_seconds(self) -> float:
        return self.total_us / 1e6

    @property
    def mean_ms(self) -> float:
        return self.total_us / self.count / 1e3 if self.count else 0.0


@dataclass
class TraceSummary:
    """The reduced trace: phase table plus per-level cut statistics."""

    events: int = 0
    processes: int = 0
    span_seconds: float = 0.0
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    #: ``coarse modules at level`` -> cuts seen by refinement there.
    level_cuts: Dict[int, List[int]] = field(default_factory=dict)
    start_cuts: List[int] = field(default_factory=list)
    instants: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        if not self.events:
            return "no events in trace (empty or header-only file)"
        lines = [f"{self.events} events from {self.processes} process(es), "
                 f"{self.span_seconds:.3f}s traced"]
        if self.phases:
            lines.append("")
            lines.append(f"{'phase':<22} {'count':>7} {'total s':>9} "
                         f"{'mean ms':>9} {'max ms':>9}")
            ordered = sorted(self.phases.values(),
                             key=lambda p: p.total_us, reverse=True)
            for p in ordered:
                lines.append(f"{p.name:<22} {p.count:>7} "
                             f"{p.total_seconds:>9.3f} {p.mean_ms:>9.3f} "
                             f"{p.max_us / 1e3:>9.3f}")
        if self.instants:
            lines.append("")
            lines.append("events: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.instants.items())))
        if self.level_cuts:
            lines.append("")
            lines.append(f"cut by level ({'finest last'}):")
            lines.append(f"{'modules':>9} {'spans':>7} {'min cut':>9} "
                         f"{'mean cut':>10}")
            for modules in sorted(self.level_cuts, reverse=True):
                cuts = self.level_cuts[modules]
                lines.append(f"{modules:>9} {len(cuts):>7} "
                             f"{min(cuts):>9} {mean(cuts):>10.1f}")
        if self.start_cuts:
            lines.append("")
            lines.append(
                f"portfolio: {len(self.start_cuts)} finished start(s), "
                f"min cut {min(self.start_cuts)}, "
                f"mean cut {mean(self.start_cuts):.1f}")
        return "\n".join(lines)


# -- service traces ----------------------------------------------------
#
# A daemon-lifetime trace (``repro serve --trace``) interleaves many
# requests; the flat phase table above still works, but the question an
# operator asks is per-request: which requests rode which execution.
# The regrouping below keys on the correlation args the service stamps:
# every request gets a ``service.request`` root span carrying
# ``request_id``/``trace_id``/``exec_id``; the lane's one
# ``service.execute`` span carries ``exec_id`` + ``trace_id``; and
# every span inside the execution — including worker-side ``fm.pass``
# spans shipped across the fork — carries the leader's ``trace_id``.


@dataclass
class ServiceRequest:
    """One ``service.request`` root span."""

    request_id: str
    trace_id: str
    method: str = "?"
    endpoint: str = "?"
    status: int = 0
    dur_us: int = 0
    exec_id: Optional[str] = None
    cached: bool = False
    coalesced: bool = False
    degraded: bool = False

    @property
    def flags(self) -> str:
        parts = [name for name, on in (("cached", self.cached),
                                       ("coalesced", self.coalesced),
                                       ("degraded", self.degraded)) if on]
        return f" [{', '.join(parts)}]" if parts else ""


@dataclass
class ExecutionTree:
    """One ``service.execute`` span and everything that ran under it."""

    exec_id: str
    trace_id: Optional[str] = None
    dur_us: int = 0
    requests: List[ServiceRequest] = field(default_factory=list)
    phases: Dict[str, PhaseStats] = field(default_factory=dict)

    def fold(self, name: str, dur_us: int) -> None:
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = PhaseStats(name)
        stats.count += 1
        stats.total_us += dur_us
        stats.max_us = max(stats.max_us, dur_us)


@dataclass
class ServiceTraceSummary:
    """A service trace regrouped into one span tree per request."""

    requests: List[ServiceRequest] = field(default_factory=list)
    executions: Dict[str, ExecutionTree] = field(default_factory=dict)

    @property
    def is_service_trace(self) -> bool:
        return bool(self.requests)

    def render(self) -> str:
        if not self.requests:
            return "no service.request spans in trace"
        lines = [f"service trace: {len(self.requests)} request(s), "
                 f"{len(self.executions)} execution(s)"]
        claimed = set()
        for exec_id in sorted(self.executions):
            tree = self.executions[exec_id]
            lines.append("")
            lines.append(
                f"execution {exec_id} — {tree.dur_us / 1e6:.3f}s, "
                f"served {len(tree.requests)} request(s)")
            for req in tree.requests:
                claimed.add(id(req))
                lines.append(
                    f"  {req.request_id:<18} {req.method} "
                    f"/{req.endpoint}  {req.status}  "
                    f"{req.dur_us / 1e3:.1f}ms{req.flags}  "
                    f"trace={req.trace_id}")
            if tree.phases:
                ordered = sorted(tree.phases.values(),
                                 key=lambda p: p.total_us, reverse=True)
                for p in ordered:
                    lines.append(f"    {p.name:<22} {p.count:>5} "
                                 f"{p.total_seconds:>9.3f}s "
                                 f"mean {p.mean_ms:.3f}ms")
        other = [r for r in self.requests if id(r) not in claimed]
        if other:
            lines.append("")
            lines.append(f"requests without an execution "
                         f"({len(other)} — cache hits before tracing, "
                         f"scrapes, errors):")
            for req in other:
                lines.append(
                    f"  {req.request_id:<18} {req.method} "
                    f"/{req.endpoint}  {req.status}  "
                    f"{req.dur_us / 1e3:.1f}ms{req.flags}")
        return "\n".join(lines)


def summarize_service_trace(path) -> ServiceTraceSummary:
    """Regroup a (possibly merged, many-request) service trace into
    per-request span trees.  Non-service traces yield an empty summary
    (``is_service_trace`` false) — callers fall back to the flat
    :func:`summarize_trace` table."""
    summary = ServiceTraceSummary()
    deferred: List[tuple] = []
    trace_to_exec: Dict[str, str] = {}
    for event in read_trace(path):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        args = event.get("args")
        if not isinstance(args, dict):
            args = {}
        try:
            dur = int(event.get("dur", 0))
        except (TypeError, ValueError):
            dur = 0
        if name == "service.request":
            summary.requests.append(ServiceRequest(
                request_id=str(args.get("request_id", "?")),
                trace_id=str(args.get("trace_id", "?")),
                method=str(args.get("method", "?")),
                endpoint=str(args.get("endpoint", "?")),
                status=int(args.get("status", 0) or 0),
                dur_us=dur,
                exec_id=(str(args["exec_id"])
                         if args.get("exec_id") is not None else None),
                cached=bool(args.get("cached")),
                coalesced=bool(args.get("coalesced")),
                degraded=bool(args.get("degraded"))))
        elif name == "service.execute":
            exec_id = str(args.get("exec_id", "?"))
            tree = summary.executions.setdefault(
                exec_id, ExecutionTree(exec_id))
            tree.dur_us = dur
            trace_id = args.get("trace_id")
            if trace_id is not None:
                tree.trace_id = str(trace_id)
                trace_to_exec[str(trace_id)] = exec_id
        else:
            # Might belong to an execution we have not seen yet (the
            # service.execute span is emitted *after* its children).
            deferred.append((name, dur, args.get("exec_id"),
                             args.get("trace_id")))
    for name, dur, exec_id, trace_id in deferred:
        key = None
        if exec_id is not None and str(exec_id) in summary.executions:
            key = str(exec_id)
        elif trace_id is not None:
            key = trace_to_exec.get(str(trace_id))
        if key is not None:
            summary.executions[key].fold(name, dur)
    for req in summary.requests:
        tree = None
        if req.exec_id is not None:
            tree = summary.executions.get(req.exec_id)
        if tree is None:
            tree = summary.executions.get(
                trace_to_exec.get(req.trace_id, ""))
        if tree is not None:
            tree.requests.append(req)
    return summary


def summarize_trace(path) -> TraceSummary:
    """Reduce the trace at ``path`` to a :class:`TraceSummary`."""
    summary = TraceSummary()
    pids = set()
    t_min: Optional[int] = None
    t_max: Optional[int] = None
    for event in read_trace(path):
        if not isinstance(event, dict):
            continue  # unknown payload: tolerate, don't raise
        summary.events += 1
        if "pid" in event:
            pids.add(event["pid"])
        ph = event.get("ph")
        args = event.get("args")
        if not isinstance(args, dict):
            args = {}
        ts = event.get("ts")
        if ph == "X":
            name = str(event.get("name", "?"))
            try:
                dur = int(event.get("dur", 0))
            except (TypeError, ValueError):
                dur = 0
            stats = summary.phases.get(name)
            if stats is None:
                stats = summary.phases[name] = PhaseStats(name)
            stats.count += 1
            stats.total_us += dur
            stats.max_us = max(stats.max_us, dur)
            if isinstance(ts, (int, float)):
                t_min = ts if t_min is None else min(t_min, ts)
                t_max = (ts + dur if t_max is None
                         else max(t_max, ts + dur))
            cut = args.get("cut")
            if isinstance(cut, (int, float)):
                if name in ("ml.refine.level", "ml.initial"):
                    modules = args.get("modules", 0)
                    if not isinstance(modules, int):
                        modules = 0
                    summary.level_cuts.setdefault(modules, []).append(
                        int(cut))
                elif name == "portfolio.start" \
                        and args.get("status") == "ok":
                    summary.start_cuts.append(int(cut))
        elif ph == "i":
            name = str(event.get("name", "?"))
            summary.instants[name] = summary.instants.get(name, 0) + 1
    summary.processes = len(pids)
    if t_min is not None and t_max is not None:
        summary.span_seconds = (t_max - t_min) / 1e6
    return summary
