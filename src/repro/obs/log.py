"""The ``repro.*`` stdlib logging hierarchy.

Library code logs through :func:`get_logger` — always a child of the
``repro`` logger, which carries a ``NullHandler`` so the library is
silent by default (the stdlib's recommended library posture).
Applications and the CLI opt in with :func:`configure_logging`, which
maps the ``-v`` count / ``--log-level`` name to a level and attaches
one stderr handler to the ``repro`` root (idempotently, so repeated
CLI invocations in one process don't stack handlers).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_root = logging.getLogger(ROOT_LOGGER_NAME)
_root.addHandler(logging.NullHandler())

#: Verbosity count (``-v`` occurrences) to level.
_VERBOSITY_LEVELS = {0: logging.WARNING, 1: logging.INFO}

_HANDLER_MARK = "_repro_cli_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return _root
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(verbosity: int = 0,
                      level: Optional[str] = None,
                      stream=None) -> logging.Logger:
    """Route ``repro.*`` records to ``stream`` (default stderr).

    ``level`` (a name like ``"debug"``) wins over ``verbosity``
    (``0`` → WARNING, ``1`` → INFO, ``2+`` → DEBUG).
    """
    if level is not None:
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
    else:
        resolved = _VERBOSITY_LEVELS.get(verbosity, logging.DEBUG)
    handler = None
    for existing in _root.handlers:
        if getattr(existing, _HANDLER_MARK, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s",
            datefmt="%H:%M:%S"))
        setattr(handler, _HANDLER_MARK, True)
        _root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    _root.setLevel(resolved)
    handler.setLevel(resolved)
    return _root
