"""Continuous profiling: sampling wall profiler + peak-memory capture.

Third leg of the observability stack next to :mod:`repro.obs.trace`
(spans) and :mod:`repro.obs.metrics` (aggregates), with the same
activation contract: everything here is opt-in and costs nothing when
off.  Two independent collectors:

1. :class:`SamplingProfiler` — a daemon thread that wakes every
   ``interval_seconds``, walks ``sys._current_frames()`` for every
   other thread, and aggregates the stacks into collapsed-stack form
   (``frame;frame;frame count`` — the flamegraph.pl / speedscope input
   format).  Sampling cost is proportional to stack depth times thread
   count per tick, independent of request rate, which is what makes it
   safe to leave running on a serving daemon (``repro serve
   --profile-dir``); the data comes back over ``GET /profile``.
2. :func:`memory_peak` — a context manager capturing the
   ``tracemalloc`` peak over a block.  The runtime wraps each portfolio
   start in one (see :mod:`repro.runtime.executor`); the module-level
   switch is inherited through fork, so worker processes capture their
   own peaks and ship them back on the run record.

Neither collector starts a thread, touches tracemalloc, or allocates
beyond a handful of attribute reads unless explicitly enabled — the
zero-overhead-when-disabled contract is enforced alongside tracing and
metrics in ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import tracemalloc
from typing import Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler", "memory_peak",
           "enable_memory_profiling", "memory_profiling_enabled"]

#: Cap on recorded stack depth; deeper frames are summarised as one
#: truncation marker so a runaway recursion cannot bloat the table.
MAX_STACK_DEPTH = 64


def _frame_label(code) -> str:
    """``file.py:qualname`` with collapsed-format metacharacters
    (semicolon separates frames, space separates the count) replaced."""
    name = f"{os.path.basename(code.co_filename)}:{code.co_qualname}"
    return name.replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """Wall-clock sampling profiler over ``sys._current_frames()``.

    Thread-based rather than signal-based: ``SIGPROF`` only interrupts
    the main thread, but the daemon does its real work on the asyncio
    event loop and the execution lane's worker thread, and a sampler
    thread sees both.  The trade-off is wall-clock attribution (a
    blocked thread keeps accumulating samples) — which is exactly what
    a latency investigation wants.
    """

    def __init__(self, interval_seconds: float = 0.01):
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}")
        self.interval_seconds = interval_seconds
        self.samples = 0
        self.started_at: Optional[float] = None
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self.started_at = time.time()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample_once()

    # -- collection ----------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample of every thread except the sampler itself."""
        own = threading.get_ident()
        for ident, frame in sys._current_frames().items():
            if ident == own:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None:
                if depth >= MAX_STACK_DEPTH:
                    stack.append("[truncated]")
                    break
                stack.append(_frame_label(frame.f_code))
                frame = frame.f_back
                depth += 1
            key = tuple(reversed(stack))
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
                self.samples += 1

    # -- output --------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``frame;frame count`` line per
        unique stack, heaviest first — feed to flamegraph.pl or paste
        into speedscope."""
        with self._lock:
            items = sorted(self._counts.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        return "".join(f"{';'.join(stack)} {count}\n"
                       for stack, count in items)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            stacks = len(self._counts)
        return {"running": self.running, "samples": self.samples,
                "unique_stacks": stacks,
                "interval_seconds": self.interval_seconds,
                "started_at": self.started_at}

    def write(self, path) -> None:
        """Write the collapsed profile to ``path`` (parents created)."""
        parent = os.path.dirname(str(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.collapsed())


# -- peak-memory capture -----------------------------------------------

_MEMORY_PROFILING = False


def enable_memory_profiling(on: bool = True) -> None:
    """Switch per-portfolio-start peak-memory capture on or off.

    A plain module global on purpose: the fork-based pool inherits it,
    so turning it on in the daemon makes every worker capture its own
    peak with no per-task plumbing.
    """
    global _MEMORY_PROFILING
    _MEMORY_PROFILING = on


def memory_profiling_enabled() -> bool:
    return _MEMORY_PROFILING


class memory_peak:
    """Context manager: ``tracemalloc`` peak allocation over the block.

    ``peak_bytes`` is ``None`` unless memory profiling is enabled — a
    disabled instance is two attribute reads, no tracemalloc calls.
    If tracemalloc was already tracing (an outer capture or the user's
    own), the peak is reset for this block but tracing is left running.
    """

    __slots__ = ("peak_bytes", "_started_here")

    def __init__(self) -> None:
        self.peak_bytes: Optional[int] = None
        self._started_here = False

    def __enter__(self) -> "memory_peak":
        if _MEMORY_PROFILING:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_here = True
            tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc) -> bool:
        if _MEMORY_PROFILING and tracemalloc.is_tracing():
            self.peak_bytes = tracemalloc.get_traced_memory()[1]
            if self._started_here:
                tracemalloc.stop()
        return False
