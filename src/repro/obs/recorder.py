"""Decision-level flight recorder: *what* the partitioner chose.

The tracing layer (:mod:`repro.obs.trace`) records where the *time*
went; this module records where the *decisions* went — which pair the
matcher merged, which module each FM/CLIP pass moved, where a pass
rolled back, which batch the numpy engine committed.  A recording is
the complete decision transcript of a portfolio run: enough to replay
every refinement block against a fresh
:class:`~repro.partition.PartitionState` (see
:mod:`repro.obs.replay`), and enough to align two runs and name the
first decision where they diverged (:mod:`repro.obs.diffrun`).

Design constraints, in priority order:

1. **Zero overhead when disabled.**  The module singleton defaults to
   :class:`NoopRecorder` with ``enabled = False``; every emit site in
   the kernels samples the singleton once per call and guards each
   event behind ``rec.enabled``.  The inlined linked-list FM loop is
   not instrumented at all — when recording is live the engine routes
   through the generic loop (which replays the identical operation
   sequence), so the hot path gains not a single instruction.
2. **Recording never perturbs results.**  No RNG draws, no reordering,
   no behavioural branches beyond the loop-dispatch above (which is
   bit-identical by contract).  The same seed must produce the same
   cuts with recording on or off.
3. **Seed-stable streams.**  Events are compact JSON objects with a
   one-letter ``"t"`` discriminator and short keys, one per line, in
   decision order.  Under a parallel executor each start's events are
   buffered in the worker and re-emitted as one contiguous block, so a
   recording is stable *modulo start-block order*; readers group by
   the ``start`` event's ``i`` field before comparing.

Event vocabulary (schema version 1; DESIGN.md §16 is normative):

``{"t":"start","i":..,"seed":..,"mode":..,"alg":..}``
    Header of one portfolio start.  ``mode`` is the kernel mode.
``{"t":"merge","v":..,"w":..}``
    The matcher opened a cluster seeded by module ``v`` and merged
    module ``w`` into it (``w = -1``: ``v`` stayed a singleton by
    decision, not by leftover).  Cluster ids are implicit: clusters
    are numbered in event order, then unmatched modules take the
    remaining ids in ascending module order.
``{"t":"level","l":..,"n":..,"c":..,"cn":..}``
    A coarsening level was *kept*: ``n`` fine modules clustered into
    ``c`` coarse modules spanning ``cn`` coarse nets.  Confirms the
    preceding run of ``merge`` events; merges not followed by a
    ``level`` event were discarded by the builder's stopping rule.
``{"t":"cycle","c":..}``
    A v-cycle began (its restricted coarsening re-emits merge/level
    events for its own chain).
``{"t":"repair","n":..}``
    The numpy engine's balance repair moved ``n`` modules before
    refinement began (the repaired assignment is what the following
    ``fm`` event records).
``{"t":"fm","l":..,"n":..,"mns":..,"np":..,"clip":..,"c":..,
  "init":"0101..."}``
    A refinement block began on the ``n``-module netlist: ``init`` is
    the full starting assignment (post rebalance/projection — replay
    never re-derives RNG-dependent work), ``c`` the internal cut on
    nets of at most ``mns`` pins, ``np`` 1 when the batched numpy
    engine runs it, ``clip`` 1 for CLIP bucket preprocessing, ``l``
    the hierarchy level (-1 outside refinement proper).
``{"t":"mv","i":..,"m":..,"s":..,"g":..,"c":..,"a0":..}``
    Sequential engines: move ``i`` of the current pass moved module
    ``m`` off side ``s`` with bucket gain ``g``, leaving internal cut
    ``c`` and side-0 area ``a0``.
``{"t":"pass","p":..,"k":..,"mv":..,"c":..}``
    Pass boundary: pass ``p`` attempted ``mv`` moves, kept the best
    prefix of ``k`` (the rest rolled back), internal cut after
    rollback ``c``.  The numpy engine emits ``k == mv`` (its commits
    are already monotone) plus ``"np":1``.
``{"t":"batch","r":..,"mods":[..],"c":..}``
    Numpy engine: in round ``r`` this batch of modules flipped sides
    together, leaving internal cut ``c``.
``{"t":"polish","mods":[..],"c":..}``
    Numpy engine: the scalar polish walk kept exactly these flips (in
    order), leaving internal cut ``c``.
``{"t":"result","i":..,"cut":..,"assign":"0101..."}``
    Footer of one start: the full-netlist cut and final assignment the
    portfolio recorded — the replay engine's bit-identity target.

Reading uses the same tolerant JSONL discipline as the run ledger and
the access log: corrupt or truncated lines are skipped with a warning,
never raised.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .ledger import read_jsonl_objects

__all__ = ["NoopRecorder", "Recorder", "BufferRecorder",
           "JsonlRecordWriter", "recorder", "set_recorder", "recording",
           "read_record", "group_starts"]

#: Event types that *are* decisions (the diff alignment set); the rest
#: are structural markers and verification anchors.
DECISION_EVENTS = ("merge", "mv", "batch", "polish")


class NoopRecorder:
    """The disabled recorder: every operation is a no-op.

    ``enabled`` is a class attribute so emit sites pay one attribute
    load to skip instrumentation entirely.
    """

    __slots__ = ()
    enabled = False
    #: Hierarchy level stamped by the ML driver (see :class:`Recorder`).
    level = -1

    def emit(self, event: Dict[str, object]) -> None:
        pass

    def close(self) -> None:
        pass


class Recorder(NoopRecorder):
    """Base of the live recorders.

    ``level`` is mutable shared context: the multilevel driver stamps
    the current hierarchy level before each refinement call so the
    engine can tag its ``fm`` event without threading an argument
    through every signature.
    """

    __slots__ = ("level",)
    enabled = True

    def __init__(self) -> None:
        self.level = -1

    def emit(self, event: Dict[str, object]) -> None:
        raise NotImplementedError


class BufferRecorder(Recorder):
    """Collect events in memory — the per-start recorder a parallel
    worker installs so a start's decisions travel back to the parent
    as one contiguous block (mirroring ``BufferTracer``)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear the buffered events."""
        out = self.events
        self.events = []
        return out


class JsonlRecordWriter(Recorder):
    """Stream events to a JSONL file, one compact object per line.

    Thread-safe: the service absorbs worker buffers from executor
    threads.  Unlike the trace writer there is no timestamp column —
    decision streams are ordered by position, not time.
    """

    __slots__ = ("path", "_file", "_lock")

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = str(path)
        self._file = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if not self._file.closed:
                self._file.write(line + "\n")

    def emit_block(self, events: List[Dict[str, object]]) -> None:
        """Append a drained start block atomically (no interleaving
        with blocks absorbed from other worker threads)."""
        text = "".join(json.dumps(e, separators=(",", ":")) + "\n"
                       for e in events)
        with self._lock:
            if not self._file.closed:
                self._file.write(text)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


_NOOP = NoopRecorder()
_ACTIVE: NoopRecorder = _NOOP


def recorder() -> NoopRecorder:
    """The process's active recorder (the no-op singleton when
    recording is off).  Emit sites sample this once per call."""
    return _ACTIVE


def set_recorder(rec: Optional[NoopRecorder]) -> NoopRecorder:
    """Install ``rec`` (``None`` restores the no-op) and return the
    previously active recorder."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = rec if rec is not None else _NOOP
    return previous


@contextmanager
def recording(target: Union[None, str, Path, NoopRecorder]):
    """Activate decision recording for the dynamic extent.

    ``target`` may be a path (a :class:`JsonlRecordWriter` is created,
    and closed on exit), an existing recorder instance (not closed —
    the caller owns it), or ``None`` (no-op, so call sites need no
    conditional).  Restores the previously active recorder on exit.
    """
    if target is None:
        yield _ACTIVE
        return
    if isinstance(target, NoopRecorder):
        rec = target
        owns = False
    else:
        rec = JsonlRecordWriter(target)
        owns = True
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
        if owns:
            rec.close()


def read_record(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Tolerantly yield the events of a recording file, in file order."""
    return read_jsonl_objects(path, kind="record")


def group_starts(events) -> Dict[int, List[Dict[str, object]]]:
    """Group a recording's events into per-start blocks keyed by start
    index.

    A parallel executor absorbs start blocks in completion order, so
    file order is not seed-stable — but block *contents* are.  Events
    before the first ``start`` header (there are none in well-formed
    recordings) land under index ``-1``.
    """
    blocks: Dict[int, List[Dict[str, object]]] = {}
    current = -1
    for event in events:
        if event.get("t") == "start":
            idx = event.get("i")
            current = idx if isinstance(idx, int) else -1
        blocks.setdefault(current, []).append(event)
    return blocks
