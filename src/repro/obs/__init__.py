"""Observability: tracing, metrics, and logging for the pipeline.

Three independent, individually-activated layers with one shared
contract — **zero overhead when disabled**:

* :mod:`repro.obs.trace` — a span tracer writing Chrome trace-event /
  Perfetto-compatible files.  ``with tracing("out.jsonl"): ...``
  captures per-level coarsening spans, per-pass FM telemetry, and
  per-start portfolio spans (merged across worker processes).
* :mod:`repro.obs.metrics` — counters/gauges/histograms rendered in
  the Prometheus text format.  ``with collecting_metrics() as reg:``.
* :mod:`repro.obs.log` — the quiet-by-default ``repro.*`` stdlib
  logging hierarchy (``-v``/``--log-level`` on the CLI).

Instrumented hot paths sample the module singletons once per coarse
operation and guard event construction behind their ``enabled`` flags;
with both layers off the cost is a handful of attribute reads per FM
call, asserted end-to-end by ``benchmarks/bench_obs_overhead.py``.
"""

from .log import configure_logging, get_logger
from .metrics import (MetricsRegistry, NoopMetrics, collecting_metrics,
                      metrics, set_metrics)
from .summary import TraceSummary, summarize_trace
from .trace import (BufferTracer, JsonlTraceWriter, NoopTracer, Tracer,
                    read_trace, set_tracer, tracer, tracing)

__all__ = [
    "tracer", "set_tracer", "tracing", "Tracer", "NoopTracer",
    "BufferTracer", "JsonlTraceWriter", "read_trace",
    "metrics", "set_metrics", "collecting_metrics", "MetricsRegistry",
    "NoopMetrics",
    "get_logger", "configure_logging",
    "summarize_trace", "TraceSummary",
]
