"""Observability: tracing, metrics, and logging for the pipeline.

Three independent, individually-activated layers with one shared
contract — **zero overhead when disabled**:

* :mod:`repro.obs.trace` — a span tracer writing Chrome trace-event /
  Perfetto-compatible files.  ``with tracing("out.jsonl"): ...``
  captures per-level coarsening spans, per-pass FM telemetry, and
  per-start portfolio spans (merged across worker processes).
* :mod:`repro.obs.metrics` — counters/gauges/histograms rendered in
  the Prometheus text format.  ``with collecting_metrics() as reg:``.
* :mod:`repro.obs.log` — the quiet-by-default ``repro.*`` stdlib
  logging hierarchy (``-v``/``--log-level`` on the CLI).

Instrumented hot paths sample the module singletons once per coarse
operation and guard event construction behind their ``enabled`` flags;
with both layers off the cost is a handful of attribute reads per FM
call, asserted end-to-end by ``benchmarks/bench_obs_overhead.py``.

On top of the emitting layers sit the *consuming* layers, which give
the telemetry a memory across runs:

* :mod:`repro.obs.ledger` — the append-only JSONL run ledger every
  portfolio execution records into (opt-out ``REPRO_LEDGER=off``);
* :mod:`repro.obs.compare` — median / bootstrap-CI / sign-test
  comparison of recorded runs (``repro compare --gate``);
* :mod:`repro.obs.convergence` — cut-vs-pass and per-level
  refinement-attribution analytics from the per-pass FM telemetry;
* :mod:`repro.obs.report` — the markdown / HTML report
  (``repro report``).

PR 10 adds the *decision* plane next to the timing plane:

* :mod:`repro.obs.recorder` — the flight recorder: a compact JSONL
  stream of every coarsening merge, FM/CLIP/batched move, and
  pass/level boundary (``--record``, ``GET /record``);
* :mod:`repro.obs.replay` — re-applies a recording against a fresh
  ``PartitionState``, auditing the engines' incremental bookkeeping
  and the final partition bit for bit;
* :mod:`repro.obs.diffrun` — aligns two recordings and names the
  first diverging decision (``repro diff-run``).
"""

from .log import configure_logging, get_logger
from .metrics import (MetricsRegistry, NoopMetrics, collecting_metrics,
                      lint_prometheus, metrics, set_metrics,
                      write_prometheus)
from .profile import (SamplingProfiler, enable_memory_profiling,
                      memory_peak, memory_profiling_enabled)
from .summary import (ServiceTraceSummary, TraceSummary,
                      summarize_service_trace, summarize_trace)
from .console import render_status, run_top
from .trace import (BufferTracer, JsonlTraceWriter, NoopTracer, Tracer,
                    read_trace, set_tracer, set_trace_context,
                    trace_context, trace_scope, tracer, tracing)
from .ledger import (LEDGER_ENV, LEDGER_VERSION, append_entry, git_sha,
                     ledger_enabled, ledger_path, read_jsonl_objects,
                     read_ledger, record_result, stable_view)
from .recorder import (BufferRecorder, JsonlRecordWriter, NoopRecorder,
                       Recorder, group_starts, read_record, recorder,
                       recording, set_recorder)
from .replay import (ReplayError, ReplayReport, clustering_from_merges,
                     replay_events, replay_recording)
from .diffrun import (DiffReport, Divergence, diff_events,
                      diff_recordings)
from .compare import (Comparison, bootstrap_delta_ci, compare_sample_sets,
                      compare_samples, load_samples, sign_test)
from .convergence import (ConvergenceReport, DecisionReport,
                          convergence_from_events, convergence_report,
                          decision_from_events, decision_report)
from .report import build_report

__all__ = [
    "tracer", "set_tracer", "tracing", "Tracer", "NoopTracer",
    "BufferTracer", "JsonlTraceWriter", "read_trace",
    "trace_context", "set_trace_context", "trace_scope",
    "metrics", "set_metrics", "collecting_metrics", "MetricsRegistry",
    "NoopMetrics", "write_prometheus", "lint_prometheus",
    "SamplingProfiler", "memory_peak", "enable_memory_profiling",
    "memory_profiling_enabled",
    "get_logger", "configure_logging",
    "summarize_trace", "TraceSummary",
    "summarize_service_trace", "ServiceTraceSummary",
    "render_status", "run_top",
    "LEDGER_ENV", "LEDGER_VERSION", "ledger_path", "ledger_enabled",
    "append_entry", "read_ledger", "read_jsonl_objects", "record_result",
    "stable_view", "git_sha",
    "Comparison", "sign_test", "bootstrap_delta_ci", "compare_samples",
    "compare_sample_sets", "load_samples",
    "ConvergenceReport", "convergence_from_events", "convergence_report",
    "DecisionReport", "decision_from_events", "decision_report",
    "build_report",
    "recorder", "set_recorder", "recording", "Recorder", "NoopRecorder",
    "BufferRecorder", "JsonlRecordWriter", "read_record", "group_starts",
    "ReplayError", "ReplayReport", "clustering_from_merges",
    "replay_events", "replay_recording",
    "DiffReport", "Divergence", "diff_events", "diff_recordings",
]
