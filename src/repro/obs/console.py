"""The live ops console behind ``repro top``.

One JSON poll of ``GET /status`` per refresh — the endpoint was shaped
so the dashboard needs nothing else (lane depth, breaker state, cache
hit rates, the in-flight request table with ages and trace IDs, and
latency histogram summaries all arrive in one body).  Rendering is a
pure function (:func:`render_status`) over that body, so tests feed it
recorded snapshots; :func:`run_top` owns the terminal loop (plain ANSI
clear-and-redraw, no curses dependency).
"""

from __future__ import annotations

import math
import sys
import time
from typing import Dict, List, Optional

__all__ = ["render_status", "run_top", "format_duration",
           "format_latency"]

_CLEAR = "\x1b[H\x1b[2J"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RED = "\x1b[31m"
_RESET = "\x1b[0m"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def format_duration(seconds: Optional[float]) -> str:
    """``93784.2`` → ``"1d2h3m"`` — coarse, for uptimes and ages."""
    if seconds is None:
        return "-"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    days, hours = divmod(hours, 24)
    if days:
        return f"{days}d{hours}h{minutes}m"
    if hours:
        return f"{hours}h{minutes}m"
    return f"{minutes}m{secs}s"


def format_latency(seconds: Optional[float]) -> str:
    """A latency quantile at a sensible unit (µs/ms/s)."""
    if seconds is None or (isinstance(seconds, float)
                           and math.isnan(seconds)):
        return "-"
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def _hit_rate(stats: Dict[str, object]) -> str:
    hits = int(stats.get("hits", 0) or 0)
    misses = int(stats.get("misses", 0) or 0)
    total = hits + misses
    if total == 0:
        return "-"
    return f"{100.0 * hits / total:.1f}%"


def _latency_rows(rows: List[Dict[str, object]], title: str,
                  label_key: Optional[str]) -> List[str]:
    out = []
    for row in rows:
        labels = row.get("labels") or {}
        name = labels.get(label_key, "") if label_key else ""
        out.append(
            f"  {title if not name else name:<22} "
            f"{int(row.get('count', 0) or 0):>8} "
            f"{format_latency(row.get('p50')):>10} "
            f"{format_latency(row.get('p90')):>10} "
            f"{format_latency(row.get('p99')):>10}")
    return out


def render_status(status: Dict[str, object], server: str = "",
                  color: bool = True) -> str:
    """One dashboard frame from a ``/status`` body.

    Tolerant of missing sections (an old daemon, a degraded scrape):
    absent blocks render as ``-`` rather than raising, so the console
    never dies mid-incident — the one time it is actually needed.
    """
    lane = status.get("lane") or {}
    breaker = status.get("breaker") or {}
    counters = status.get("counters") or {}
    state = str(status.get("status", "?"))
    state_color = _GREEN if state == "ok" else _YELLOW
    lines: List[str] = []
    lines.append(
        _paint(f"repro top — {server or 'partition service'}", _BOLD,
               color)
        + "   " + _paint(state, state_color, color)
        + _paint(f"   up {format_duration(status.get('uptime_seconds'))}",
                 _DIM, color))

    requests = int(counters.get("requests", 0) or 0)
    cache = status.get("result_cache") or {}
    lines.append(
        f"requests: {requests}"
        f"   cache hit: {_hit_rate(cache)}"
        f"   coalesced: {counters.get('coalesced', 0)}"
        f"   degraded: {counters.get('degraded_served', 0)}"
        f"   errors: {counters.get('errors', 0)}")

    open_keys = int(breaker.get("open_keys", 0) or 0)
    breaker_text = "closed" if open_keys == 0 else f"{open_keys} open"
    breaker_color = _GREEN if open_keys == 0 else _RED
    lines.append(
        f"lane: {lane.get('queued', '-')}/{lane.get('max_queued', '-')}"
        f" queued" + (" busy" if lane.get("busy") else "")
        + f"   shed: {lane.get('shed', 0)}"
        + f"   expired: {lane.get('expired', 0)}"
        + "   breaker: " + _paint(breaker_text, breaker_color, color)
        + f" (trips {breaker.get('trips', 0)})"
        + f"   connections: {status.get('connections', '-')}"
        + f"   jobs: {status.get('jobs_live', '-')}")

    latency = status.get("latency") or {}
    header = (f"  {'latency':<22} {'count':>8} {'p50':>10} {'p90':>10} "
              f"{'p99':>10}")
    lines.append("")
    lines.append(_paint(header, _DIM, color))
    body: List[str] = []
    body += _latency_rows(latency.get("latency") or [],
                          "request", "endpoint")
    body += _latency_rows(latency.get("queue_wait") or [],
                          "queue wait", None)
    body += _latency_rows(latency.get("execution") or [],
                          "execution", None)
    lines += body or [_paint("  (no samples yet)", _DIM, color)]

    in_flight = status.get("in_flight") or []
    lines.append("")
    lines.append(_paint(
        f"  {'in-flight':<14} {'state':<10} {'age':>8} "
        f"{'deadline':>9}  trace", _DIM, color))
    if in_flight:
        for row in in_flight:
            lines.append(
                f"  {str(row.get('id', '-')):<14} "
                f"{str(row.get('state', '-')):<10} "
                f"{format_duration(row.get('age_seconds')):>8} "
                f"{format_duration(row.get('deadline_in_seconds')):>9}"
                f"  {row.get('trace_id') or '-'}")
    else:
        lines.append(_paint("  (idle)", _DIM, color))

    profiler = status.get("profiler") or {}
    if profiler.get("enabled"):
        lines.append("")
        lines.append(_paint(
            f"profiler: {profiler.get('samples', 0)} samples, "
            f"{profiler.get('unique_stacks', 0)} stacks "
            f"(GET /profile for the flamegraph)", _DIM, color))
    return "\n".join(lines) + "\n"


def run_top(client, interval: float = 2.0, once: bool = False,
            color: bool = True, out=None) -> int:
    """Poll ``client.status()`` and redraw until interrupted.

    ``once`` renders a single frame without clearing the screen (the
    testable/scriptable mode; also what the README capture shows).
    Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    server = f"http://{client.host}:{client.port}"
    while True:
        try:
            frame = render_status(client.status(), server=server,
                                  color=color)
        except KeyboardInterrupt:
            return 0
        except Exception as exc:
            frame = (_paint(f"repro top — {server}", _BOLD, color)
                     + "   " + _paint("unreachable", _RED, color)
                     + f"\n{exc}\n")
            if once:
                out.write(frame)
                return 1
        if once:
            out.write(frame)
            return 0
        out.write(_CLEAR + frame)
        out.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
