"""Replay engine: re-run a decision recording and audit every step.

A recording (see :mod:`repro.obs.recorder`) is a complete decision
transcript — merges, refinement starting assignments, every move with
its claimed gain/cut/balance.  This module re-applies that transcript
against fresh structures built from the *finest netlist only*:

* coarse netlists are **rebuilt**, not trusted: the ``merge`` events of
  each confirmed ``level`` reconstruct the clustering (clusters are
  numbered in event order, then unmatched modules take the remaining
  ids ascending) and :func:`repro.clustering.induce` — deterministic
  given a clustering — produces the coarse netlist;
* each ``fm`` block builds a fresh
  :class:`~repro.partition.PartitionState` from the recorded ``init``
  assignment and replays the move stream, checking the engine's
  incremental cut / gain / balance bookkeeping *per move* against the
  state's independent implementation;
* ``pass`` boundaries roll back to the recorded best prefix and check
  the post-rollback cut; ``batch``/``polish`` events apply the batched
  engine's flips and check its vectorized cut reductions;
* the ``result`` footer is the bit-identity target: its assignment
  must reproduce the recorded full-netlist cut when re-measured from
  scratch, and must equal one of the root-level blocks' final
  assignments (the portfolio keeps the best candidate, so *which*
  block is not recorded — membership is the contract).

Because every engine family writes the same vocabulary, replaying a
``numpy``-mode recording audits the batched kernels with the scalar
state arithmetic and vice versa — an executable cross-check of all
three gain implementations.

Netlist registry: rebuilt coarse netlists are keyed by module count
(coarsening strictly shrinks the count, and v-cycle chains re-register
their own levels before referencing them), latest registration wins.
Area comparisons are exact for sequential moves (identical arithmetic
order) and tolerance-based for batched events (cumulative sums
reassociate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ReproError
from ..hypergraph import Hypergraph
from .recorder import group_starts, read_record

__all__ = ["ReplayError", "ReplayReport", "clustering_from_merges",
           "replay_events", "replay_recording"]

#: Absolute tolerance for area checks on batched (reassociated) sums.
_AREA_EPS = 1e-6


class ReplayError(ReproError):
    """A recording's bookkeeping does not survive re-execution."""


@dataclass
class ReplayReport:
    """Outcome of replaying one recording."""

    starts: int = 0
    fm_blocks: int = 0
    moves: int = 0
    batches: int = 0
    merges: int = 0
    levels: int = 0
    results_verified: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [
            f"replayed {self.starts} start(s): {self.fm_blocks} "
            f"refinement block(s), {self.moves} move(s), "
            f"{self.batches} batch/polish commit(s), {self.levels} "
            f"coarsening level(s) rebuilt from {self.merges} merge(s)",
            f"final partitions verified bit-identical: "
            f"{self.results_verified}/{self.starts}",
        ]
        if self.mismatches:
            lines.append(f"MISMATCHES ({len(self.mismatches)}):")
            lines.extend(f"  {m}" for m in self.mismatches[:20])
            if len(self.mismatches) > 20:
                lines.append(f"  ... and {len(self.mismatches) - 20} more")
        else:
            lines.append("bookkeeping audit clean: every recorded gain, "
                         "cut, and balance matched re-execution")
        return "\n".join(lines)


def clustering_from_merges(n: int, merges: List[Tuple[int, int]]):
    """Rebuild the matcher's clustering from its merge decisions.

    Clusters take ids in event order (``v`` and, when ``w >= 0``,
    ``w`` join cluster ``k`` for the ``k``-th event); the modules no
    event touched become singleton clusters in ascending module order
    — exactly the numbering discipline of
    :func:`repro.clustering.match`.
    """
    from ..clustering import Clustering
    cluster_of = [-1] * n
    num = 0
    for v, w in merges:
        cluster_of[v] = num
        if w >= 0:
            cluster_of[w] = num
        num += 1
    for v in range(n):
        if cluster_of[v] < 0:
            cluster_of[v] = num
            num += 1
    return Clustering(cluster_of)


def _active_nets_list(hg: Hypergraph, max_net_size: int) -> List[int]:
    return [e for e in hg.all_nets() if hg.net_size(e) <= max_net_size]


class _StartReplay:
    """Replay state machine for one start block."""

    def __init__(self, root: Hypergraph, report: ReplayReport,
                 label: str, verify_states: bool = False):
        self.root = root
        self.report = report
        self.label = label
        self.verify_states = verify_states
        #: module count -> rebuilt netlist; latest registration wins.
        self.netlists: Dict[int, Hypergraph] = {root.num_modules: root}
        self.pending: List[Tuple[int, int]] = []
        self.state = None          # live PartitionState of the fm block
        self.block_moves: List[Tuple[int, int]] = []   # (module, src)
        self.root_finals: List[List[int]] = []
        self.block_n = 0

    def _fail(self, msg: str) -> None:
        self.report.mismatches.append(f"{self.label}: {msg}")

    def _close_block(self) -> None:
        if self.state is None:
            return
        if self.verify_states:
            self.state.verify()
        if self.block_n == self.root.num_modules:
            self.root_finals.append(list(self.state.part_of))
        self.state = None
        self.block_moves = []

    # -- event handlers --------------------------------------------------

    def on_merge(self, ev) -> None:
        self.pending.append((ev["v"], ev["w"]))
        self.report.merges += 1

    def on_level(self, ev) -> None:
        from ..clustering import induce
        fine = self.netlists.get(ev["n"])
        if fine is None:
            self._fail(f"level {ev.get('l')}: no rebuilt netlist with "
                       f"{ev['n']} modules")
            self.pending = []
            return
        clustering = clustering_from_merges(fine.num_modules, self.pending)
        self.pending = []
        if clustering.num_clusters != ev["c"]:
            self._fail(f"level {ev.get('l')}: reconstructed "
                       f"{clustering.num_clusters} clusters, recording "
                       f"says {ev['c']}")
            return
        coarse = induce(fine, clustering)
        if coarse.num_nets != ev.get("cn", coarse.num_nets):
            self._fail(f"level {ev.get('l')}: induced {coarse.num_nets} "
                       f"nets, recording says {ev['cn']}")
        self.netlists[coarse.num_modules] = coarse
        self.report.levels += 1

    def on_fm(self, ev) -> None:
        from ..partition import Partition, PartitionState
        self._close_block()
        self.pending = []   # merges of a discarded (no-progress) match
        hg = self.netlists.get(ev["n"])
        if hg is None:
            self._fail(f"fm block: no rebuilt netlist with {ev['n']} "
                       f"modules (levels missing from recording?)")
            return
        init = ev["init"]
        if len(init) != hg.num_modules:
            self._fail(f"fm block: init length {len(init)} != "
                       f"{hg.num_modules} modules")
            return
        assignment = [1 if ch == "1" else 0 for ch in init]
        active = _active_nets_list(hg, ev["mns"])
        self.state = PartitionState(hg, Partition(assignment, 2),
                                    active_nets=active)
        self.block_n = ev["n"]
        self.block_moves = []
        self.report.fm_blocks += 1
        if "c" in ev and self.state.cut_weight != ev["c"]:
            self._fail(f"fm block ({ev['n']} modules): initial internal "
                       f"cut {self.state.cut_weight} != recorded "
                       f"{ev['c']}")

    def on_mv(self, ev) -> None:
        state = self.state
        if state is None:
            self._fail(f"mv event outside any fm block: {ev}")
            return
        m, src = ev["m"], ev["s"]
        if state.part_of[m] != src:
            self._fail(f"mv {ev['i']}: module {m} is on side "
                       f"{state.part_of[m]}, recording says {src}")
            return
        before = state.cut_weight
        state.move(m, 1 - src)
        self.block_moves.append((m, src))
        self.report.moves += 1
        if state.cut_weight != ev["c"]:
            self._fail(f"mv {ev['i']} (module {m}): cut "
                       f"{state.cut_weight} != recorded {ev['c']}")
        if before - state.cut_weight != ev["g"]:
            self._fail(f"mv {ev['i']} (module {m}): gain "
                       f"{before - state.cut_weight} != recorded "
                       f"{ev['g']}")
        if "a0" in ev and state.part_area[0] != ev["a0"]:
            self._fail(f"mv {ev['i']} (module {m}): side-0 area "
                       f"{state.part_area[0]} != recorded {ev['a0']}")

    def on_pass(self, ev) -> None:
        state = self.state
        if state is None:
            self._fail(f"pass event outside any fm block: {ev}")
            return
        if not ev.get("np"):
            # Sequential pass: roll back to the recorded best prefix.
            k = ev["k"]
            for m, original in reversed(self.block_moves[k:]):
                state.move(m, original)
        if state.cut_weight != ev["c"]:
            self._fail(f"pass {ev['p']}: post-rollback cut "
                       f"{state.cut_weight} != recorded {ev['c']}")
        self.block_moves = []

    def on_batch(self, ev) -> None:
        state = self.state
        if state is None:
            self._fail(f"{ev['t']} event outside any fm block: {ev}")
            return
        for m in ev["mods"]:
            state.move(m, 1 - state.part_of[m])
        self.report.batches += 1
        if state.cut_weight != ev["c"]:
            self._fail(f"{ev['t']} ({len(ev['mods'])} modules): cut "
                       f"{state.cut_weight} != recorded {ev['c']}")
        if "a0" in ev and abs(state.part_area[0] - ev["a0"]) > _AREA_EPS:
            self._fail(f"{ev['t']}: side-0 area {state.part_area[0]} "
                       f"!= recorded {ev['a0']}")

    def on_result(self, ev) -> None:
        from ..partition import Partition, cut
        self._close_block()
        assign = ev.get("assign")
        if assign is None:
            return
        assignment = [1 if ch == "1" else 0 for ch in assign]
        if len(assignment) != self.root.num_modules:
            self._fail(f"result: assignment length {len(assignment)} != "
                       f"{self.root.num_modules} modules")
            return
        measured = cut(self.root, Partition(assignment, 2))
        if measured != ev["cut"]:
            self._fail(f"result: re-measured cut {measured} != recorded "
                       f"{ev['cut']}")
            return
        if self.root_finals and assignment not in self.root_finals:
            self._fail("result: final assignment matches no root-level "
                       "refinement block of this start")
            return
        self.report.results_verified += 1


def replay_events(events: Iterable[Dict[str, object]], hg: Hypergraph,
                  verify_states: bool = False) -> ReplayReport:
    """Replay a recording's events against finest netlist ``hg``."""
    report = ReplayReport()
    blocks = group_starts(events)
    # Index -1 holds events outside any ``start`` header — a library-
    # level recording (``with recording(...): ml_bipartition(...)``)
    # is one anonymous start.
    for index in sorted(blocks):
        report.starts += 1
        machine = _StartReplay(hg, report, f"start {index}",
                               verify_states=verify_states)
        handlers = {
            "merge": machine.on_merge, "level": machine.on_level,
            "fm": machine.on_fm, "mv": machine.on_mv,
            "pass": machine.on_pass, "batch": machine.on_batch,
            "polish": machine.on_batch, "result": machine.on_result,
        }
        for ev in blocks[index]:
            handler = handlers.get(ev.get("t"))
            if handler is not None:
                handler(ev)
        machine._close_block()
    return report


def replay_recording(path: Union[str, Path], hg: Hypergraph,
                     verify_states: bool = False) -> ReplayReport:
    """Replay the recording file at ``path`` against ``hg``."""
    return replay_events(list(read_record(path)), hg,
                         verify_states=verify_states)
