"""Metrics registry: counters, gauges, histograms; Prometheus output.

Companion to :mod:`repro.obs.trace` with the same activation contract:
the module-level singleton (:func:`metrics`) is a no-op until a real
:class:`MetricsRegistry` is installed, and instrumented code guards
collection behind its ``enabled`` flag, so dormant metric sites cost
one attribute read.

A registry renders to the Prometheus text exposition format
(:meth:`MetricsRegistry.render_prometheus`) — the ``--metrics-out``
CLI flag writes exactly that.  Worker processes of the parallel
runtime collect into their own registry, ship a :meth:`snapshot` back
on the result record, and the parent :meth:`merge`\\ s it: counters and
histograms add, gauges keep the latest observation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NoopMetrics", "metrics", "set_metrics", "collecting_metrics",
           "write_prometheus", "DEFAULT_BUCKETS"]

#: Default histogram buckets (seconds-oriented, log-ish spacing).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down; keeps the latest observation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class _NoopInstrument:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """The disabled registry: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels):
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels):
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS, **labels):
        return _NOOP_INSTRUMENT

    def snapshot(self) -> Dict[str, object]:
        return {}

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        pass

    def render_prometheus(self) -> str:
        return ""


class _Family:
    """One metric name: its type, help text, and per-label series."""

    __slots__ = ("kind", "help", "buckets", "series")

    def __init__(self, kind: str, help: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by name and labels.

    Instruments are created on first use and cached, so hot paths can
    re-request them by name (a dict lookup) or hold on to the returned
    object (an attribute bump).
    """

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get(self, name: str, kind: str, help: str, factory, **labels):
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}")
        key = _label_key(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = factory()
            family.series[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(name, "counter", help, Counter, **labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", help, Gauge, **labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        instrument = self._get(name, "histogram", help,
                               lambda: Histogram(buckets), **labels)
        return instrument

    # -- cross-process aggregation -------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view suitable for pickling across the pool."""
        out: Dict[str, object] = {}
        for name, family in self._families.items():
            series = {}
            for key, instrument in family.series.items():
                if family.kind == "histogram":
                    series[key] = {"buckets": instrument.buckets,
                                   "counts": list(instrument.counts),
                                   "sum": instrument.sum,
                                   "count": instrument.count}
                else:
                    series[key] = instrument.value
            out[name] = {"kind": family.kind, "help": family.help,
                         "series": series}
        return out

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        """Fold a worker's snapshot in: add counters/histograms,
        overwrite gauges."""
        if not snapshot:
            return
        for name, data in snapshot.items():
            kind = data["kind"]
            for key, value in data["series"].items():
                labels = dict(key)
                if kind == "counter":
                    self.counter(name, data["help"], **labels).inc(value)
                elif kind == "gauge":
                    self.gauge(name, data["help"], **labels).set(value)
                else:
                    hist = self.histogram(name, data["help"],
                                          buckets=tuple(value["buckets"]),
                                          **labels)
                    for i, c in enumerate(value["counts"]):
                        hist.counts[i] += c
                    hist.sum += value["sum"]
                    hist.count += value["count"]

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                instrument = family.series[key]
                if family.kind == "histogram":
                    cumulative = 0
                    for upper, count in zip(instrument.buckets,
                                            instrument.counts):
                        cumulative += count
                        le = _label_key(dict(key, le=_fmt(upper)))
                        lines.append(f"{name}_bucket{_format_labels(le)} "
                                     f"{cumulative}")
                    le = _label_key(dict(key, le="+Inf"))
                    lines.append(f"{name}_bucket{_format_labels(le)} "
                                 f"{instrument.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} "
                                 f"{_fmt(instrument.sum)}")
                    lines.append(f"{name}_count{_format_labels(key)} "
                                 f"{instrument.count}")
                else:
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{_fmt(instrument.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: Union[int, float]) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def write_prometheus(registry: Union[NoopMetrics, MetricsRegistry],
                     path) -> None:
    """Write ``registry``'s Prometheus exposition to ``path``.

    Creates missing parent directories; the shared implementation
    behind every ``--metrics-out`` site (CLI and harness).  IO errors
    propagate as :class:`OSError` for the caller to translate.
    """
    import os
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(registry.render_prometheus())


# -- the module-level singleton ----------------------------------------

_NOOP = NoopMetrics()
_active: Union[NoopMetrics, MetricsRegistry] = _NOOP


def metrics() -> Union[NoopMetrics, MetricsRegistry]:
    """The active registry; a no-op singleton unless collection is on."""
    return _active


def set_metrics(registry: Optional[Union[NoopMetrics, MetricsRegistry]]
                ) -> Union[NoopMetrics, MetricsRegistry]:
    """Install ``registry`` (``None`` disables); returns the previous."""
    global _active
    previous = _active
    _active = registry if registry is not None else _NOOP
    return previous


class collecting_metrics:
    """Context manager: collect metrics inside into a fresh registry.

    Yields the registry (so the caller can render it after the block);
    restores the previous singleton on exit.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._previous: Optional[object] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, *exc) -> bool:
        set_metrics(self._previous)
        return False
