"""Metrics registry: counters, gauges, histograms; Prometheus output.

Companion to :mod:`repro.obs.trace` with the same activation contract:
the module-level singleton (:func:`metrics`) is a no-op until a real
:class:`MetricsRegistry` is installed, and instrumented code guards
collection behind its ``enabled`` flag, so dormant metric sites cost
one attribute read.

A registry renders to the Prometheus text exposition format
(:meth:`MetricsRegistry.render_prometheus`) — the ``--metrics-out``
CLI flag writes exactly that.  Worker processes of the parallel
runtime collect into their own registry, ship a :meth:`snapshot` back
on the result record, and the parent :meth:`merge`\\ s it: counters and
histograms add, gauges keep the latest observation.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NoopMetrics", "metrics", "set_metrics", "collecting_metrics",
           "write_prometheus", "lint_prometheus", "DEFAULT_BUCKETS",
           "SERVICE_BUCKETS"]

#: Default histogram buckets (seconds-oriented, log-ish spacing).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0)

#: Buckets for service request latencies.  The cache-hit path answers
#: in well under a millisecond while a cold portfolio takes seconds, so
#: the grid needs sub-millisecond resolution at the bottom without
#: losing the tail.  Below 10ms — where the hit path lives and where
#: interpolated quantiles are cross-checked against client stopwatches
#: (``bench_service.py``) — the edges step by ~1.4–1.5× so the
#: interpolation error stays well inside that check's 20% tolerance;
#: past 10ms a 1-2.5-5 ladder carries the tail out to 60s.
SERVICE_BUCKETS = (0.0001, 0.00015, 0.00025, 0.00035, 0.0005, 0.0007,
                   0.001, 0.0015, 0.0025, 0.0035, 0.005, 0.007,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0, 30.0, 60.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double-quote, and newline must be escaped or the sample line is
    unparseable (a real corruption risk — netlist names and error
    strings end up in labels)."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape HELP text: backslash and newline only (quotes are legal
    there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down; keeps the latest observation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation inside the owning bucket — the same estimate
        PromQL's ``histogram_quantile`` computes, so in-process
        summaries (``/status``, ``repro top``) agree with dashboards
        scraping ``/metrics``.  Returns ``nan`` with no observations;
        observations beyond the last finite bucket clamp to its bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for upper, count in zip(self.buckets, self.counts):
            if count and cumulative + count >= rank:
                return lower + (upper - lower) * (rank - cumulative) / count
            cumulative += count
            lower = upper
        return self.buckets[-1] if self.buckets else math.nan

    def summary(self) -> Dict[str, float]:
        """Count, sum, and the quantiles the ops surfaces display."""
        return {"count": self.count, "sum": self.sum,
                "p50": self.quantile(0.50), "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}


class _NoopInstrument:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "p50": math.nan,
                "p90": math.nan, "p99": math.nan}


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """The disabled registry: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels):
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels):
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS, **labels):
        return _NOOP_INSTRUMENT

    def histogram_summaries(self, name: str) -> List[Dict[str, object]]:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {}

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        pass

    def render_prometheus(self) -> str:
        return ""


class _Family:
    """One metric name: its type, help text, and per-label series."""

    __slots__ = ("kind", "help", "buckets", "series")

    def __init__(self, kind: str, help: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by name and labels.

    Instruments are created on first use and cached, so hot paths can
    re-request them by name (a dict lookup) or hold on to the returned
    object (an attribute bump).
    """

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get(self, name: str, kind: str, help: str, factory, **labels):
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}")
        key = _label_key(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = factory()
            family.series[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(name, "counter", help, Counter, **labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", help, Gauge, **labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        instrument = self._get(name, "histogram", help,
                               lambda: Histogram(buckets), **labels)
        return instrument

    def histogram_summaries(self, name: str) -> List[Dict[str, object]]:
        """Per-series :meth:`Histogram.summary` rows for one histogram
        family — the shape ``/status`` and ``repro top`` display.
        Returns ``[]`` for unknown or non-histogram names (never
        creates the family as a side effect)."""
        family = self._families.get(name)
        if family is None or family.kind != "histogram":
            return []
        rows: List[Dict[str, object]] = []
        for key in sorted(family.series):
            row: Dict[str, object] = {"labels": dict(key)}
            row.update(family.series[key].summary())
            rows.append(row)
        return rows

    # -- cross-process aggregation -------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view suitable for pickling across the pool."""
        out: Dict[str, object] = {}
        for name, family in self._families.items():
            series = {}
            for key, instrument in family.series.items():
                if family.kind == "histogram":
                    series[key] = {"buckets": instrument.buckets,
                                   "counts": list(instrument.counts),
                                   "sum": instrument.sum,
                                   "count": instrument.count}
                else:
                    series[key] = instrument.value
            out[name] = {"kind": family.kind, "help": family.help,
                         "series": series}
        return out

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        """Fold a worker's snapshot in: add counters/histograms,
        overwrite gauges."""
        if not snapshot:
            return
        for name, data in snapshot.items():
            kind = data["kind"]
            for key, value in data["series"].items():
                labels = dict(key)
                if kind == "counter":
                    self.counter(name, data["help"], **labels).inc(value)
                elif kind == "gauge":
                    self.gauge(name, data["help"], **labels).set(value)
                else:
                    hist = self.histogram(name, data["help"],
                                          buckets=tuple(value["buckets"]),
                                          **labels)
                    for i, c in enumerate(value["counts"]):
                        hist.counts[i] += c
                    hist.sum += value["sum"]
                    hist.count += value["count"]

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                instrument = family.series[key]
                if family.kind == "histogram":
                    cumulative = 0
                    for upper, count in zip(instrument.buckets,
                                            instrument.counts):
                        cumulative += count
                        le = _label_key(dict(key, le=_fmt(upper)))
                        lines.append(f"{name}_bucket{_format_labels(le)} "
                                     f"{cumulative}")
                    le = _label_key(dict(key, le="+Inf"))
                    lines.append(f"{name}_bucket{_format_labels(le)} "
                                 f"{instrument.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} "
                                 f"{_fmt(instrument.sum)}")
                    lines.append(f"{name}_count{_format_labels(key)} "
                                 f"{instrument.count}")
                else:
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{_fmt(instrument.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: Union[int, float]) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def write_prometheus(registry: Union[NoopMetrics, MetricsRegistry],
                     path) -> None:
    """Write ``registry``'s Prometheus exposition to ``path``.

    Creates missing parent directories; the shared implementation
    behind every ``--metrics-out`` site (CLI and harness).  IO errors
    propagate as :class:`OSError` for the caller to translate.
    """
    import os
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(registry.render_prometheus())


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(?:\{(.*)\})?"                    # optional label set
    r" (\S+)"                           # value
    r"(?: (-?\d+))?$")                  # optional timestamp
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_TYPES = frozenset(("counter", "gauge", "histogram", "summary",
                    "untyped"))


def _parse_sample_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # accepts "NaN"


def lint_prometheus(text: str) -> List[str]:
    """Promtool-style lint of the text exposition format, pure python.

    Returns a list of problems (empty when the exposition is clean).
    Checks the rules that actually corrupt scrapes: every line parses;
    ``# HELP``/``# TYPE`` appear at most once per family, with a known
    type, before any of that family's samples; a family's samples are
    contiguous; histogram bucket counts are monotone non-decreasing in
    ``le`` order with the ``+Inf`` bucket equal to ``_count``; and
    ``_sum``/``_count`` are present exactly once per histogram series.
    """
    problems: List[str] = []
    help_seen: Dict[str, int] = {}
    type_seen: Dict[str, str] = {}
    sample_order: List[str] = []        # families in first-sample order
    # histogram series state: family -> base-label-key -> fields
    hist: Dict[str, Dict[LabelKey, Dict[str, object]]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if type_seen.get(base) == "histogram":
                    return base
        return sample_name

    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            kind, name = parts[1], parts[2]
            if not _METRIC_NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: invalid metric name {name!r}")
                continue
            if name in sample_order:
                problems.append(
                    f"line {lineno}: # {kind} {name} after samples of "
                    f"that family")
            if kind == "HELP":
                help_seen[name] = help_seen.get(name, 0) + 1
                if help_seen[name] > 1:
                    problems.append(
                        f"line {lineno}: duplicate # HELP for {name}")
            else:
                metric_type = parts[3].strip() if len(parts) > 3 else ""
                if metric_type not in _TYPES:
                    problems.append(
                        f"line {lineno}: unknown TYPE {metric_type!r} "
                        f"for {name}")
                if name in type_seen:
                    problems.append(
                        f"line {lineno}: duplicate # TYPE for {name}")
                type_seen[name] = metric_type
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        sample_name, label_text, value_text = match.group(1, 2, 3)
        labels: Dict[str, str] = {}
        if label_text:
            consumed = _LABEL_RE.findall(label_text)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != label_text.rstrip(","):
                problems.append(
                    f"line {lineno}: malformed label set "
                    f"{{{label_text}}}")
                continue
            labels = dict(consumed)
        try:
            value = _parse_sample_value(value_text)
        except ValueError:
            problems.append(
                f"line {lineno}: unparseable value {value_text!r}")
            continue
        family = family_of(sample_name)
        if family not in sample_order:
            sample_order.append(family)
        elif sample_order[-1] != family:
            problems.append(
                f"line {lineno}: samples for {family} are not "
                f"contiguous")
        if type_seen.get(family) == "histogram":
            base_key = _label_key(
                {k: v for k, v in labels.items() if k != "le"})
            series = hist.setdefault(family, {}).setdefault(
                base_key, {"buckets": [], "sum": None, "count": None})
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: {sample_name} without le label")
                else:
                    series["buckets"].append(
                        (_parse_sample_value(labels["le"]), value))
            elif sample_name.endswith("_sum"):
                if series["sum"] is not None:
                    problems.append(
                        f"line {lineno}: duplicate {sample_name}")
                series["sum"] = value
            elif sample_name.endswith("_count"):
                if series["count"] is not None:
                    problems.append(
                        f"line {lineno}: duplicate {sample_name}")
                series["count"] = value

    for family, series_map in hist.items():
        for base_key, series in series_map.items():
            where = f"{family}{_format_labels(base_key)}"
            uppers = [u for u, _ in series["buckets"]]
            counts = [c for _, c in series["buckets"]]
            if uppers != sorted(uppers):
                problems.append(f"{where}: le bounds out of order")
            if any(b > a for a, b in zip(counts[1:], counts)):
                problems.append(
                    f"{where}: bucket counts not monotone")
            if not uppers or uppers[-1] != math.inf:
                problems.append(f"{where}: missing +Inf bucket")
            elif series["count"] is None:
                problems.append(f"{where}: missing _count")
            elif counts[-1] != series["count"]:
                problems.append(
                    f"{where}: _count {series['count']} != +Inf bucket "
                    f"{counts[-1]}")
            if series["sum"] is None:
                problems.append(f"{where}: missing _sum")
    return problems


# -- the module-level singleton ----------------------------------------

_NOOP = NoopMetrics()
_active: Union[NoopMetrics, MetricsRegistry] = _NOOP


def metrics() -> Union[NoopMetrics, MetricsRegistry]:
    """The active registry; a no-op singleton unless collection is on."""
    return _active


def set_metrics(registry: Optional[Union[NoopMetrics, MetricsRegistry]]
                ) -> Union[NoopMetrics, MetricsRegistry]:
    """Install ``registry`` (``None`` disables); returns the previous."""
    global _active
    previous = _active
    _active = registry if registry is not None else _NOOP
    return previous


class collecting_metrics:
    """Context manager: collect metrics inside into a fresh registry.

    Yields the registry (so the caller can render it after the block);
    restores the previous singleton on exit.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._previous: Optional[object] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, *exc) -> bool:
        set_metrics(self._previous)
        return False
