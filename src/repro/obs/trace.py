"""Span tracer for the multilevel pipeline and portfolio runtime.

The tracer records *spans* (named durations with arguments), *instant*
events, and *counter* samples, and serialises them in the Chrome
trace-event format that ``chrome://tracing`` and Perfetto load
directly.  Design constraints, in order:

1. **Zero overhead when disabled.**  The module-level singleton
   (:func:`tracer`) is a :class:`NoopTracer` until someone installs a
   real one; instrumented hot paths sample it once per call and guard
   every event construction behind its ``enabled`` flag, so the cost
   of shipped-but-dormant instrumentation is one attribute read per
   coarse operation (an FM call, a coarsening level — never per move
   or per pin).
2. **Multiprocess merge.**  Events carry *raw* monotonic microsecond
   timestamps (``time.perf_counter_ns``), which on Linux come from the
   machine-wide ``CLOCK_MONOTONIC`` and are therefore directly
   comparable between a fork parent and its workers.  Workers collect
   into an in-memory :class:`BufferTracer`, ship the events back on
   the result record, and the parent's :class:`JsonlTraceWriter`
   normalises everything against one trace epoch at write time — so
   the merged file is a single coherent timeline across processes.
3. **Crash-tolerant output.**  The file is written incrementally, one
   event per line.  The trace-event spec explicitly allows the
   trailing ``]`` to be missing, so a trace cut short by a crash still
   loads.

File format: line 1 is ``[``; every following line is one complete
JSON event object followed by a comma.  :func:`read_trace` (used by
``repro trace-summary``) accepts that form, a closed JSON array, and
plain one-object-per-line JSONL.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["Tracer", "NoopTracer", "BufferTracer", "JsonlTraceWriter",
           "tracer", "set_tracer", "tracing", "read_trace", "Event",
           "trace_context", "set_trace_context", "trace_scope"]

Event = Dict[str, object]


# -- request-scoped trace context ---------------------------------------
#
# A small mapping of correlation IDs (request_id, trace_id, exec_id)
# stamped into the args of every span and instant a thread emits while
# a scope is installed — that is what lets a merged multi-process trace
# be regrouped into one tree per request.  Storage is thread-local
# because the service daemon emits from two threads concurrently (the
# asyncio event loop writes request spans while the execution lane's
# worker thread runs portfolios); a forked worker re-installs its
# context explicitly from the Portfolio it executes (see
# runtime.executor), so no fork-inheritance subtleties are involved.

class _TraceContext(threading.local):
    def __init__(self) -> None:
        self.ids: Dict[str, str] = {}


_CONTEXT = _TraceContext()


def trace_context() -> Dict[str, str]:
    """The calling thread's active correlation IDs (possibly empty)."""
    return dict(_CONTEXT.ids)


def set_trace_context(ids: Optional[Dict[str, str]]) -> Dict[str, str]:
    """Replace the calling thread's context; returns the previous one."""
    previous = _CONTEXT.ids
    _CONTEXT.ids = {k: str(v) for k, v in (ids or {}).items()
                    if v is not None}
    return previous


class trace_scope:
    """Context manager: merge correlation IDs into the thread context.

    Nested scopes accumulate (an execution scope inside a request scope
    carries both IDs); ``None`` values are dropped so call sites can
    pass optional IDs unconditionally.  The previous context is
    restored on exit.
    """

    __slots__ = ("_ids", "_previous")

    def __init__(self, **ids):
        self._ids = ids
        self._previous: Optional[Dict[str, str]] = None

    def __enter__(self) -> Dict[str, str]:
        merged = dict(_CONTEXT.ids)
        merged.update((k, str(v)) for k, v in self._ids.items()
                      if v is not None)
        self._previous = _CONTEXT.ids
        _CONTEXT.ids = merged
        return merged

    def __exit__(self, *exc) -> bool:
        _CONTEXT.ids = self._previous or {}
        return False


def _now_us() -> int:
    """Monotonic microseconds; comparable across forked processes."""
    return time.perf_counter_ns() // 1000


class _NullSpan:
    """Reusable context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> Dict[str, object]:
        return {}

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NoopTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is the flag hot paths test; everything else exists so
    instrumentation sites never need an ``is None`` check.
    """

    enabled = False

    def now(self) -> int:
        return 0

    def begin(self) -> int:
        return 0

    def end(self, name: str, start_us: int,
            args: Optional[Dict[str, object]] = None) -> None:
        pass

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, start_us: int,
                 args: Optional[Dict[str, object]] = None,
                 depth: Optional[int] = None) -> None:
        pass

    def instant(self, name: str,
                args: Optional[Dict[str, object]] = None) -> None:
        pass

    def counter(self, name: str, values: Dict[str, float]) -> None:
        pass

    def emit(self, event: Event) -> None:
        pass

    def close(self) -> None:
        pass


class _Span:
    """Context manager produced by :meth:`Tracer.span`.

    Enters by stamping the start time and pushing the nesting depth;
    exits by emitting one complete event.  The yielded ``args`` dict is
    live — callers add result fields (cut, counters) before exit.
    """

    __slots__ = ("_tracer", "_name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self.args = args
        self._start = 0

    def __enter__(self) -> Dict[str, object]:
        self._start = self._tracer.begin()
        return self.args

    def __exit__(self, *exc) -> bool:
        self._tracer.end(self._name, self._start, self.args)
        return False


class Tracer:
    """Base for enabled tracers: builds events, tracks span depth.

    Subclasses implement :meth:`emit` (and :meth:`close`).  All
    timestamps in emitted events are raw monotonic microseconds; the
    serialising writer owns the epoch.
    """

    enabled = True

    def __init__(self) -> None:
        self._depth = 0

    now = staticmethod(_now_us)

    # -- span lifecycle ------------------------------------------------

    def begin(self) -> int:
        """Open a span by hand; pair with :meth:`end`."""
        self._depth += 1
        return _now_us()

    def end(self, name: str, start_us: int,
            args: Optional[Dict[str, object]] = None) -> None:
        self._depth -= 1
        self.complete(name, start_us, args, depth=self._depth)

    def span(self, name: str, **args) -> _Span:
        return _Span(self, name, args)

    # -- event constructors --------------------------------------------

    def complete(self, name: str, start_us: int,
                 args: Optional[Dict[str, object]] = None,
                 depth: Optional[int] = None) -> None:
        """Emit a complete ("X") duration event started at ``start_us``."""
        event: Event = {
            "name": name, "ph": "X", "ts": start_us,
            "dur": _now_us() - start_us,
            "pid": os.getpid(), "tid": threading.get_native_id(),
        }
        a = dict(_CONTEXT.ids)
        if args:
            a.update(args)
        a["depth"] = self._depth if depth is None else depth
        event["args"] = a
        self.emit(event)

    def instant(self, name: str,
                args: Optional[Dict[str, object]] = None) -> None:
        event: Event = {
            "name": name, "ph": "i", "s": "p", "ts": _now_us(),
            "pid": os.getpid(), "tid": threading.get_native_id(),
        }
        a = dict(_CONTEXT.ids)
        if args:
            a.update(args)
        if a:
            event["args"] = a
        self.emit(event)

    def counter(self, name: str, values: Dict[str, float]) -> None:
        self.emit({
            "name": name, "ph": "C", "ts": _now_us(),
            "pid": os.getpid(), "tid": threading.get_native_id(),
            "args": dict(values),
        })

    # -- sink ----------------------------------------------------------

    def emit(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        pass


class BufferTracer(Tracer):
    """Collects events in memory; the worker-side collection sink."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def drain(self) -> List[Event]:
        events, self.events = self.events, []
        return events


class JsonlTraceWriter(Tracer):
    """Streams events to a trace file, one JSON object per line.

    Timestamps are normalised against the writer's epoch (taken at
    construction, or inherited via ``epoch_us`` so several writers can
    share one timeline).  Merged worker events pass through the same
    :meth:`emit`, so one normalisation rule covers every process.
    """

    def __init__(self, path, epoch_us: Optional[int] = None):
        super().__init__()
        self.path = str(path)
        self.epoch_us = _now_us() if epoch_us is None else epoch_us
        self._file = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._file.write("[\n")
        self.emit({"name": "process_name", "ph": "M", "ts": self.epoch_us,
                   "pid": os.getpid(), "tid": threading.get_native_id(),
                   "args": {"name": "repro"}})

    def emit(self, event: Event) -> None:
        event = dict(event)
        event["ts"] = int(event.get("ts", self.epoch_us)) - self.epoch_us
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            if not self._file.closed:
                self._file.write(line + ",\n")

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


# -- the module-level singleton ----------------------------------------

_NOOP = NoopTracer()
_active: Union[NoopTracer, Tracer] = _NOOP


def tracer() -> Union[NoopTracer, Tracer]:
    """The active tracer; a no-op singleton unless tracing is on."""
    return _active


def set_tracer(t: Optional[Union[NoopTracer, Tracer]]
               ) -> Union[NoopTracer, Tracer]:
    """Install ``t`` (``None`` disables); returns the previous tracer."""
    global _active
    previous = _active
    _active = t if t is not None else _NOOP
    return previous


class tracing:
    """Context manager: trace everything inside to ``target``.

    ``target`` is a filesystem path (a :class:`JsonlTraceWriter` is
    opened and closed around the block) or an existing tracer (left
    open for the caller).  The previous tracer is restored on exit.
    """

    def __init__(self, target):
        if isinstance(target, (NoopTracer, Tracer)):
            self.tracer = target
            self._owns = False
        else:
            self.tracer = JsonlTraceWriter(target)
            self._owns = True
        self._previous: Optional[Union[NoopTracer, Tracer]] = None

    def __enter__(self) -> Union[NoopTracer, Tracer]:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> bool:
        set_tracer(self._previous)
        if self._owns:
            self.tracer.close()
        return False


# -- reading traces back -----------------------------------------------

def _parse_lines(lines) -> Iterator[Event]:
    """Parse stripped JSON lines with the checkpoint tolerance rules:
    a truncated *final* line (the signature of a crash or an in-flight
    writer) is dropped; corruption anywhere else raises a clean
    :class:`~repro.errors.ReproError`."""
    from ..errors import ReproError
    pending = []
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            pending.append((lineno, json.loads(line)))
        except json.JSONDecodeError:
            pending.append((lineno, None))
        if len(pending) > 1:
            held_lineno, event = pending.pop(0)
            if event is None:
                raise ReproError(
                    f"corrupt trace event at line {held_lineno}; "
                    "only a truncated final line is tolerated")
            yield event
    if pending and pending[0][1] is not None:
        yield pending[0][1]


def read_trace(path) -> Iterator[Event]:
    """Yield events from a trace file written by this module.

    Accepts the incremental array form this module writes (``[`` line,
    then ``{...},`` lines, optionally unterminated), a closed JSON
    array, and plain JSONL.  An empty file yields nothing; a truncated
    final line — a crashed or still-running writer — is dropped, the
    same tolerance rule :mod:`repro.runtime.checkpoint` applies.
    """
    with open(path, "r", encoding="utf-8") as f:
        first = f.read(1)
        if first == "":
            return
        if first != "[":
            # Plain JSONL: one complete object per line.
            f.seek(0)
            yield from _parse_lines(line.strip().rstrip(",") for line in f)
            return
        rest = f.read().lstrip("\n")
    try:
        # A properly closed array parses in one go.
        for event in json.loads("[" + rest):
            yield event
        return
    except json.JSONDecodeError:
        pass
    yield from _parse_lines(
        line.strip().rstrip(",").rstrip("]").rstrip(",")
        for line in rest.splitlines())
