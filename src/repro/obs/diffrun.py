"""``repro diff-run``: align two recordings, explain the divergence.

Given two decision recordings of the *same circuit* — csr vs numpy
kernels, seed vs seed, or before/after a code change — this module
answers the question the hand-pinned golden cuts cannot: **which
decision diverged first, and in what context?**

Alignment rules (DESIGN.md §16 is normative):

1. Recordings are grouped into per-start blocks (``start`` headers;
   a headerless library recording is one anonymous start) and aligned
   start-by-start on the start index — a parallel executor may write
   blocks in completion order, so file order is never compared.
2. Within a start, only *decision* events participate in alignment:
   ``merge``, ``mv``, ``batch``, ``polish``.  Structural markers
   (``level``, ``fm``, ``pass``…) provide context but cannot diverge
   on their own — a differing structure always follows a differing
   decision (or a differing event *count*, reported as exhaustion).
3. Two decision events at the same ordinal match when their type and
   decision key agree: ``(v, w)`` for a merge, ``(m, s, c)`` for a
   move, ``(mods, c)`` for a batch/polish commit.  Consequence fields
   with float arithmetic (``a0``) are excluded — reassociated sums may
   differ harmlessly across kernel families.
4. The first mismatching ordinal is *the* divergence; everything after
   it is cascade.  Its report carries the local context of both
   streams: the enclosing level / refinement block / pass, and a
   window of surrounding raw events (where tie handling, the balance
   clip, or the plateau rule can be read off directly).

On top of the first-divergence report, :func:`diff_recordings` builds
each stream's **cut-vs-move curve** (cumulative decision ordinal
against recorded cut) so the *consequence* of the divergence is
visible: two curves that split at the divergence ordinal and re-join
near the end mean different paths to equal quality; a persistent gap
means one family genuinely refines better on this input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .recorder import DECISION_EVENTS, group_starts, read_record

__all__ = ["Divergence", "DiffReport", "diff_events", "diff_recordings"]

#: Raw events shown on each side of a divergence.
_CONTEXT_WINDOW = 3


def _decision_key(ev: Dict[str, object]):
    t = ev.get("t")
    if t == "merge":
        return ("merge", ev.get("v"), ev.get("w"))
    if t == "mv":
        return ("mv", ev.get("m"), ev.get("s"), ev.get("c"))
    if t in ("batch", "polish"):
        return (t, tuple(ev.get("mods") or ()), ev.get("c"))
    return (t,)


@dataclass
class _Cursor:
    """Walk of one stream: decision events with their structural
    context and raw positions."""

    decisions: List[Tuple[int, Dict[str, object]]] = \
        field(default_factory=list)
    context: List[Optional[Dict[str, object]]] = field(default_factory=list)
    curve: List[Tuple[int, int]] = field(default_factory=list)

    @classmethod
    def scan(cls, events: Sequence[Dict[str, object]]) -> "_Cursor":
        cur = cls()
        fm: Optional[Dict[str, object]] = None
        ordinal = 0
        for pos, ev in enumerate(events):
            t = ev.get("t")
            if t == "fm":
                fm = ev
            if t in DECISION_EVENTS:
                cur.decisions.append((pos, ev))
                cur.context.append(fm)
                if isinstance(ev.get("c"), int):
                    cur.curve.append((ordinal, ev["c"]))
                ordinal += 1
        return cur


def _strip_init(ev: Optional[Dict[str, object]]):
    if ev is None:
        return None
    out = dict(ev)
    init = out.pop("init", None)
    if isinstance(init, str):
        out["modules"] = len(init)
    return out


@dataclass
class Divergence:
    """The first diverging decision of one aligned start pair."""

    start: int
    ordinal: int                       #: decision ordinal within the start
    a: Optional[Dict[str, object]]     #: diverging event of stream A
    b: Optional[Dict[str, object]]     #: ``None``: stream exhausted
    block_a: Optional[Dict[str, object]] = None   #: enclosing fm event
    block_b: Optional[Dict[str, object]] = None
    window_a: List[Dict[str, object]] = field(default_factory=list)
    window_b: List[Dict[str, object]] = field(default_factory=list)

    def describe(self) -> str:
        if self.a is None or self.b is None:
            side = "A" if self.a is None else "B"
            return (f"start {self.start}: stream {side} ends after "
                    f"{self.ordinal} decisions; the other continues")
        ta, tb = self.a.get("t"), self.b.get("t")
        if ta != tb:
            return (f"start {self.start}, decision {self.ordinal}: "
                    f"event kind diverges — A has {ta!r}, B has {tb!r} "
                    f"(sequential vs batched refinement fork)")
        return (f"start {self.start}, decision {self.ordinal}: "
                f"{ta} decisions differ — A {self.a} vs B {self.b}")


@dataclass
class DiffReport:
    """Outcome of aligning two recordings."""

    starts_compared: int = 0
    starts_only_a: List[int] = field(default_factory=list)
    starts_only_b: List[int] = field(default_factory=list)
    decisions_compared: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    #: per diverging start: (ordinal, cut) curves of both streams.
    curves: Dict[int, Dict[str, List[Tuple[int, int]]]] = \
        field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return (not self.divergences and not self.starts_only_a
                and not self.starts_only_b)

    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    # -- rendering -------------------------------------------------------

    @staticmethod
    def _curve_rows(curve: List[Tuple[int, int]],
                    points: int = 12) -> List[Tuple[int, int]]:
        if len(curve) <= points:
            return curve
        step = (len(curve) - 1) / (points - 1)
        return [curve[round(i * step)] for i in range(points)]

    def render(self) -> str:
        lines = [f"{self.starts_compared} start(s) aligned, "
                 f"{self.decisions_compared} decision(s) compared"]
        for side, extra in (("A", self.starts_only_a),
                            ("B", self.starts_only_b)):
            if extra:
                lines.append(f"start(s) only in {side}: "
                             f"{sorted(extra)}")
        if self.identical:
            lines.append("recordings are decision-identical")
            return "\n".join(lines)
        for div in self.divergences:
            lines.append("")
            lines.append(f"first divergence — {div.describe()}")
            for name, block in (("A", div.block_a), ("B", div.block_b)):
                if block is not None:
                    lines.append(f"  {name} context: refinement block "
                                 f"{_strip_init(block)}")
            for name, window in (("A", div.window_a), ("B", div.window_b)):
                if window:
                    lines.append(f"  {name} events around divergence:")
                    lines.extend(f"    {e}" for e in window)
            curves = self.curves.get(div.start)
            if curves:
                lines.append("  cut vs decision ordinal "
                             "(divergence at "
                             f"ordinal {div.ordinal}):")
                for name in ("a", "b"):
                    rows = self._curve_rows(curves[name])
                    lines.append(
                        f"    {name.upper()}: "
                        + " ".join(f"{o}:{c}" for o, c in rows))
        return "\n".join(lines)


def diff_events(events_a, events_b) -> DiffReport:
    """Align two recordings' events (see module docstring for rules)."""
    blocks_a = group_starts(events_a)
    blocks_b = group_starts(events_b)
    report = DiffReport()
    report.starts_only_a = sorted(set(blocks_a) - set(blocks_b))
    report.starts_only_b = sorted(set(blocks_b) - set(blocks_a))
    for index in sorted(set(blocks_a) & set(blocks_b)):
        report.starts_compared += 1
        seq_a = blocks_a[index]
        seq_b = blocks_b[index]
        cur_a = _Cursor.scan(seq_a)
        cur_b = _Cursor.scan(seq_b)
        n = min(len(cur_a.decisions), len(cur_b.decisions))
        divergence = None
        for k in range(n):
            pos_a, ev_a = cur_a.decisions[k]
            pos_b, ev_b = cur_b.decisions[k]
            report.decisions_compared += 1
            if _decision_key(ev_a) != _decision_key(ev_b):
                divergence = Divergence(
                    start=index, ordinal=k, a=ev_a, b=ev_b,
                    block_a=cur_a.context[k], block_b=cur_b.context[k],
                    window_a=seq_a[max(0, pos_a - _CONTEXT_WINDOW):
                                   pos_a + _CONTEXT_WINDOW + 1],
                    window_b=seq_b[max(0, pos_b - _CONTEXT_WINDOW):
                                   pos_b + _CONTEXT_WINDOW + 1])
                break
        if divergence is None and \
                len(cur_a.decisions) != len(cur_b.decisions):
            longer = cur_a if len(cur_a.decisions) > n else cur_b
            pos, ev = longer.decisions[n]
            divergence = Divergence(
                start=index, ordinal=n,
                a=None if longer is cur_b else ev,
                b=None if longer is cur_a else ev,
                block_a=cur_a.context[n] if longer is cur_a else None,
                block_b=cur_b.context[n] if longer is cur_b else None)
        if divergence is not None:
            report.divergences.append(divergence)
            report.curves[index] = {"a": cur_a.curve, "b": cur_b.curve}
    return report


def diff_recordings(path_a: Union[str, Path],
                    path_b: Union[str, Path]) -> DiffReport:
    """Align the two recording files and report the first divergence."""
    return diff_events(list(read_record(path_a)),
                       list(read_record(path_b)))
