"""Append-only JSONL run ledger: every portfolio outcome, on disk.

PR 4 made the pipeline *emit* telemetry; this module makes it
*remember*.  Every portfolio execution — ``run_cell``, ``run_matrix``,
the CLI, the benchmark scripts: everything funnels through
:func:`repro.runtime.execute` — appends one JSON line describing its
outcome to the active ledger, so baseline comparisons can be
statistical (many recorded samples) instead of single-shot wall-clock
deltas that are mostly noise.

Activation
----------
The ledger is **on by default** and controlled by the ``REPRO_LEDGER``
environment variable:

* unset — append to ``.repro/ledger.jsonl`` under the current
  directory;
* a path — append there instead;
* ``off`` / ``0`` / ``none`` / ``false`` / empty — record nothing
  (the test suite sets this so unit tests do not grow a ledger).

Entry schema (version 1)
------------------------
One JSON object per line.  Stable identity fields: ``schema``,
``kind``, ``algorithm``, ``circuit``, ``runs``, ``jobs``, ``seed``,
``fingerprint`` (SHA-256 of :meth:`PortfolioResult.fingerprint`, the
scheduling-independent outcome digest), ``config_hash``, ``git_sha``,
``kernel_mode``, ``numpy_version`` (``None`` when numpy is absent —
the vectorized kernels' results depend on it the way scalar results
depend on the Python version), ``statuses``,
``cuts``/``min_cut``/``median_cut``.  Readers treat every field as
optional, so entries written before a field existed stay readable.
Volatile fields (excluded by :func:`stable_view`, the
"byte-stable modulo timestamps" contract): ``ts``, ``wall_seconds``,
``cpu_seconds``, ``run_wall``, ``run_cpu``, ``phases``.

``phases`` — per-phase span rollups (``{name: {count, total_us}}``) —
is present only when the run was traced to a file; the ledger never
enables tracing on its own (recording must not perturb what it
records).

Reading is tolerant the way :mod:`repro.runtime.checkpoint` is
tolerant of kill -9, but looser — a ledger is shared, append-only, and
possibly written by concurrent processes, so *any* corrupt or
truncated line is skipped with a warning instead of poisoning every
future read.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from statistics import median
from typing import Dict, Iterator, List, Optional, Union

from .log import get_logger

_log = get_logger("obs.ledger")

__all__ = ["LEDGER_ENV", "LEDGER_VERSION", "DEFAULT_LEDGER_PATH",
           "VOLATILE_FIELDS", "ledger_path", "ledger_enabled",
           "append_entry", "read_ledger", "read_jsonl_objects",
           "record_result", "stable_view", "git_sha"]

#: Environment variable controlling the ledger (path, or an off value).
LEDGER_ENV = "REPRO_LEDGER"

#: Current entry schema version.
LEDGER_VERSION = 1

#: Where entries go when ``REPRO_LEDGER`` is unset.
DEFAULT_LEDGER_PATH = os.path.join(".repro", "ledger.jsonl")

_OFF_VALUES = ("off", "0", "none", "false", "")

#: Fields that legitimately differ between two runs of the same seeded
#: portfolio (timestamps and timings).  Everything else is a pure
#: function of the seed — :func:`stable_view` strips these so the
#: byte-stability contract can be asserted and so the comparator never
#: keys on noise.
VOLATILE_FIELDS = frozenset(
    {"ts", "wall_seconds", "cpu_seconds", "run_wall", "run_cpu", "phases",
     "trace_id", "peak_mem_bytes"})


def ledger_path() -> Optional[Path]:
    """The active ledger path, or ``None`` when recording is off."""
    raw = os.environ.get(LEDGER_ENV)
    if raw is None:
        return Path(DEFAULT_LEDGER_PATH)
    if raw.strip().lower() in _OFF_VALUES:
        return None
    return Path(raw)


def ledger_enabled() -> bool:
    return ledger_path() is not None


_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def git_sha(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """Short git SHA of the working tree at ``cwd``; ``None`` if
    unavailable (no git, not a repository).  Cached per directory —
    the ledger stamps every entry, and forking a subprocess per
    recorded run would dominate small portfolios."""
    key = str(cwd or os.getcwd())
    if key not in _GIT_SHA_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=key, capture_output=True, text=True, timeout=5)
            _GIT_SHA_CACHE[key] = (out.stdout.strip()
                                   if out.returncode == 0 else None)
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE[key] = None
    return _GIT_SHA_CACHE[key]


def _numpy_version() -> Optional[str]:
    """Installed numpy version, or ``None`` — stamped into every entry
    so numpy-mode fingerprints can be audited against the library that
    produced them."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    return numpy.__version__


def _config_hash(portfolio, jobs: int) -> str:
    """Digest of the knobs that shape a portfolio's outcomes.

    Two entries with equal ``config_hash`` ran the same experiment
    (same algorithm, circuit, runs, seed, robustness knobs), so their
    cut samples are comparable; ``jobs`` is deliberately included in
    the entry but *not* the hash — worker count never changes cuts.
    """
    knobs = {
        "algorithm": getattr(portfolio.algorithm, "name", "anonymous"),
        "circuit": portfolio.hg.name,
        "runs": portfolio.runs,
        "seed": str(portfolio.seed),
        "budget_seconds": portfolio.budget_seconds,
        "retries": portfolio.retries,
        "verify": repr(portfolio.verify),
        "backoff_seconds": portfolio.backoff_seconds,
        "faults": repr(portfolio.faults) if portfolio.faults else None,
    }
    canon = json.dumps(knobs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


def _phase_rollup(trace_path: Union[str, Path]
                  ) -> Optional[Dict[str, Dict[str, int]]]:
    """Reduce a just-written trace file to ``{phase: {count, total_us}}``."""
    from .summary import summarize_trace
    try:
        summary = summarize_trace(trace_path)
    except Exception as exc:  # never let telemetry rollups kill a run
        _log.warning("could not roll up trace %s for the ledger: %s",
                     trace_path, exc)
        return None
    if not summary.phases:
        return None
    return {name: {"count": stats.count, "total_us": stats.total_us}
            for name, stats in sorted(summary.phases.items())}


def build_entry(result, portfolio, jobs: int = 1,
                trace_path: Optional[str] = None) -> Dict[str, object]:
    """Construct a schema-v1 ledger entry from a finished portfolio.

    ``result`` is a :class:`~repro.runtime.PortfolioResult`;
    ``portfolio`` the :class:`~repro.runtime.Portfolio` that produced
    it.  Pure construction — nothing is written.
    """
    from ..kernels import kernel_mode
    from ..runtime.records import fingerprint_digest
    cuts = result.cuts
    statuses: Dict[str, int] = {}
    for record in result.records:
        statuses[record.status] = statuses.get(record.status, 0) + 1
    fingerprint = fingerprint_digest(result.fingerprint())
    entry: Dict[str, object] = {
        "schema": LEDGER_VERSION,
        "kind": "portfolio",
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "algorithm": result.algorithm,
        "circuit": result.circuit,
        "runs": result.runs,
        "jobs": jobs,
        "seed": str(portfolio.seed),
        "fingerprint": fingerprint,
        "config_hash": _config_hash(portfolio, jobs),
        "git_sha": git_sha(),
        "kernel_mode": kernel_mode(),
        "numpy_version": _numpy_version(),
        "statuses": statuses,
        "cuts": list(cuts),
        "min_cut": min(cuts) if cuts else None,
        "median_cut": median(cuts) if cuts else None,
        "wall_seconds": round(result.wall_seconds, 6),
        "cpu_seconds": round(result.cpu_seconds, 6),
        "run_wall": [round(r.wall_seconds, 6) for r in result.records],
        "run_cpu": [round(r.cpu_seconds, 6) for r in result.records],
    }
    trace_id = getattr(portfolio, "trace_id", None)
    if trace_id is not None:
        # Request correlation: the same ID the serving path echoes in
        # the response and stamps into every span of the merged trace.
        entry["trace_id"] = trace_id
    peak = getattr(result, "peak_mem_bytes", None)
    if peak is not None:
        entry["peak_mem_bytes"] = peak
    if trace_path:
        phases = _phase_rollup(trace_path)
        if phases is not None:
            entry["phases"] = phases
    return entry


def append_entry(entry: Dict[str, object],
                 path: Union[str, Path, None] = None) -> Optional[Path]:
    """Append one entry to the ledger (explicit ``path`` or the active
    one).  Returns the path written, or ``None`` when recording is off.

    One ``open(append)``/``write``/``close`` per entry: a single line,
    flushed, so concurrent recorders interleave whole lines.
    """
    target = Path(path) if path is not None else ledger_path()
    if target is None:
        return None
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"),
                      default=str)
    with open(target, "a", encoding="utf-8") as f:
        f.write(line + "\n")
    return target


def record_result(result, portfolio, jobs: int = 1,
                  trace_path: Optional[str] = None
                  ) -> Optional[Dict[str, object]]:
    """Build and append a ledger entry for a finished portfolio.

    The runtime's one recording hook (:func:`repro.runtime.execute`
    calls it after every portfolio).  Never raises: a full disk or
    read-only checkout costs a warning, not the sweep.
    """
    if not ledger_enabled():
        return None
    try:
        entry = build_entry(result, portfolio, jobs=jobs,
                            trace_path=trace_path)
        append_entry(entry)
        return entry
    except Exception as exc:
        _log.warning("could not record run in ledger: %s", exc)
        return None


def read_jsonl_objects(path: Union[str, Path], kind: str = "jsonl"
                       ) -> Iterator[Dict[str, object]]:
    """Tolerantly yield JSON objects from an append-only JSONL file.

    The shared reading discipline for every append-only stream this
    package writes (the run ledger, the service's access log): corrupt
    or truncated lines — including a final line cut short by a killed
    writer — and non-object lines are skipped with a warning instead of
    poisoning every future read.  ``kind`` labels the warnings.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                _log.warning("%s: skipping corrupt %s line %d",
                             path, kind, lineno)
                continue
            if not isinstance(entry, dict):
                _log.warning("%s: skipping non-object %s line %d",
                             path, kind, lineno)
                continue
            yield entry


def read_ledger(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Yield entries from a ledger file, oldest first.

    Corrupt or truncated lines (interrupted writers, concurrent
    appends across filesystems) are skipped with a warning; entries
    from a *newer* schema than this reader understands are skipped the
    same way instead of being misinterpreted.
    """
    path = Path(path)
    for entry in read_jsonl_objects(path, kind="ledger"):
        schema = entry.get("schema")
        if not isinstance(schema, int) or schema > LEDGER_VERSION:
            _log.warning("%s: skipping ledger entry with unsupported "
                         "schema %r", path, schema)
            continue
        yield entry


def stable_view(entry: Dict[str, object]) -> Dict[str, object]:
    """The entry minus its volatile (timestamp/timing) fields.

    Two same-seed runs of the same portfolio produce identical stable
    views — the determinism contract the ledger tests pin.
    """
    return {k: v for k, v in entry.items() if k not in VOLATILE_FIELDS}
