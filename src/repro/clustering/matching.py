"""The Match coarsening algorithm (Figure 3) and baseline matchers.

``Match`` visits modules in a random order; each unmatched module tries
to pair with the unmatched neighbour of highest connectivity

    conn(v, w) = (1 / (A(v) * A(w))) * sum over shared nets e of
                 1 / (|e| - 1)

(the ``1/(|e|-1)`` term emphasises small nets; the area term prefers
small modules, preventing unbalanced cluster growth — Section III-A).
Nets with more than ``max_conn_net_size`` (10) modules are ignored when
computing ``conn``.

The **matching ratio** ``R`` is the paper's key addition: matching stops
once ``nMatch / |V| >= R``, so ``R < 1`` coarsens more slowly and yields
more levels in the multilevel hierarchy.  Every module left unmatched
becomes a singleton cluster.

Two simpler schemes are included as coarsening baselines/ablations:
``random`` maximal matching (Chaco [22]) and ``heavy`` connectivity
matching without the area preference (Metis-style heavy-edge [27]).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..errors import ClusteringError, ConfigError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled, numpy_enabled
from ..rng import SeedLike, make_rng, random_permutation
from .clustering import Clustering

__all__ = ["match", "connectivity", "MATCHING_SCHEMES",
           "DEFAULT_MAX_CONN_NET_SIZE"]

MATCHING_SCHEMES = ("conn", "heavy", "random")

#: Nets larger than this are ignored by ``conn`` (Section III-A).
DEFAULT_MAX_CONN_NET_SIZE = 10


def connectivity(hg: Hypergraph, v: int, w: int,
                 max_net_size: int = DEFAULT_MAX_CONN_NET_SIZE) -> float:
    """Reference (non-incremental) ``conn(v, w)``; used by tests."""
    shared = 0.0
    nets_w = set(hg.nets(w))
    for e in hg.nets(v):
        if e in nets_w and hg.net_size(e) <= max_net_size:
            shared += hg.net_weight(e) / (hg.net_size(e) - 1)
    return shared / (hg.area(v) * hg.area(w))


def _neighbour_scores(hg: Hypergraph, v: int, matched: List[bool],
                      max_net_size: int) -> Dict[int, float]:
    """Net-connectivity score of each unmatched neighbour of ``v``.

    This is the ``Conn`` array + neighbour set ``S`` of Section III-A,
    realised as a dict so reinitialisation is free.
    """
    scores: Dict[int, float] = {}
    if csr_enabled():
        # Flat-view kernel: the scan is the coarsening hot path (one
        # call per matched module), so bind the materialised vectors
        # locally and use dict.get directly.
        view = hg.csr
        net_sizes = view.sizes_list
        net_weights = view.weights_list
        net_pins = view.net_pins
        get = scores.get
        for e in view.module_nets[v]:
            size = net_sizes[e]
            if size > max_net_size:
                continue
            contribution = net_weights[e] / (size - 1)
            for w in net_pins[e]:
                if w != v and not matched[w]:
                    scores[w] = get(w, 0.0) + contribution
        return scores
    for e in hg.nets(v):
        size = hg.net_size(e)
        if size > max_net_size:
            continue
        contribution = hg.net_weight(e) / (size - 1)
        for w in hg.pins(e):
            if w != v and not matched[w]:
                scores[w] = scores.get(w, 0.0) + contribution
    return scores


#: Below this module count the per-call overhead of building the pair
#: table outweighs the scalar scorer; identical results either way.
_NP_MATCH_MIN_MODULES = 128


def _pair_table(hg: Hypergraph, max_net_size: int, scheme: str):
    """All ordered neighbour pairs with their summed net contributions.

    Vectorized twin of running :func:`_neighbour_scores` for every
    module with nothing matched: returns ``(xrow, nbr, None)`` where
    module ``v``'s neighbours are ``nbr[xrow[v]:xrow[v+1]]``; each
    pair's score is ``sum over shared small nets e of
    w_e / (|e| - 1)``.  Scores for a pair are accumulated in
    ascending net order via ``np.add.at`` (an in-order unbuffered
    loop), which is exactly the order the scalar scorer adds them in —
    ``module_nets[v]`` is ascending — so every float is bit-identical.
    For the ``conn`` scheme the area normalisation
    ``score / (A(v) * A(w))`` is applied here, vectorized: it is the
    exact per-pair expression the scalar selection evaluates, computed
    elementwise, so every quotient is bit-identical too.  The
    ``matched`` / ``restrict`` filters don't change any pair's score,
    only its eligibility, so the selection loop applies them at visit
    time just like the scalar path.
    """
    import numpy as np
    view = hg.csr.np
    sizes = view.net_sizes
    eligible = (sizes <= max_net_size) & (sizes >= 2)
    pair_v = []
    pair_w = []
    pair_e = []
    pair_c = []
    for s_obj in np.unique(sizes[eligible]):
        s = int(s_obj)
        ids = np.flatnonzero(eligible & (sizes == s))
        mat = view.pins_flat[view.xpins[ids][:, None]
                             + np.arange(s, dtype=np.int64)]
        ii, jj = np.nonzero(~np.eye(s, dtype=bool))
        pair_v.append(mat[:, ii].ravel())
        pair_w.append(mat[:, jj].ravel())
        pair_e.append(np.repeat(ids, s * (s - 1)))
        contribution = view.net_weights[ids].astype(np.float64) / (s - 1)
        pair_c.append(np.repeat(contribution, s * (s - 1)))
    n = view.num_modules
    if not pair_v:
        xrow = np.zeros(n + 1, dtype=np.int64)
        return xrow.tolist(), [], None
    all_v = np.concatenate(pair_v)
    all_w = np.concatenate(pair_w)
    all_e = np.concatenate(pair_e)
    all_c = np.concatenate(pair_c)
    m = hg.num_nets
    if n * n * m < (1 << 62):
        # One radix sort of a packed (v, w, e) key beats three lexsort
        # passes; the key is unique per entry so ordering is total.
        key = (all_v.astype(np.int64) * n + all_w) * m + all_e
        order = np.argsort(key, kind="stable")
    else:  # pragma: no cover - needs ~2^21 modules
        order = np.lexsort((all_e, all_w, all_v))
    vs = all_v[order]
    ws = all_w[order]
    fresh = np.empty(vs.size, dtype=bool)
    fresh[0] = True
    fresh[1:] = (vs[1:] != vs[:-1]) | (ws[1:] != ws[:-1])
    slot = np.cumsum(fresh) - 1
    score = np.zeros(int(slot[-1]) + 1)
    np.add.at(score, slot, all_c[order])
    v_u = vs[fresh]
    w_u = ws[fresh]
    if scheme == "conn":
        score /= view.areas[v_u] * view.areas[w_u]
    if scheme != "random":
        # Within each row sort by (score desc, id asc).  The scalar
        # selection scans ascending ids taking strict improvements, so
        # its winner is the highest-scoring eligible neighbour with the
        # smallest id among ties — exactly the first eligible entry of
        # this ordering.  Selection then never reads the scores at all.
        # (All scores are positive, so the scalar ``> 0.0`` floor never
        # bites.)  The ``random`` scheme keeps ascending-id rows: its
        # candidate list order feeds ``rng.choice``.
        # Stable two-key sort: rows arrive with ascending ids, so equal
        # scores keep ascending-id order without a third key pass.
        order2 = np.lexsort((-score, v_u))
        w_u = w_u[order2]
    xrow = np.concatenate(
        (np.zeros(1, dtype=np.int64),
         np.cumsum(np.bincount(v_u, minlength=n))))
    return xrow.tolist(), w_u.tolist(), None


def match(hg: Hypergraph,
          ratio: float = 1.0,
          scheme: str = "conn",
          max_conn_net_size: int = DEFAULT_MAX_CONN_NET_SIZE,
          seed: SeedLike = None,
          rng: Optional[random.Random] = None,
          restrict: Optional[List[int]] = None) -> Clustering:
    """The ``Match`` procedure (Figure 3).

    Parameters
    ----------
    ratio:
        Matching ratio ``R`` in ``(0, 1]``: the fraction of modules to
        match before stopping.
    scheme:
        ``"conn"`` — the paper's connectivity matching;
        ``"heavy"`` — same but without the area preference;
        ``"random"`` — uniform choice among unmatched neighbours.
    restrict:
        Optional per-module labels; two modules may only be matched
        when their labels are equal.  This is the restricted coarsening
        that V-cycle iteration (hMETIS-style) uses to keep an existing
        partition representable at every coarse level.
    """
    if not 0 < ratio <= 1:
        raise ClusteringError(f"matching ratio must be in (0, 1], got {ratio}")
    if scheme not in MATCHING_SCHEMES:
        raise ConfigError(
            f"scheme must be one of {MATCHING_SCHEMES}, got {scheme!r}")
    if restrict is not None and len(restrict) != hg.num_modules:
        raise ClusteringError(
            f"restrict has length {len(restrict)}, expected "
            f"{hg.num_modules}")
    rng = rng if rng is not None else make_rng(seed)

    # Decision recording: one ``merge`` event per opened cluster; the
    # leftover singletons of Steps 8-10 are implicit (ascending ids).
    from ..obs import recorder
    rec = recorder()
    rec_on = rec.enabled

    n = hg.num_modules
    areas = hg.csr.areas_list if csr_enabled() else None
    perm = random_permutation(n, rng)
    matched = [False] * n
    cluster_of = [-1] * n
    num_clusters = 0
    n_match = 0

    # numpy kernels: all pair scores are precomputed in one vectorized
    # sweep; the visit loop below then only filters and tie-breaks.
    # Scores, candidate order, and therefore the whole matching are
    # bit-identical to the scalar scorer (see _pair_table).
    use_table = numpy_enabled() and n >= _NP_MATCH_MIN_MODULES
    if use_table:
        xrow, nbr, nbr_score = _pair_table(hg, max_conn_net_size, scheme)

    for j in range(n):
        if n_match / n >= ratio:
            break
        v = perm[j]
        if matched[v]:
            continue
        # Step 4: open a new cluster holding v.
        cluster = num_clusters
        num_clusters += 1
        cluster_of[v] = cluster
        matched[v] = True

        # Step 5: best unmatched partner under the chosen scheme.
        best = -1
        if use_table:
            a, b = xrow[v], xrow[v + 1]
            if scheme == "random":
                candidates = [w for w in nbr[a:b]
                              if not matched[w]
                              and (restrict is None
                                   or restrict[w] == restrict[v])]
                if candidates:
                    best = rng.choice(candidates)
            else:
                # Rows are pre-sorted by (score desc, id asc) with the
                # conn normalisation applied (see _pair_table), so the
                # first eligible neighbour is the scalar loop's winner.
                if restrict is None:
                    for i in range(a, b):
                        w = nbr[i]
                        if not matched[w]:
                            best = w
                            break
                else:
                    rv = restrict[v]
                    for i in range(a, b):
                        w = nbr[i]
                        if not matched[w] and restrict[w] == rv:
                            best = w
                            break
        else:
            scores = _neighbour_scores(hg, v, matched, max_conn_net_size)
            if restrict is not None:
                scores = {w: s for w, s in scores.items()
                          if restrict[w] == restrict[v]}
            if scores:
                if scheme == "random":
                    best = rng.choice(sorted(scores))
                else:
                    area_v = areas[v] if areas is not None else hg.area(v)
                    best_score = 0.0
                    for w in sorted(scores):
                        s = scores[w]
                        if scheme == "conn":
                            s /= area_v * (areas[w] if areas is not None
                                           else hg.area(w))
                        if s > best_score:
                            best_score = s
                            best = w
        # Step 6: close the pair.
        if best >= 0:
            cluster_of[best] = cluster
            matched[best] = True
            n_match += 2
        if rec_on:
            rec.emit({"t": "merge", "v": v, "w": best})

    # Steps 8-10: every remaining module becomes a singleton cluster.
    for v in range(n):
        if not matched[v]:
            cluster_of[v] = num_clusters
            num_clusters += 1

    return Clustering(cluster_of)
