"""The Match coarsening algorithm (Figure 3) and baseline matchers.

``Match`` visits modules in a random order; each unmatched module tries
to pair with the unmatched neighbour of highest connectivity

    conn(v, w) = (1 / (A(v) * A(w))) * sum over shared nets e of
                 1 / (|e| - 1)

(the ``1/(|e|-1)`` term emphasises small nets; the area term prefers
small modules, preventing unbalanced cluster growth — Section III-A).
Nets with more than ``max_conn_net_size`` (10) modules are ignored when
computing ``conn``.

The **matching ratio** ``R`` is the paper's key addition: matching stops
once ``nMatch / |V| >= R``, so ``R < 1`` coarsens more slowly and yields
more levels in the multilevel hierarchy.  Every module left unmatched
becomes a singleton cluster.

Two simpler schemes are included as coarsening baselines/ablations:
``random`` maximal matching (Chaco [22]) and ``heavy`` connectivity
matching without the area preference (Metis-style heavy-edge [27]).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..errors import ClusteringError, ConfigError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled
from ..rng import SeedLike, make_rng, random_permutation
from .clustering import Clustering

__all__ = ["match", "connectivity", "MATCHING_SCHEMES",
           "DEFAULT_MAX_CONN_NET_SIZE"]

MATCHING_SCHEMES = ("conn", "heavy", "random")

#: Nets larger than this are ignored by ``conn`` (Section III-A).
DEFAULT_MAX_CONN_NET_SIZE = 10


def connectivity(hg: Hypergraph, v: int, w: int,
                 max_net_size: int = DEFAULT_MAX_CONN_NET_SIZE) -> float:
    """Reference (non-incremental) ``conn(v, w)``; used by tests."""
    shared = 0.0
    nets_w = set(hg.nets(w))
    for e in hg.nets(v):
        if e in nets_w and hg.net_size(e) <= max_net_size:
            shared += hg.net_weight(e) / (hg.net_size(e) - 1)
    return shared / (hg.area(v) * hg.area(w))


def _neighbour_scores(hg: Hypergraph, v: int, matched: List[bool],
                      max_net_size: int) -> Dict[int, float]:
    """Net-connectivity score of each unmatched neighbour of ``v``.

    This is the ``Conn`` array + neighbour set ``S`` of Section III-A,
    realised as a dict so reinitialisation is free.
    """
    scores: Dict[int, float] = {}
    if csr_enabled():
        # Flat-view kernel: the scan is the coarsening hot path (one
        # call per matched module), so bind the materialised vectors
        # locally and use dict.get directly.
        view = hg.csr
        net_sizes = view.sizes_list
        net_weights = view.weights_list
        net_pins = view.net_pins
        get = scores.get
        for e in view.module_nets[v]:
            size = net_sizes[e]
            if size > max_net_size:
                continue
            contribution = net_weights[e] / (size - 1)
            for w in net_pins[e]:
                if w != v and not matched[w]:
                    scores[w] = get(w, 0.0) + contribution
        return scores
    for e in hg.nets(v):
        size = hg.net_size(e)
        if size > max_net_size:
            continue
        contribution = hg.net_weight(e) / (size - 1)
        for w in hg.pins(e):
            if w != v and not matched[w]:
                scores[w] = scores.get(w, 0.0) + contribution
    return scores


def match(hg: Hypergraph,
          ratio: float = 1.0,
          scheme: str = "conn",
          max_conn_net_size: int = DEFAULT_MAX_CONN_NET_SIZE,
          seed: SeedLike = None,
          rng: Optional[random.Random] = None,
          restrict: Optional[List[int]] = None) -> Clustering:
    """The ``Match`` procedure (Figure 3).

    Parameters
    ----------
    ratio:
        Matching ratio ``R`` in ``(0, 1]``: the fraction of modules to
        match before stopping.
    scheme:
        ``"conn"`` — the paper's connectivity matching;
        ``"heavy"`` — same but without the area preference;
        ``"random"`` — uniform choice among unmatched neighbours.
    restrict:
        Optional per-module labels; two modules may only be matched
        when their labels are equal.  This is the restricted coarsening
        that V-cycle iteration (hMETIS-style) uses to keep an existing
        partition representable at every coarse level.
    """
    if not 0 < ratio <= 1:
        raise ClusteringError(f"matching ratio must be in (0, 1], got {ratio}")
    if scheme not in MATCHING_SCHEMES:
        raise ConfigError(
            f"scheme must be one of {MATCHING_SCHEMES}, got {scheme!r}")
    if restrict is not None and len(restrict) != hg.num_modules:
        raise ClusteringError(
            f"restrict has length {len(restrict)}, expected "
            f"{hg.num_modules}")
    rng = rng if rng is not None else make_rng(seed)

    n = hg.num_modules
    areas = hg.csr.areas_list if csr_enabled() else None
    perm = random_permutation(n, rng)
    matched = [False] * n
    cluster_of = [-1] * n
    num_clusters = 0
    n_match = 0

    for j in range(n):
        if n_match / n >= ratio:
            break
        v = perm[j]
        if matched[v]:
            continue
        # Step 4: open a new cluster holding v.
        cluster = num_clusters
        num_clusters += 1
        cluster_of[v] = cluster
        matched[v] = True

        # Step 5: best unmatched partner under the chosen scheme.
        scores = _neighbour_scores(hg, v, matched, max_conn_net_size)
        if restrict is not None:
            scores = {w: s for w, s in scores.items()
                      if restrict[w] == restrict[v]}
        best = -1
        if scores:
            if scheme == "random":
                best = rng.choice(sorted(scores))
            else:
                area_v = areas[v] if areas is not None else hg.area(v)
                best_score = 0.0
                for w in sorted(scores):
                    s = scores[w]
                    if scheme == "conn":
                        s /= area_v * (areas[w] if areas is not None
                                       else hg.area(w))
                    if s > best_score:
                        best_score = s
                        best = w
        # Step 6: close the pair.
        if best >= 0:
            cluster_of[best] = cluster
            matched[best] = True
            n_match += 2

    # Steps 8-10: every remaining module becomes a singleton cluster.
    for v in range(n):
        if not matched[v]:
            cluster_of[v] = num_clusters
            num_clusters += 1

    return Clustering(cluster_of)
