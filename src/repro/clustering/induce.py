"""The ``Induce`` procedure (Definition 1).

A clustering ``P^k`` of ``H_i`` induces the coarser netlist
``H_{i+1}``: each cluster becomes one module whose area is the summed
area of its members (Figure 2's discussion), and each net maps to the
set of clusters it touches, dropped when that set is a single cluster.

Two coarse nets with identical pin sets are merged into one net whose
weight is the sum of the originals (``merge_parallel=True``, default).
This keeps the coarse netlist small while preserving the cut metric
exactly: the weighted cut of any coarse solution equals the number of
original nets cut by its projection — an invariant the test suite
checks across whole hierarchies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ClusteringError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled
from .clustering import Clustering

__all__ = ["induce"]


def induce(hg: Hypergraph, clustering: Clustering,
           merge_parallel: bool = True) -> Hypergraph:
    """Build the coarser netlist induced by ``clustering`` on ``hg``."""
    if clustering.num_modules != hg.num_modules:
        raise ClusteringError(
            f"clustering covers {clustering.num_modules} modules, "
            f"hypergraph has {hg.num_modules}")
    cluster_of = clustering.cluster_of
    k = clustering.num_clusters

    use_csr = csr_enabled()
    if use_csr:
        view = hg.csr
        module_areas = view.areas_list
        net_pins = view.net_pins
        net_weights = view.weights_list
    areas = [0.0] * k
    if use_csr:
        for v, c in enumerate(cluster_of):
            areas[c] += module_areas[v]
    else:
        for v in hg.modules():
            areas[cluster_of[v]] += hg.area(v)

    nets: List[Tuple[int, ...]] = []
    weights: List[int] = []
    merged: Dict[Tuple[int, ...], int] = {}
    if use_csr:
        # Same merge loop over the flat views: per-net tuple fetch and
        # weight indexing instead of accessor calls, with the pin ->
        # cluster mapping and dedup running in C (map + set).
        cluster_at = cluster_of.__getitem__
        for e in range(hg.num_nets):
            coarse = set(map(cluster_at, net_pins[e]))
            if len(coarse) < 2:
                continue  # net absorbed inside one cluster
            key = tuple(sorted(coarse))
            w = net_weights[e]
            if merge_parallel:
                slot = merged.get(key)
                if slot is None:
                    merged[key] = len(nets)
                    nets.append(key)
                    weights.append(w)
                else:
                    weights[slot] += w
            else:
                nets.append(key)
                weights.append(w)
        return Hypergraph._trusted(nets, areas, weights, name=hg.name)
    else:
        for e in hg.all_nets():
            coarse = sorted({cluster_of[v] for v in hg.pins(e)})
            if len(coarse) < 2:
                continue  # net absorbed inside one cluster
            key = tuple(coarse)
            w = hg.net_weight(e)
            if merge_parallel:
                slot = merged.get(key)
                if slot is None:
                    merged[key] = len(nets)
                    nets.append(key)
                    weights.append(w)
                else:
                    weights[slot] += w
            else:
                nets.append(key)
                weights.append(w)

    return Hypergraph(nets, num_modules=k, areas=areas,
                      net_weights=weights,
                      name=hg.name)
