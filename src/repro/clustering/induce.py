"""The ``Induce`` procedure (Definition 1).

A clustering ``P^k`` of ``H_i`` induces the coarser netlist
``H_{i+1}``: each cluster becomes one module whose area is the summed
area of its members (Figure 2's discussion), and each net maps to the
set of clusters it touches, dropped when that set is a single cluster.

Two coarse nets with identical pin sets are merged into one net whose
weight is the sum of the originals (``merge_parallel=True``, default).
This keeps the coarse netlist small while preserving the cut metric
exactly: the weighted cut of any coarse solution equals the number of
original nets cut by its projection — an invariant the test suite
checks across whole hierarchies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ClusteringError
from ..hypergraph import Hypergraph
from .clustering import Clustering

__all__ = ["induce"]


def induce(hg: Hypergraph, clustering: Clustering,
           merge_parallel: bool = True) -> Hypergraph:
    """Build the coarser netlist induced by ``clustering`` on ``hg``."""
    if clustering.num_modules != hg.num_modules:
        raise ClusteringError(
            f"clustering covers {clustering.num_modules} modules, "
            f"hypergraph has {hg.num_modules}")
    cluster_of = clustering.cluster_of
    k = clustering.num_clusters

    areas = [0.0] * k
    for v in hg.modules():
        areas[cluster_of[v]] += hg.area(v)

    nets: List[Tuple[int, ...]] = []
    weights: List[int] = []
    merged: Dict[Tuple[int, ...], int] = {}
    for e in hg.all_nets():
        coarse = sorted({cluster_of[v] for v in hg.pins(e)})
        if len(coarse) < 2:
            continue  # net absorbed inside one cluster
        key = tuple(coarse)
        w = hg.net_weight(e)
        if merge_parallel:
            slot = merged.get(key)
            if slot is None:
                merged[key] = len(nets)
                nets.append(key)
                weights.append(w)
            else:
                weights[slot] += w
        else:
            nets.append(key)
            weights.append(w)

    return Hypergraph(nets, num_modules=k, areas=areas,
                      net_weights=weights,
                      name=hg.name)
