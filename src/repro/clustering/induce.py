"""The ``Induce`` procedure (Definition 1).

A clustering ``P^k`` of ``H_i`` induces the coarser netlist
``H_{i+1}``: each cluster becomes one module whose area is the summed
area of its members (Figure 2's discussion), and each net maps to the
set of clusters it touches, dropped when that set is a single cluster.

Two coarse nets with identical pin sets are merged into one net whose
weight is the sum of the originals (``merge_parallel=True``, default).
This keeps the coarse netlist small while preserving the cut metric
exactly: the weighted cut of any coarse solution equals the number of
original nets cut by its projection — an invariant the test suite
checks across whole hierarchies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ClusteringError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled, numpy_enabled
from .clustering import Clustering

__all__ = ["induce"]

#: Below this module count the vectorized mapping's fixed dispatch
#: overhead loses to the scalar merge loop; identical results.
_NP_INDUCE_MIN_MODULES = 128


def _induce_numpy(hg: Hypergraph, cluster_of, k: int,
                  merge_parallel: bool) -> Hypergraph:
    """Fully vectorized Induce; bit-identical to the scalar path.

    The per-net sorted distinct cluster sets come from one lexsort of
    (net, cluster) pairs plus a first-occurrence mask; cluster areas
    from a weighted ``bincount``, whose in-order C loop accumulates
    each cluster's members in ascending module order exactly like the
    scalar sweep.  Parallel-net merging groups the surviving nets by
    degree — nets of different degree can never be parallel — and runs
    ``np.unique(axis=0)`` on each degree class's pin matrix; each
    group's weight is an integer ``bincount`` sum (commutative, so
    identical to the scalar dict accumulation) and groups are emitted
    in order of their first member net, which is exactly the scalar
    merge-dict insertion order.  The coarse netlist is returned in
    flat CSR form (:meth:`Hypergraph._from_flat`), so its tuple
    structures are never built unless a scalar kernel asks.
    """
    import numpy as np
    view = hg.csr.np
    cl = np.asarray(cluster_of, dtype=np.int64)
    areas = np.bincount(cl, weights=view.areas, minlength=k).tolist()

    pin_clusters = cl[view.pins_flat]
    if hg.num_nets * k < (1 << 62):
        order = np.argsort(view.net_ids * np.int64(k) + pin_clusters,
                           kind="stable")
    else:  # pragma: no cover - needs ~2^31 nets*clusters
        order = np.lexsort((pin_clusters, view.net_ids))
    es = view.net_ids[order]
    cs = pin_clusters[order]
    fresh = np.empty(cs.size, dtype=bool)
    if cs.size:
        fresh[0] = True
        fresh[1:] = (es[1:] != es[:-1]) | (cs[1:] != cs[:-1])
    distinct = cs[fresh]
    deg_all = np.bincount(es[fresh], minlength=hg.num_nets)

    # Surviving (multi-cluster) nets, in ascending net order; their
    # sorted-distinct pin segments packed flat.
    survives = deg_all >= 2
    deg = deg_all[survives]
    sdistinct = distinct[np.repeat(survives, deg_all)]
    soff = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(deg)))
    w_surv = view.net_weights[survives]

    if not merge_parallel or deg.size == 0:
        xpins = soff
        pins_flat = sdistinct
        weights = w_surv.tolist()
        return Hypergraph._from_flat(xpins, pins_flat, areas, weights,
                                     name=hg.name)

    first_parts = []
    weight_parts = []
    deg_parts = []
    start_parts = []
    content_parts = []
    base = 0
    for s_obj in np.unique(deg):
        s = int(s_obj)
        ids = np.flatnonzero(deg == s)
        mat = sdistinct[soff[ids][:, None] + np.arange(s, dtype=np.int64)]
        # Group identical rows with one stable lexicographic sort:
        # within a block of equal rows the original (ascending net)
        # order survives, so the block head is the scalar merge's
        # insertion position for that group.  When the row fits a
        # single int64 (cluster ids are < k), a packed Horner key
        # turns the s-pass lexsort into one radix sort.
        if s * max(k, 2).bit_length() < 62:
            key = mat[:, 0].astype(np.int64)
            for col in range(1, s):
                key = key * k + mat[:, col]
            order = np.argsort(key, kind="stable")
            sk = key[order]
            sm = mat[order]
            head = np.empty(sm.shape[0], dtype=bool)
            head[0] = True
            np.not_equal(sk[1:], sk[:-1], out=head[1:])
        else:  # pragma: no cover - needs very wide nets * huge k
            order = np.lexsort(mat.T[::-1])
            sm = mat[order]
            head = np.empty(sm.shape[0], dtype=bool)
            head[0] = True
            np.any(sm[1:] != sm[:-1], axis=1, out=head[1:])
        gid = np.cumsum(head) - 1
        g = int(gid[-1]) + 1
        first_parts.append(ids[order][head])
        weight_parts.append(np.bincount(
            gid, weights=w_surv[ids][order], minlength=g
        ).astype(np.int64))
        deg_parts.append(np.full(g, s, dtype=np.int64))
        start_parts.append(base + np.arange(g, dtype=np.int64) * s)
        content_parts.append(sm[head].ravel())
        base += g * s

    all_first = np.concatenate(first_parts)
    emit = np.argsort(all_first)
    out_deg = np.concatenate(deg_parts)[emit]
    out_start = np.concatenate(start_parts)[emit]
    weights = np.concatenate(weight_parts)[emit].tolist()
    content = np.concatenate(content_parts)
    xpins = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(out_deg)))
    total = int(xpins[-1])
    gather = (np.arange(total, dtype=np.int64)
              + np.repeat(out_start - xpins[:-1], out_deg))
    pins_flat = content[gather]
    return Hypergraph._from_flat(xpins, pins_flat, areas, weights,
                                 name=hg.name)


def induce(hg: Hypergraph, clustering: Clustering,
           merge_parallel: bool = True) -> Hypergraph:
    """Build the coarser netlist induced by ``clustering`` on ``hg``."""
    if clustering.num_modules != hg.num_modules:
        raise ClusteringError(
            f"clustering covers {clustering.num_modules} modules, "
            f"hypergraph has {hg.num_modules}")
    cluster_of = clustering.cluster_of
    k = clustering.num_clusters

    if numpy_enabled() and hg.num_modules >= _NP_INDUCE_MIN_MODULES:
        return _induce_numpy(hg, cluster_of, k, merge_parallel)

    use_csr = csr_enabled()
    if use_csr:
        view = hg.csr
        module_areas = view.areas_list
        net_pins = view.net_pins
        net_weights = view.weights_list
    areas = [0.0] * k
    if use_csr:
        for v, c in enumerate(cluster_of):
            areas[c] += module_areas[v]
    else:
        for v in hg.modules():
            areas[cluster_of[v]] += hg.area(v)

    nets: List[Tuple[int, ...]] = []
    weights: List[int] = []
    merged: Dict[Tuple[int, ...], int] = {}
    if use_csr:
        # Same merge loop over the flat views: per-net tuple fetch and
        # weight indexing instead of accessor calls, with the pin ->
        # cluster mapping and dedup running in C (map + set).
        cluster_at = cluster_of.__getitem__
        for e in range(hg.num_nets):
            coarse = set(map(cluster_at, net_pins[e]))
            if len(coarse) < 2:
                continue  # net absorbed inside one cluster
            key = tuple(sorted(coarse))
            w = net_weights[e]
            if merge_parallel:
                slot = merged.get(key)
                if slot is None:
                    merged[key] = len(nets)
                    nets.append(key)
                    weights.append(w)
                else:
                    weights[slot] += w
            else:
                nets.append(key)
                weights.append(w)
        return Hypergraph._trusted(nets, areas, weights, name=hg.name)
    else:
        for e in hg.all_nets():
            coarse = sorted({cluster_of[v] for v in hg.pins(e)})
            if len(coarse) < 2:
                continue  # net absorbed inside one cluster
            key = tuple(coarse)
            w = hg.net_weight(e)
            if merge_parallel:
                slot = merged.get(key)
                if slot is None:
                    merged[key] = len(nets)
                    nets.append(key)
                    weights.append(w)
                else:
                    weights[slot] += w
            else:
                nets.append(key)
                weights.append(w)

    return Hypergraph(nets, num_modules=k, areas=areas,
                      net_weights=weights,
                      name=hg.name)
