"""The ``Project`` procedure (Definition 2).

Projection (uncoarsening) maps a solution of the coarse netlist
``H_{i+1}`` back onto the fine netlist ``H_i``: every module inherits
the part of its cluster.
"""

from __future__ import annotations

from ..errors import ClusteringError
from ..partition import Partition
from .clustering import Clustering

__all__ = ["project"]


def project(coarse_partition: Partition,
            clustering: Clustering) -> Partition:
    """Project a partition of the induced netlist onto the fine netlist.

    ``coarse_partition`` partitions the clusters of ``clustering``; the
    result assigns each fine module to its cluster's part.
    """
    if coarse_partition.num_modules != clustering.num_clusters:
        raise ClusteringError(
            f"coarse partition covers {coarse_partition.num_modules} "
            f"modules but clustering produced "
            f"{clustering.num_clusters} clusters")
    coarse = coarse_partition.assignment
    fine = [coarse[c] for c in clustering.cluster_of]
    return Partition(fine, coarse_partition.k)
