"""Clustering value object (the ``P^k`` of Definitions 1 and 2).

A k-way clustering of a netlist assigns every module to exactly one
cluster.  A clustering and a partitioning are formally the same object
(paper, footnote 1); this class is the "many small clusters" flavour
used for coarsening, while :class:`repro.partition.Partition` is the
"few big parts" flavour used for solutions.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ClusteringError
from ..hypergraph import Hypergraph

__all__ = ["Clustering"]


class Clustering:
    """Assignment of ``n`` modules to clusters ``0..k-1``.

    Cluster ids must be contiguous starting at zero (use
    :meth:`from_groups` when building from explicit module groups).
    """

    __slots__ = ("cluster_of", "num_clusters")

    def __init__(self, cluster_of: Sequence[int]):
        cluster_of = list(cluster_of)
        if not cluster_of:
            raise ClusteringError("clustering over zero modules")
        k = max(cluster_of) + 1
        seen = [False] * k
        for v, c in enumerate(cluster_of):
            if not 0 <= c < k:
                raise ClusteringError(
                    f"module {v} in cluster {c}, outside [0, {k})")
            seen[c] = True
        missing = [c for c in range(k) if not seen[c]]
        if missing:
            raise ClusteringError(
                f"cluster ids not contiguous; empty ids: {missing[:5]}")
        self.cluster_of = cluster_of
        self.num_clusters = k

    @classmethod
    def from_groups(cls, groups: Iterable[Iterable[int]],
                    num_modules: int) -> "Clustering":
        """Build from explicit disjoint module groups covering all modules."""
        cluster_of = [-1] * num_modules
        count = 0
        for c, group in enumerate(groups):
            for v in group:
                if not 0 <= v < num_modules:
                    raise ClusteringError(
                        f"cluster {c} contains out-of-range module {v}")
                if cluster_of[v] != -1:
                    raise ClusteringError(
                        f"module {v} appears in clusters {cluster_of[v]} "
                        f"and {c}")
                cluster_of[v] = c
            count = c + 1
        uncovered = [v for v, c in enumerate(cluster_of) if c == -1]
        if uncovered:
            raise ClusteringError(
                f"modules not covered by any cluster: {uncovered[:5]}")
        if count == 0:
            raise ClusteringError("no clusters given")
        return cls(cluster_of)

    # ------------------------------------------------------------------

    @property
    def num_modules(self) -> int:
        return len(self.cluster_of)

    def groups(self) -> List[List[int]]:
        """Modules grouped by cluster (the ``C_1 ... C_k``)."""
        out: List[List[int]] = [[] for _ in range(self.num_clusters)]
        for v, c in enumerate(self.cluster_of):
            out[c].append(v)
        return out

    def cluster_areas(self, hg: Hypergraph) -> List[float]:
        """Total module area per cluster (preserved by ``Induce``)."""
        if hg.num_modules != self.num_modules:
            raise ClusteringError(
                f"clustering covers {self.num_modules} modules, hypergraph "
                f"has {hg.num_modules}")
        areas = [0.0] * self.num_clusters
        for v, c in enumerate(self.cluster_of):
            areas[c] += hg.area(v)
        return areas

    def max_cluster_size(self) -> int:
        sizes = [0] * self.num_clusters
        for c in self.cluster_of:
            sizes[c] += 1
        return max(sizes)

    def matched_fraction(self) -> float:
        """Achieved matching ratio ``nMatch / |V|`` of a pairing.

        ``Match`` only ever merges modules two at a time, so each of
        the ``|V| - k`` merges accounts for two matched modules; the
        remainder are singletons.  This is the quantity the ratio
        ``R`` bounds (Figure 3) and what the coarsening trace reports
        per level.
        """
        return 2.0 * (self.num_modules - self.num_clusters) \
            / self.num_modules

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Clustering(modules={self.num_modules}, "
                f"clusters={self.num_clusters})")
