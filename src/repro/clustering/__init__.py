"""Coarsening substrate: the Match procedure, Induce (Definition 1),
Project (Definition 2), and the clustering value object."""

from .clustering import Clustering
from .induce import induce
from .matching import (DEFAULT_MAX_CONN_NET_SIZE, MATCHING_SCHEMES,
                       connectivity, match)
from .project import project

__all__ = [
    "Clustering",
    "match",
    "connectivity",
    "MATCHING_SCHEMES",
    "DEFAULT_MAX_CONN_NET_SIZE",
    "induce",
    "project",
]
