"""Classical partitioning quality metrics beyond plain net cut.

The paper optimises min-cut under balance constraints, but the
surrounding literature it cites evaluates partitions with several other
standing metrics; they are provided here for analysis and for users
comparing against ratio-cut-era results:

* :func:`ratio_cut` — Wei–Cheng ratio cut ``cut(P) / (|X| * |Y|)``
  (areas are used instead of cardinalities when modules are weighted).
* :func:`scaled_cost` — Chan–Schlag–Zien scaled cost, the k-way
  generalisation of ratio cut.
* :func:`absorption` — Sun–Sechen absorption: how much net connectivity
  the parts absorb (higher is better; equals ``num_nets`` weighted sum
  when nothing is cut).
* :func:`summarize` — one dict with everything, used by the CLI.
"""

from __future__ import annotations

from typing import Dict

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from .balance import BalanceConstraint
from .objectives import cut, soed, spans
from .solution import Partition

__all__ = ["ratio_cut", "scaled_cost", "absorption", "summarize"]


def ratio_cut(hg: Hypergraph, partition: Partition) -> float:
    """Wei–Cheng ratio cut for bipartitions: ``cut / (A(X) * A(Y))``.

    Degenerate one-sided partitions have no defined ratio; raising is
    more useful than returning infinity because such a solution is
    never a legitimate comparison point.
    """
    if partition.k != 2:
        raise PartitionError(
            f"ratio_cut is defined for bipartitions, got k={partition.k}")
    area_x, area_y = partition.part_areas(hg)
    if area_x == 0 or area_y == 0:
        raise PartitionError("ratio_cut undefined for an empty side")
    return cut(hg, partition) / (area_x * area_y)


def scaled_cost(hg: Hypergraph, partition: Partition) -> float:
    """Chan–Schlag–Zien scaled cost.

    ``(1 / (n (k-1))) * sum over parts p of cut(p) / A(p)`` where
    ``cut(p)`` is the total weight of nets with pins both inside and
    outside ``p``.  For ``k = 2`` this reduces (up to the constant) to
    the ratio cut.
    """
    k = partition.k
    areas = partition.part_areas(hg)
    if any(a == 0 for a in areas):
        raise PartitionError("scaled_cost undefined for an empty part")
    part_cut = [0] * k
    assignment = partition.assignment
    for e in hg.all_nets():
        parts = {assignment[v] for v in hg.pins(e)}
        if len(parts) > 1:
            w = hg.net_weight(e)
            for p in parts:
                part_cut[p] += w
    n = hg.num_modules
    return sum(part_cut[p] / areas[p] for p in range(k)) / (n * (k - 1))


def absorption(hg: Hypergraph, partition: Partition) -> float:
    """Sun–Sechen absorption metric (higher is better).

    Each net contributes ``(pins_in_p - 1) / (|e| - 1)`` for every part
    ``p`` it touches with at least one pin; an uncut net contributes
    exactly 1, a fully shattered net close to 0.
    """
    assignment = partition.assignment
    total = 0.0
    for e in hg.all_nets():
        pins = hg.pins(e)
        per_part: Dict[int, int] = {}
        for v in pins:
            p = assignment[v]
            per_part[p] = per_part.get(p, 0) + 1
        share = sum(count - 1 for count in per_part.values())
        total += hg.net_weight(e) * share / (len(pins) - 1)
    return total


def summarize(hg: Hypergraph, partition: Partition,
              tolerance: float = 0.1) -> Dict[str, object]:
    """All quality metrics of a solution in one dictionary."""
    constraint = BalanceConstraint.from_tolerance(hg, tolerance,
                                                  k=partition.k)
    areas = partition.part_areas(hg)
    summary: Dict[str, object] = {
        "k": partition.k,
        "cut": cut(hg, partition),
        "soed": soed(hg, partition),
        "absorption": absorption(hg, partition),
        "part_areas": areas,
        "balanced": constraint.is_feasible(areas),
        "max_spans": max((spans(hg, partition, e)
                          for e in hg.all_nets()), default=1),
    }
    if partition.k == 2 and all(a > 0 for a in areas):
        summary["ratio_cut"] = ratio_cut(hg, partition)
    if all(a > 0 for a in areas):
        summary["scaled_cost"] = scaled_cost(hg, partition)
    return summary
