"""Incrementally maintained partitioning state.

:class:`PartitionState` binds a hypergraph to a mutable assignment and
keeps, under single-module moves:

* per-net pin counts per part (``counts[p][e]``),
* the number of parts each net spans,
* the weighted cut and weighted sum-of-degrees objectives,
* per-part total areas.

This is the bookkeeping all the iterative engines (FM, CLIP, k-way FM,
LSMC descents) share.  A state may be restricted to a subset of
*active* nets — the FM engines exclude nets larger than a threshold
(200 in the paper) and measure final quality on the full netlist via
:mod:`repro.partition.objectives`.

Three kernel families implement the O(pins) construction sweep (see
:mod:`repro.kernels`): the default binds the flat CSR incidence layer
(``hg.csr``) locally and performs only index operations per pin; the
numpy family computes the k==2 tallies as whole-netlist ``bincount``
reductions over ``hg.csr.np``; the reference family preserves the
original per-call accessor walk (``hg.pins(e)`` / ``hg.net_weight(e)``)
as the correctness oracle and benchmark baseline.  All construction
sweeps are integer sums, so every cached quantity — and every
downstream RNG draw — is bit-identical across the three.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled, numpy_enabled
from .solution import Partition

__all__ = ["PartitionState"]


def _as_sorted_tuple(active_nets: Sequence[int]) -> Tuple[int, ...]:
    """``active_nets`` as a strictly-increasing tuple.

    The engines always pass an already-sorted, duplicate-free net list
    (a filtered ``range``); detecting that case keeps construction
    O(n) instead of re-sorting a sorted input every FM call.
    """
    nets = tuple(active_nets)
    if all(nets[i] < nets[i + 1] for i in range(len(nets) - 1)):
        return nets
    return tuple(sorted(set(nets)))


class PartitionState:
    """Mutable k-way partition with O(pins(v)) single-module moves."""

    __slots__ = ("hg", "k", "part_of", "part_area", "counts", "spans",
                 "cut_weight", "soed_weight", "active", "_active_nets",
                 "_view", "_pass_best")

    def __init__(self, hg: Hypergraph, partition: Partition,
                 active_nets: Optional[Sequence[int]] = None):
        if partition.num_modules != hg.num_modules:
            raise PartitionError(
                f"partition covers {partition.num_modules} modules but "
                f"hypergraph has {hg.num_modules}")
        self.hg = hg
        self.k = partition.k
        self.part_of: List[int] = list(partition.assignment)

        # Kernel family is sampled once per state; `move` dispatches on
        # the cached view so the choice costs nothing per pin.
        self._view = hg.csr if csr_enabled() else None
        # Objective values at the best prefix of the latest inlined FM
        # pass (set by the engine's pass loop, consumed by rollback).
        self._pass_best: Optional[Tuple[int, int]] = None

        self.part_area = [0.0] * self.k
        areas = self._view.areas_list if self._view is not None \
            else hg._areas
        for v, p in enumerate(self.part_of):
            self.part_area[p] += areas[v]

        if active_nets is None:
            self.active = [True] * hg.num_nets
            if self._view is not None:
                self._active_nets = self._view.all_nets()
            else:
                self._active_nets = tuple(hg.all_nets())
        else:
            self.active = [False] * hg.num_nets
            for e in active_nets:
                self.active[e] = True
            self._active_nets = _as_sorted_tuple(active_nets)

        self.counts: List[List[int]] = [[0] * hg.num_nets
                                        for _ in range(self.k)]
        self.spans: List[int] = [0] * hg.num_nets
        self.cut_weight = 0
        self.soed_weight = 0
        if self._view is not None and self.k == 2 and numpy_enabled():
            self._init_counts_numpy()
        elif self._view is not None:
            self._init_counts_csr()
        else:
            self._init_counts_reference()

    def _init_counts_numpy(self) -> None:
        """Vectorized k==2 construction sweep (bit-identical: the
        tallies, spans, and objectives are integer sums, which commute
        regardless of reduction order)."""
        import numpy as np
        view = self._view.np
        part = np.asarray(self.part_of, dtype=np.int8)
        c0, c1 = view.counts2(part)
        if len(self._active_nets) != view.num_nets:
            mask = np.zeros(view.num_nets, dtype=bool)
            mask[np.asarray(self._active_nets, dtype=np.int64)] = True
            c0 = np.where(mask, c0, 0)
            c1 = np.where(mask, c1, 0)
        spans = (c0 > 0).astype(np.int64) + (c1 > 0)
        cut_nets = spans > 1
        weights = view.net_weights
        self.cut_weight = int(weights[cut_nets].sum())
        self.soed_weight = int((weights * spans)[cut_nets].sum())
        self.counts = [c0.tolist(), c1.tolist()]
        self.spans = spans.tolist()

    def _init_counts_csr(self) -> None:
        """Construction sweep over the flat incidence layer."""
        view = self._view
        net_pins = view.net_pins
        net_weights = view.weights_list
        part_of = self.part_of
        counts = self.counts
        spans = self.spans
        cut_w = 0
        soed_w = 0
        if len(counts) == 2:
            # Bipartition specialisation: tally both sides in plain
            # locals and store each net's counts once, instead of a
            # row lookup + read-modify-write per pin.
            c0, c1 = counts
            for e in self._active_nets:
                a = 0
                b = 0
                for v in net_pins[e]:
                    if part_of[v]:
                        b += 1
                    else:
                        a += 1
                c0[e] = a
                c1[e] = b
                present = (a > 0) + (b > 0)
                spans[e] = present
                if present > 1:
                    w = net_weights[e]
                    cut_w += w
                    soed_w += w * present
        else:
            for e in self._active_nets:
                present = 0
                for v in net_pins[e]:
                    row = counts[part_of[v]]
                    if row[e] == 0:
                        present += 1
                    row[e] += 1
                spans[e] = present
                if present > 1:
                    w = net_weights[e]
                    cut_w += w
                    soed_w += w * present
        self.cut_weight = cut_w
        self.soed_weight = soed_w

    def _init_counts_reference(self) -> None:
        """The original accessor-walking construction sweep."""
        hg = self.hg
        for e in self._active_nets:
            present = 0
            for v in hg.pins(e):
                p = self.part_of[v]
                if self.counts[p][e] == 0:
                    present += 1
                self.counts[p][e] += 1
            self.spans[e] = present
            if present > 1:
                w = hg.net_weight(e)
                self.cut_weight += w
                self.soed_weight += w * present

    # ------------------------------------------------------------------

    def active_nets(self) -> Tuple[int, ...]:
        """Nets participating in incremental objective tracking.

        Returns the state's own cached tuple (callers must not rely on
        getting a fresh mutable copy; the tuple is shared).
        """
        return self._active_nets

    def pins_in(self, part: int, net: int) -> int:
        """Number of ``net``'s pins currently in ``part``."""
        return self.counts[part][net]

    def move(self, module: int, dst: int) -> None:
        """Move ``module`` to part ``dst``, updating all bookkeeping."""
        src = self.part_of[module]
        if src == dst:
            return
        view = self._view
        if view is not None:
            area = view.areas_list[module]
            self.part_of[module] = dst
            self.part_area[src] -= area
            self.part_area[dst] += area

            counts_src = self.counts[src]
            counts_dst = self.counts[dst]
            active = self.active
            spans = self.spans
            net_weights = view.weights_list
            cut_w = self.cut_weight
            soed_w = self.soed_weight
            for e in view.module_nets[module]:
                if not active[e]:
                    continue
                w = net_weights[e]
                s = spans[e]
                c = counts_src[e] - 1
                counts_src[e] = c
                if c == 0:
                    s -= 1
                    soed_w -= w if s > 1 else (2 * w if s == 1 else 0)
                    if s == 1:
                        cut_w -= w
                c = counts_dst[e] + 1
                counts_dst[e] = c
                if c == 1:
                    s += 1
                    soed_w += w if s > 2 else (2 * w if s == 2 else 0)
                    if s == 2:
                        cut_w += w
                spans[e] = s
            self.cut_weight = cut_w
            self.soed_weight = soed_w
            return

        hg = self.hg
        area = hg.area(module)
        self.part_of[module] = dst
        self.part_area[src] -= area
        self.part_area[dst] += area

        counts_src = self.counts[src]
        counts_dst = self.counts[dst]
        active = self.active
        spans = self.spans
        for e in hg.nets(module):
            if not active[e]:
                continue
            w = hg.net_weight(e)
            s = spans[e]
            counts_src[e] -= 1
            if counts_src[e] == 0:
                s -= 1
                self.soed_weight -= w if s > 1 else (2 * w if s == 1 else 0)
                if s == 1:
                    self.cut_weight -= w
            counts_dst[e] += 1
            if counts_dst[e] == 1:
                s += 1
                self.soed_weight += w if s > 2 else (2 * w if s == 2 else 0)
                if s == 2:
                    self.cut_weight += w
            spans[e] = s

    # ------------------------------------------------------------------

    def to_partition(self) -> Partition:
        """Snapshot the current assignment."""
        return Partition(list(self.part_of), self.k)

    def verify(self) -> None:
        """Recompute every cached quantity and raise on any mismatch.

        Used by tests and by the engines' debug mode; O(pins).
        """
        hg = self.hg
        areas = [0.0] * self.k
        for v, p in enumerate(self.part_of):
            areas[p] += hg.area(v)
        for p in range(self.k):
            if abs(areas[p] - self.part_area[p]) > 1e-6:
                raise PartitionError(
                    f"part {p} cached area {self.part_area[p]} != "
                    f"actual {areas[p]}")
        cut_w = 0
        soed_w = 0
        for e in self._active_nets:
            per_part = [0] * self.k
            for v in hg.pins(e):
                per_part[self.part_of[v]] += 1
            s = sum(1 for c in per_part if c)
            for p in range(self.k):
                if per_part[p] != self.counts[p][e]:
                    raise PartitionError(
                        f"net {e} part {p}: cached count "
                        f"{self.counts[p][e]} != actual {per_part[p]}")
            if s != self.spans[e]:
                raise PartitionError(
                    f"net {e}: cached spans {self.spans[e]} != actual {s}")
            if s > 1:
                w = hg.net_weight(e)
                cut_w += w
                soed_w += w * s
        if cut_w != self.cut_weight:
            raise PartitionError(
                f"cached cut {self.cut_weight} != actual {cut_w}")
        if soed_w != self.soed_weight:
            raise PartitionError(
                f"cached soed {self.soed_weight} != actual {soed_w}")
