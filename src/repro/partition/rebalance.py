"""Rebalancing of infeasible partitions.

Section III-B: a solution that satisfied the coarse level's balance
constraints may violate the finer level's constraints after projection
(because ``A(v*)`` shrinks during uncoarsening).  "In this case, the
solution is rebalanced by randomly moving modules from the larger
cluster to the smaller one."
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import BalanceError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, make_rng
from .balance import BalanceConstraint
from .solution import Partition

__all__ = ["rebalance_random"]


def rebalance_random(hg: Hypergraph, partition: Partition,
                     constraint: BalanceConstraint,
                     seed: SeedLike = None,
                     rng: Optional[random.Random] = None,
                     movable: Optional[List[bool]] = None) -> Partition:
    """Return a feasible copy of ``partition`` via random moves.

    Modules are moved one at a time from the currently heaviest
    violating part to the currently lightest part, in random order,
    until every part is within bounds.  ``movable`` (all-true by
    default) restricts which modules may be touched — pre-assigned
    I/O pads must stay put.  The input is not modified.
    Raises :class:`BalanceError` if no sequence of single-module moves
    can reach feasibility (e.g. one module bigger than ``upper``).
    """
    rng = rng if rng is not None else make_rng(seed)
    assignment = list(partition.assignment)
    k = partition.k
    areas = [0.0] * k
    for v, p in enumerate(assignment):
        areas[p] += hg.area(v)
    if constraint.is_feasible(areas):
        return Partition(assignment, k)

    by_part = [[] for _ in range(k)]
    for v, p in enumerate(assignment):
        if movable is None or movable[v]:
            by_part[p].append(v)
    for members in by_part:
        rng.shuffle(members)

    # Each iteration moves one module out of the worst offender; bounded
    # by the number of modules times parts, with a hard guard against
    # pathological non-convergence.
    max_steps = 2 * hg.num_modules * k + 16
    for _ in range(max_steps):
        if constraint.is_feasible(areas):
            return Partition(assignment, k)
        src = max(range(k), key=lambda p: areas[p])
        dst = min(range(k), key=lambda p: areas[p])
        if src == dst or not by_part[src]:
            break
        v = by_part[src].pop()
        assignment[v] = dst
        by_part[dst].append(v)
        # Keep the receiver's pool shuffled-fair: inserting at the end
        # is fine because pops come from the end of a shuffled list and
        # recently moved modules are the right ones to move back first.
        areas[src] -= hg.area(v)
        areas[dst] += hg.area(v)
    if constraint.is_feasible(areas):
        return Partition(assignment, k)
    raise BalanceError(
        "rebalance_random could not reach a feasible solution; bounds "
        f"[{constraint.lower}, {constraint.upper}] may be unsatisfiable "
        "for these module areas")
