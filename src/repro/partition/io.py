"""Reading and writing partition assignments.

The exchange format is the simplest possible (and what hMETIS and
friends emit): one part id per line, line ``i`` holding module ``i``'s
part.  This lets solutions cross tool boundaries — e.g. evaluating an
external partitioner's output with :func:`repro.partition.summarize`
via ``repro evaluate``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..errors import ParseError
from .solution import Partition

__all__ = ["read_assignment", "write_assignment"]

PathLike = Union[str, Path]


def write_assignment(partition: Partition, path: PathLike) -> None:
    """Write one part id per line."""
    Path(path).write_text(
        "\n".join(str(p) for p in partition.assignment) + "\n")


def read_assignment(path: PathLike, k: Optional[int] = None,
                    num_modules: Optional[int] = None) -> Partition:
    """Read a one-part-id-per-line assignment file.

    ``k`` defaults to ``max(id) + 1``; ``num_modules``, when given, is
    validated against the line count.
    """
    values = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(),
                                 start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            values.append(int(line))
        except ValueError:
            raise ParseError(f"non-integer part id {line!r}",
                             lineno) from None
    if not values:
        raise ParseError("empty assignment file")
    if num_modules is not None and len(values) != num_modules:
        raise ParseError(
            f"assignment covers {len(values)} modules, netlist has "
            f"{num_modules}")
    if min(values) < 0:
        raise ParseError("negative part id")
    actual_k = max(values) + 1
    if k is None:
        k = max(2, actual_k)
    elif actual_k > k:
        raise ParseError(
            f"assignment uses part {actual_k - 1} but k={k}")
    return Partition(values, k)
