"""Balance (size) constraints.

The paper's bipartitioning constraint (Sections I and III-B): with
balance tolerance ``r``, each side's area must lie within

    A(V)/2  -  max(A(v*), r * A(V))   and
    A(V)/2  +  max(A(v*), r * A(V))

where ``v*`` is the largest module.  The ``max(A(v*), .)`` term keeps
the constraint satisfiable on coarsened netlists whose merged modules
can individually exceed ``r * A(V)``.  We generalise the same form to
``k`` parts around the target ``A(V)/k`` for quadrisection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import BalanceError
from ..hypergraph import Hypergraph

__all__ = ["BalanceConstraint", "DEFAULT_TOLERANCE"]

#: The paper's standard experimental setting: 10% deviation from bisection.
DEFAULT_TOLERANCE = 0.1


@dataclass(frozen=True)
class BalanceConstraint:
    """Per-part area bounds ``lower <= A(part) <= upper``."""

    lower: float
    upper: float
    k: int

    @classmethod
    def from_tolerance(cls, hg: Hypergraph, r: float = DEFAULT_TOLERANCE,
                       k: int = 2) -> "BalanceConstraint":
        """The paper's constraint for tolerance ``r`` (Section III-B)."""
        if not 0 <= r < 1:
            raise BalanceError(f"tolerance r must be in [0, 1), got {r}")
        if k < 2:
            raise BalanceError(f"k must be >= 2, got {k}")
        target = hg.total_area / k
        slack = max(hg.max_area, r * hg.total_area)
        return cls(lower=max(0.0, target - slack), upper=target + slack, k=k)

    # ------------------------------------------------------------------

    def is_feasible(self, part_areas: Sequence[float]) -> bool:
        """True when every part's area is within bounds."""
        if len(part_areas) != self.k:
            raise BalanceError(
                f"expected {self.k} part areas, got {len(part_areas)}")
        return all(self.lower <= a <= self.upper for a in part_areas)

    def violations(self, part_areas: Sequence[float]) -> List[int]:
        """Indices of parts whose area is out of bounds."""
        return [p for p, a in enumerate(part_areas)
                if not self.lower <= a <= self.upper]

    def move_allowed(self, area_src: float, area_dst: float,
                     module_area: float) -> bool:
        """Whether moving a module of ``module_area`` keeps both the
        source and destination parts within bounds.

        This is the feasibility test FM applies before each move.  Note
        the asymmetry matters during refinement of a solution that is
        *already* unbalanced (e.g. just projected): a move that reduces
        the violation is allowed even if the destination side stays
        above ``lower`` only marginally — we therefore only require the
        *changed* sides to respect their own bound direction:
        the shrinking side must stay ``>= lower`` and the growing side
        ``<= upper``.
        """
        return (area_src - module_area >= self.lower
                and area_dst + module_area <= self.upper)

    def __post_init__(self):
        if self.lower > self.upper:
            raise BalanceError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}")
