"""Partitioning objectives, computed from scratch.

These are the reference (non-incremental) implementations used to
measure final solution quality — including nets that the FM engines
temporarily ignored (the paper reinstates nets larger than 200 modules
"when measuring solution quality", Section III-B) — and to verify the
incremental bookkeeping of :class:`~repro.partition.PartitionState`.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..kernels import csr_enabled, numpy_enabled
from .solution import Partition

__all__ = ["cut", "soed", "spans"]


def _check(hg: Hypergraph, partition: Partition) -> None:
    if partition.num_modules != hg.num_modules:
        raise PartitionError(
            f"partition covers {partition.num_modules} modules but "
            f"hypergraph has {hg.num_modules}")


def spans(hg: Hypergraph, partition: Partition, net: int) -> int:
    """Number of distinct parts containing pins of ``net``."""
    assignment = partition.assignment
    return len({assignment[v] for v in hg.pins(net)})


def cut(hg: Hypergraph, partition: Partition) -> int:
    """Weighted net cut: total weight of nets spanning more than one part.

    For unweighted netlists this is exactly the paper's ``cut(P)`` — the
    *number* of nets with modules on both sides.
    """
    _check(hg, partition)
    assignment = partition.assignment
    total = 0
    if numpy_enabled():
        # A net is cut iff its pins' parts are not all equal; per-net
        # segment min/max over the flat pin array answers that for any
        # k.  Integer comparisons only, so the result is exact and
        # identical to the scalar sweeps.
        import numpy as np
        view = hg.csr.np
        if view.num_nets == 0:
            return 0
        pin_parts = np.asarray(assignment, dtype=np.int64)[view.pins_flat]
        starts = view.xpins[:-1]
        lo = np.minimum.reduceat(pin_parts, starts)
        hi = np.maximum.reduceat(pin_parts, starts)
        return int(view.net_weights[lo != hi].sum())
    if csr_enabled():
        # Final-quality measurement runs once per engine call but over
        # *all* nets (large ones re-included), so it shows up in
        # multilevel profiles; same sweep over the flat views.
        view = hg.csr
        net_weights = view.weights_list
        for e, pins in enumerate(view.net_pins):
            first = assignment[pins[0]]
            for v in pins:
                if assignment[v] != first:
                    total += net_weights[e]
                    break
        return total
    for e in hg.all_nets():
        pins = hg.pins(e)
        first = assignment[pins[0]]
        for v in pins:
            if assignment[v] != first:
                total += hg.net_weight(e)
                break
    return total


def soed(hg: Hypergraph, partition: Partition) -> int:
    """Sum of cluster degrees ("sum of degrees" gain of Section III-C).

    Each cut net contributes ``weight * (number of parts it spans)``;
    uncut nets contribute nothing.  For bipartitioning this is exactly
    ``2 * cut``; for quadrisection it additionally penalises nets spread
    over three or four clusters, which is the gain function the paper
    reports quadrisection results for.
    """
    _check(hg, partition)
    total = 0
    for e in hg.all_nets():
        s = spans(hg, partition, e)
        if s > 1:
            total += hg.net_weight(e) * s
    return total
