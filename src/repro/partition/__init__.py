"""Partitioning substrate: solutions, balance constraints, incremental
move bookkeeping, and reference objective functions."""

from .balance import DEFAULT_TOLERANCE, BalanceConstraint
from .io import read_assignment, write_assignment
from .metrics import absorption, ratio_cut, scaled_cost, summarize
from .objectives import cut, soed, spans
from .rebalance import rebalance_random
from .solution import Partition, random_partition
from .state import PartitionState

__all__ = [
    "Partition",
    "random_partition",
    "BalanceConstraint",
    "DEFAULT_TOLERANCE",
    "PartitionState",
    "cut",
    "soed",
    "spans",
    "ratio_cut",
    "scaled_cost",
    "absorption",
    "summarize",
    "rebalance_random",
    "read_assignment",
    "write_assignment",
]
