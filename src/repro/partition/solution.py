"""Partitioning solutions.

A *k-way partitioning* assigns every module to one of ``k`` parts
(clusters).  The paper's bipartitioning ``P = {X, Y}`` is the ``k = 2``
case; quadrisection (Section IV-D) is ``k = 4``.  :class:`Partition` is
a lightweight value object: the hypergraph is passed to the methods that
need it rather than stored, so a solution can outlive intermediate
(coarsened) netlists.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, make_rng

__all__ = ["Partition", "random_partition"]


class Partition:
    """Assignment of modules to parts ``0..k-1``."""

    __slots__ = ("assignment", "k")

    def __init__(self, assignment: Sequence[int], k: int = 2):
        if k < 2:
            raise PartitionError(f"k must be >= 2, got {k}")
        assignment = list(assignment)
        for v, p in enumerate(assignment):
            if not 0 <= p < k:
                raise PartitionError(
                    f"module {v} assigned to part {p}, valid range is "
                    f"[0, {k})")
        self.assignment = assignment
        self.k = k

    # ------------------------------------------------------------------

    @property
    def num_modules(self) -> int:
        return len(self.assignment)

    def part_of(self, module: int) -> int:
        """Part holding ``module``."""
        return self.assignment[module]

    def parts(self) -> List[List[int]]:
        """Modules grouped by part, i.e. the clusters ``X, Y, ...``."""
        groups: List[List[int]] = [[] for _ in range(self.k)]
        for v, p in enumerate(self.assignment):
            groups[p].append(v)
        return groups

    def part_sizes(self) -> List[int]:
        """Module count per part."""
        sizes = [0] * self.k
        for p in self.assignment:
            sizes[p] += 1
        return sizes

    def part_areas(self, hg: Hypergraph) -> List[float]:
        """Total area per part."""
        if hg.num_modules != len(self.assignment):
            raise PartitionError(
                f"partition covers {len(self.assignment)} modules but "
                f"hypergraph has {hg.num_modules}")
        from ..kernels import numpy_enabled
        if numpy_enabled() and len(self.assignment) >= 1024:
            # Weighted bincount accumulates in ascending module order —
            # the same order as the scalar loop, so bit-identical.
            import numpy as np
            return np.bincount(np.asarray(self.assignment),
                               weights=hg.csr.np.areas,
                               minlength=self.k).tolist()
        areas = [0.0] * self.k
        for v, p in enumerate(self.assignment):
            areas[p] += hg.area(v)
        return areas

    def copy(self) -> "Partition":
        return Partition(list(self.assignment), self.k)

    def relabeled(self) -> "Partition":
        """Canonical relabeling: parts renumbered by first occurrence.

        Two partitions that differ only by part naming compare equal
        after relabeling — used when checking solution uniqueness.
        """
        mapping: dict = {}
        out = []
        for p in self.assignment:
            if p not in mapping:
                mapping[p] = len(mapping)
            out.append(mapping[p])
        return Partition(out, self.k)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.k == other.k and self.assignment == other.assignment

    def __hash__(self) -> int:
        return hash((self.k, tuple(self.assignment)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Partition(k={self.k}, modules={len(self.assignment)}, "
                f"sizes={self.part_sizes()})")


def random_partition(hg: Hypergraph, k: int = 2,
                     seed: SeedLike = None,
                     rng: Optional[random.Random] = None) -> Partition:
    """Random area-balanced initial solution.

    Modules are visited in random order and each is placed in the
    currently lightest part, which yields near-perfect area balance even
    with heterogeneous areas (a classic greedy ``LPT``-style fill).
    FM's initial solutions in the paper are random; this matches that
    while guaranteeing the balance preconditions FM needs to start.
    """
    rng = rng if rng is not None else make_rng(seed)
    order = list(hg.modules())
    rng.shuffle(order)
    assignment = [0] * hg.num_modules
    areas = [0.0] * k
    for v in order:
        p = min(range(k), key=lambda q: (areas[q], q))
        assignment[v] = p
        areas[p] += hg.area(v)
    return Partition(assignment, k)
