"""Multistart experiment runner.

The paper's protocol: run each algorithm N times per circuit and report
minimum cut, average cut, standard deviation, and total CPU time.  An
:class:`Algorithm` is a named, seeded partitioner; :func:`run_cell`
produces one table cell's statistics and :func:`run_matrix` sweeps
algorithms x circuits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import mean, pstdev
from typing import Callable, Dict, List, Sequence

from ..errors import ConfigError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, child_seeds, stable_seed

__all__ = ["Algorithm", "CellStats", "run_cell", "run_matrix"]


@dataclass(frozen=True)
class Algorithm:
    """A named partitioner: ``fn(hg, seed) -> result`` with ``.cut``."""

    name: str
    fn: Callable[[Hypergraph, int], object]


@dataclass
class CellStats:
    """min/avg/std/CPU over N runs of one algorithm on one circuit."""

    algorithm: str
    circuit: str
    cuts: List[int]
    cpu_seconds: float

    @property
    def runs(self) -> int:
        return len(self.cuts)

    @property
    def min_cut(self) -> int:
        return min(self.cuts)

    @property
    def avg_cut(self) -> float:
        return mean(self.cuts)

    @property
    def std_cut(self) -> float:
        return pstdev(self.cuts)


def run_cell(algorithm: Algorithm, hg: Hypergraph, runs: int,
             seed: SeedLike = 0) -> CellStats:
    """Run one algorithm ``runs`` times on one circuit."""
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    cuts: List[int] = []
    start = time.perf_counter()
    for s in child_seeds(seed, runs):
        result = algorithm.fn(hg, s)
        cuts.append(result.cut)
    elapsed = time.perf_counter() - start
    return CellStats(algorithm=algorithm.name, circuit=hg.name,
                     cuts=cuts, cpu_seconds=elapsed)


def run_matrix(algorithms: Sequence[Algorithm],
               circuits: Sequence[Hypergraph],
               runs: int,
               seed: SeedLike = 0
               ) -> Dict[str, Dict[str, CellStats]]:
    """Sweep ``algorithms x circuits``; result[circuit][algorithm].

    Each (circuit, algorithm) cell derives its seed from the top-level
    seed, the circuit name, and the algorithm name, so adding a row or
    column never changes existing cells.
    """
    table: Dict[str, Dict[str, CellStats]] = {}
    for hg in circuits:
        row: Dict[str, CellStats] = {}
        for algorithm in algorithms:
            cell_seed = stable_seed(str(seed), hg.name, algorithm.name)
            row[algorithm.name] = run_cell(algorithm, hg, runs, cell_seed)
        table[hg.name] = row
    return table
