"""Multistart experiment runner.

The paper's protocol: run each algorithm N times per circuit and report
minimum cut, average cut, standard deviation, and total CPU time.  An
:class:`Algorithm` is a named, seeded partitioner; :func:`run_cell`
produces one table cell's statistics and :func:`run_matrix` sweeps
algorithms x circuits.

Execution is delegated to :mod:`repro.runtime`: ``jobs=1`` runs the
starts serially in-process (the historical behaviour), ``jobs=N`` fans
them out to a worker pool.  Either way the per-start seeds come from
the same :func:`repro.rng.child_seeds` stream, so the cut statistics
are identical at any worker count; only the timing columns change.

Long sweeps get three robustness knobs threaded straight through to
the runtime: ``faults=`` (a deterministic
:class:`~repro.faults.FaultPlan`, for chaos testing the sweep itself),
``verify=`` (trust-but-verify recomputation of every returned
solution), and ``min_ok_fraction`` (the survival quorum: a sweep
degrades to statistics over the surviving starts — with a structured
failure report on the cell — instead of dying because a few starts
did).  ``run_matrix(checkpoint=...)`` additionally streams finished
records to a JSONL file and resumes a killed sweep from it, skipping
finished (cell, start) pairs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from statistics import mean, pstdev
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import ConfigError, HarnessError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, stable_seed

__all__ = ["Algorithm", "CellStats", "run_cell", "run_matrix"]


@dataclass(frozen=True)
class Algorithm:
    """A named partitioner: ``fn(hg, seed) -> result`` with ``.cut``."""

    name: str
    fn: Callable[[Hypergraph, int], object]


@dataclass
class CellStats:
    """min/avg/std cut and wall/CPU time over N runs of one algorithm
    on one circuit.

    ``cpu_seconds`` is genuine CPU time (``time.process_time``, summed
    across workers when the cell ran in parallel) — what the paper's
    Table VIII reports.  ``wall_seconds`` is elapsed wall clock for the
    whole cell.  Historically ``cpu_seconds`` held wall time; passing
    only ``cpu_seconds`` keeps old call sites constructible (wall
    defaults to the same value) but new code should set both.
    ``failures`` counts runs that crashed, timed out, or returned a
    result that failed verification; their cuts are absent from
    ``cuts``, and ``report`` (when any start was lost) carries the
    structured per-start account of what went wrong.
    """

    algorithm: str
    circuit: str
    cuts: List[int]
    cpu_seconds: float
    wall_seconds: Optional[float] = None
    failures: int = 0
    report: Optional[object] = None

    def __post_init__(self):
        if self.wall_seconds is None:
            self.wall_seconds = self.cpu_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Deprecated alias for :attr:`wall_seconds` (the quantity the
        pre-runtime ``cpu_seconds`` actually measured)."""
        warnings.warn(
            "CellStats.elapsed_seconds is deprecated; use wall_seconds",
            DeprecationWarning, stacklevel=2)
        return self.wall_seconds

    @property
    def cpu_time(self) -> float:
        """Deprecated alias for :attr:`wall_seconds`.

        Historically the harness's "cpu time" column held wall clock;
        genuine CPU time lives in :attr:`cpu_seconds`.
        """
        warnings.warn(
            "CellStats.cpu_time is deprecated; use wall_seconds "
            "(wall clock) or cpu_seconds (CPU time)",
            DeprecationWarning, stacklevel=2)
        return self.wall_seconds

    @property
    def runs(self) -> int:
        return len(self.cuts)

    def _require_cuts(self) -> List[int]:
        if not self.cuts:
            raise HarnessError(
                f"no successful runs of {self.algorithm!r} on "
                f"{self.circuit!r} ({self.failures} failed); "
                "cut statistics are undefined")
        return self.cuts

    @property
    def min_cut(self) -> int:
        return min(self._require_cuts())

    @property
    def avg_cut(self) -> float:
        return mean(self._require_cuts())

    @property
    def std_cut(self) -> float:
        return pstdev(self._require_cuts())


def run_cell(algorithm: Algorithm, hg: Hypergraph, runs: int,
             seed: SeedLike = 0,
             jobs: int = 1,
             executor=None,
             budget_seconds: Optional[float] = None,
             retries: int = 0,
             faults=None,
             verify: Union[bool, float] = False,
             min_ok_fraction: Optional[float] = None,
             backoff_seconds: float = 0.0,
             completed=None,
             on_record=None,
             trace: Union[None, bool, str] = None,
             metrics_out: Optional[str] = None) -> CellStats:
    """Run one algorithm ``runs`` times on one circuit.

    ``jobs``/``executor`` select the runtime executor (see
    :mod:`repro.runtime`); ``budget_seconds`` and ``retries`` are the
    per-start fault-tolerance knobs, ``backoff_seconds`` the retry
    backoff base.  ``faults`` arms a deterministic
    :class:`~repro.faults.FaultPlan` on every start; ``verify``
    recomputes each returned solution from scratch (corrupt results
    become retried ``invalid`` records, never statistics).
    ``min_ok_fraction`` enforces the survival quorum: below it the cell
    raises :class:`HarnessError` with a structured failure report; at
    or above it the statistics cover the surviving starts.
    ``completed``/``on_record`` are the checkpoint hooks (see
    :func:`run_matrix`).  Defaults reproduce the original serial
    semantics, except that a raising run is recorded as a failure
    instead of aborting the sweep.

    ``trace`` writes the cell's Chrome trace-event stream to a path
    (or, with ``True``, emits into the ambient tracer); ``metrics_out``
    writes the cell's metrics in the Prometheus text format after the
    run.  Neither touches the RNG streams, so the cut statistics are
    unchanged by either.
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    from ..runtime import Portfolio, execute
    portfolio = Portfolio(algorithm=algorithm, hg=hg, runs=runs, seed=seed,
                          budget_seconds=budget_seconds, retries=retries,
                          faults=faults, verify=verify,
                          backoff_seconds=backoff_seconds, trace=trace)
    if metrics_out is not None:
        from ..obs import collecting_metrics, write_prometheus
        with collecting_metrics() as registry:
            outcome = execute(portfolio, jobs=jobs, executor=executor,
                              completed=completed, on_record=on_record)
        write_prometheus(registry, metrics_out)
    else:
        outcome = execute(portfolio, jobs=jobs, executor=executor,
                          completed=completed, on_record=on_record)
    return outcome.require_quorum(min_ok_fraction).to_cell_stats()


def run_matrix(algorithms: Sequence[Algorithm],
               circuits: Sequence[Hypergraph],
               runs: int,
               seed: SeedLike = 0,
               jobs: int = 1,
               budget_seconds: Optional[float] = None,
               retries: int = 0,
               faults=None,
               verify: Union[bool, float] = False,
               min_ok_fraction: Optional[float] = None,
               backoff_seconds: float = 0.0,
               checkpoint=None,
               trace: Union[None, bool, str] = None,
               metrics_out: Optional[str] = None
               ) -> Dict[str, Dict[str, CellStats]]:
    """Sweep ``algorithms x circuits``; result[circuit][algorithm].

    Each (circuit, algorithm) cell derives its seed from the top-level
    seed, the circuit name, and the algorithm name, so adding a row or
    column never changes existing cells.  ``jobs`` parallelises the
    starts within each cell, which keeps the per-cell seed derivation
    (and therefore every cut) byte-identical to a serial sweep.

    ``checkpoint`` names a JSONL file: every finished record is
    streamed to it as it completes, and a sweep that died mid-flight
    resumes from the same call by skipping the (cell, start) pairs
    already on disk — reproducing the uninterrupted sweep's outcomes
    exactly, because each start is a pure function of its
    position-stable seed.  A checkpoint written by a different sweep
    configuration is refused (:class:`~repro.errors.CheckpointError`).
    ``faults``/``verify``/``min_ok_fraction``/``backoff_seconds`` are
    threaded through to every cell (see :func:`run_cell`).

    ``trace`` writes one merged Chrome trace-event stream covering the
    *whole* sweep (a path, or ``True`` for the ambient tracer);
    ``metrics_out`` writes the sweep's metrics in the Prometheus text
    format after the last cell.
    """
    from contextlib import ExitStack
    ckpt = None
    if checkpoint is not None:
        from ..runtime import MatrixCheckpoint
        ckpt = MatrixCheckpoint(
            checkpoint, seed=seed, runs=runs,
            algorithms=[a.name for a in algorithms],
            circuits=[hg.name for hg in circuits])
    try:
        with ExitStack() as stack:
            registry = None
            if isinstance(trace, str):
                from ..obs import tracing
                stack.enter_context(tracing(trace))
                trace = True  # cells emit into the now-ambient writer
            if metrics_out is not None:
                from ..obs import collecting_metrics
                registry = stack.enter_context(collecting_metrics())
            table: Dict[str, Dict[str, CellStats]] = {}
            for hg in circuits:
                row: Dict[str, CellStats] = {}
                for algorithm in algorithms:
                    cell_seed = stable_seed(str(seed), hg.name,
                                            algorithm.name)
                    completed = on_record = None
                    if ckpt is not None:
                        completed = ckpt.done(hg.name, algorithm.name)
                        on_record = (
                            lambda record, c=hg.name, a=algorithm.name:
                            ckpt.write(c, a, record))
                    row[algorithm.name] = run_cell(
                        algorithm, hg, runs, cell_seed, jobs=jobs,
                        budget_seconds=budget_seconds, retries=retries,
                        faults=faults, verify=verify,
                        min_ok_fraction=min_ok_fraction,
                        backoff_seconds=backoff_seconds,
                        completed=completed, on_record=on_record,
                        trace=trace)
                table[hg.name] = row
        if registry is not None:
            from ..obs import write_prometheus
            write_prometheus(registry, metrics_out)
        return table
    finally:
        if ckpt is not None:
            ckpt.close()
