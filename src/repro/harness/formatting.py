"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same row/column structure as the
paper's tables; these helpers keep that output aligned and readable in
a terminal or a log file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table", "format_number", "format_markdown_table",
           "format_html_table"]


def format_number(value: object, digits: int = 1) -> str:
    """Render a table cell: ints verbatim, floats rounded, None blank."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{digits}f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None,
                 digits: int = 1) -> str:
    """Fixed-width ASCII table; first column left-aligned, rest right."""
    rendered: List[List[str]] = [
        [format_number(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            width = widths[i] if i < len(widths) else len(cell)
            parts.append(cell.ljust(width) if i == 0 else cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[object]],
                          digits: int = 1) -> str:
    """GitHub-flavoured markdown pipe table (first column left-aligned,
    the rest right-aligned) — the ``repro report`` building block."""
    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cells) + " |"

    rendered = [[format_number(cell, digits) for cell in row]
                for row in rows]
    lines = [fmt_row(list(headers)),
             fmt_row([":--"] + ["--:"] * (len(headers) - 1))]
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def _html_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def format_html_table(headers: Sequence[str],
                      rows: Sequence[Sequence[object]],
                      digits: int = 1) -> str:
    """Minimal dependency-free HTML table for ``repro report --format
    html``."""
    lines = ["<table>", "<thead><tr>"]
    lines += [f"<th>{_html_escape(str(h))}</th>" for h in headers]
    lines += ["</tr></thead>", "<tbody>"]
    for row in rows:
        cells = "".join(
            f"<td>{_html_escape(format_number(cell, digits))}</td>"
            for cell in row)
        lines.append(f"<tr>{cells}</tr>")
    lines += ["</tbody>", "</table>"]
    return "\n".join(lines)
