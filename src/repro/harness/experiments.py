"""Experiment definitions: one function per paper table/figure.

Every table and figure of the paper's evaluation (Tables I-IX and
Figure 4) has a generator here that runs the experiment on the
synthetic suite and returns a :class:`TableResult` whose headers and
rows mirror the paper's layout.  The benchmark harness
(``benchmarks/``) invokes these and prints them; EXPERIMENTS.md records
paper-vs-measured values.

Scale defaults are chosen so the whole suite runs in minutes of pure
Python rather than the days the paper's full 100-run protocol would
take (see DESIGN.md, substitutions); all knobs are parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.gordian import gordian_quadrisection
from ..baselines.lsmc import lsmc_bipartition, lsmc_kway
from ..baselines.prop import prop_bipartition
from ..baselines.spectral import spectral_bipartition
from ..baselines.twophase import two_phase_fm
from ..core.config import MLConfig
from ..core.ml import ml_bipartition
from ..core.quadrisection import default_quad_config, ml_kway
from ..hypergraph import (Hypergraph, benchmark_spec, compute_stats,
                          load_circuit)
from ..rng import SeedLike, stable_seed
from ..fm.config import FMConfig
from ..fm.engine import fm_bipartition
from ..fm.kway import kway_partition
from .formatting import format_table
from .literature import (TABLE_VII_ALGORITHMS, TABLE_VII_CUTS,
                         TABLE_VIII_CPU, percent_improvement)
from .runner import Algorithm, CellStats, run_cell

__all__ = [
    "TableResult",
    "BENCH_CIRCUITS",
    "BENCH_SCALE",
    "BENCH_RUNS",
    "fm_algorithm",
    "clip_algorithm",
    "ml_algorithm",
    "table1_characteristics",
    "table2_tiebreak",
    "table3_fm_vs_clip",
    "table4_ml_vs_clip",
    "table5_mlf_ratio",
    "table6_mlc_ratio",
    "table7_comparison",
    "table8_cpu",
    "table9_quadrisection",
    "figure4_ratio_tradeoff",
]

#: Default circuit subset for the fast experiment suite: spans the
#: small, medium, and large thirds of Table I.
BENCH_CIRCUITS = ("struct", "primary2", "s9234", "biomed", "avqsmall")

#: Default size scale applied to Table I circuits (see DESIGN.md).
BENCH_SCALE = 0.1

#: Default number of runs per cell (the paper uses 100).
BENCH_RUNS = 5


@dataclass
class TableResult:
    """One reproduced table: layout mirroring the paper + raw stats."""

    title: str
    headers: List[str]
    rows: List[List[object]]
    cells: Dict[str, Dict[str, CellStats]] = field(default_factory=dict)

    def render(self, digits: int = 1) -> str:
        return format_table(self.headers, self.rows, title=self.title,
                            digits=digits)


# ----------------------------------------------------------------------
# Algorithm factories.
# ----------------------------------------------------------------------

def fm_algorithm(policy: str = "lifo", name: Optional[str] = None,
                 **kwargs) -> Algorithm:
    """Flat FM with the given bucket policy."""
    config = FMConfig(bucket_policy=policy, **kwargs)
    return Algorithm(name or f"FM-{policy.upper()}",
                     lambda hg, s: fm_bipartition(hg, config=config, seed=s))


def clip_algorithm(name: str = "CLIP", **kwargs) -> Algorithm:
    """Flat CLIP."""
    config = FMConfig(clip=True, **kwargs)
    return Algorithm(name,
                     lambda hg, s: fm_bipartition(hg, config=config, seed=s))


def ml_algorithm(engine: str = "clip", ratio: float = 1.0,
                 threshold: int = 35, name: Optional[str] = None,
                 **kwargs) -> Algorithm:
    """ML_F / ML_C with matching ratio ``R`` and threshold ``T``."""
    config = MLConfig(engine=engine, matching_ratio=ratio,
                      coarsening_threshold=threshold, **kwargs)
    label = name or f"ML{'C' if engine == 'clip' else 'F'}(R={ratio:g})"
    return Algorithm(label,
                     lambda hg, s: ml_bipartition(hg, config=config, seed=s))


def _load(circuits: Sequence[str], scale: float,
          seed: SeedLike) -> List[Hypergraph]:
    return [load_circuit(name, scale=scale, seed=seed) for name in circuits]


def _cell_seed(seed: SeedLike, circuit: str, algorithm: str) -> int:
    return stable_seed(str(seed), circuit, algorithm)


def _sweep(algorithms: Sequence[Algorithm], circuits: Sequence[Hypergraph],
           runs: int, seed: SeedLike,
           jobs: int = 1) -> Dict[str, Dict[str, CellStats]]:
    cells: Dict[str, Dict[str, CellStats]] = {}
    for hg in circuits:
        cells[hg.name] = {}
        for algorithm in algorithms:
            cells[hg.name][algorithm.name] = run_cell(
                algorithm, hg, runs,
                _cell_seed(seed, hg.name, algorithm.name), jobs=jobs)
    return cells


# ----------------------------------------------------------------------
# Table I.
# ----------------------------------------------------------------------

def table1_characteristics(circuits: Sequence[str] = BENCH_CIRCUITS,
                           scale: float = BENCH_SCALE,
                           seed: SeedLike = 0) -> TableResult:
    """Benchmark characteristics: Table I spec vs generated stand-in."""
    headers = ["Test Case", "Spec Modules", "Spec Nets", "Spec Pins",
               "Gen Modules", "Gen Nets", "Gen Pins", "Scale"]
    rows: List[List[object]] = []
    for name in circuits:
        spec = benchmark_spec(name)
        stats = compute_stats(load_circuit(name, scale=scale, seed=seed))
        rows.append([name, spec.modules, spec.nets, spec.pins,
                     stats.modules, stats.nets, stats.pins, scale])
    return TableResult(
        title="Table I: benchmark circuit characteristics "
              "(paper spec vs synthetic stand-in)",
        headers=headers, rows=rows)


# ----------------------------------------------------------------------
# Table II: LIFO vs FIFO vs RND buckets.
# ----------------------------------------------------------------------

def table2_tiebreak(circuits: Sequence[str] = BENCH_CIRCUITS,
                    scale: float = BENCH_SCALE,
                    runs: int = BENCH_RUNS,
                    seed: SeedLike = 0,
                    jobs: int = 1) -> TableResult:
    """FM under the three bucket disciplines (min/avg/std per circuit)."""
    algorithms = [fm_algorithm("lifo", name="LIFO"),
                  fm_algorithm("fifo", name="FIFO"),
                  fm_algorithm("random", name="RND")]
    cells = _sweep(algorithms, _load(circuits, scale, seed), runs, seed,
                   jobs=jobs)
    headers = ["Test Case",
               "MIN LIFO", "MIN FIFO", "MIN RND",
               "AVG LIFO", "AVG FIFO", "AVG RND",
               "STD LIFO", "STD FIFO", "STD RND"]
    rows = []
    for name in circuits:
        row_cells = cells[name]
        rows.append([name]
                    + [row_cells[a].min_cut for a in ("LIFO", "FIFO", "RND")]
                    + [round(row_cells[a].avg_cut, 1)
                       for a in ("LIFO", "FIFO", "RND")]
                    + [round(row_cells[a].std_cut, 1)
                       for a in ("LIFO", "FIFO", "RND")])
    return TableResult(
        title=f"Table II: FM bucket disciplines ({runs} runs, r=0.1)",
        headers=headers, rows=rows, cells=cells)


# ----------------------------------------------------------------------
# Table III: FM vs CLIP.
# ----------------------------------------------------------------------

def table3_fm_vs_clip(circuits: Sequence[str] = BENCH_CIRCUITS,
                      scale: float = BENCH_SCALE,
                      runs: int = BENCH_RUNS,
                      seed: SeedLike = 0,
                      jobs: int = 1) -> TableResult:
    """FM vs CLIP: min/avg/std cut and total CPU time."""
    algorithms = [fm_algorithm("lifo", name="FM"), clip_algorithm("CLIP")]
    cells = _sweep(algorithms, _load(circuits, scale, seed), runs, seed,
                   jobs=jobs)
    headers = ["Test Case", "MIN FM", "MIN CLIP", "AVG FM", "AVG CLIP",
               "STD FM", "STD CLIP", "CPU FM", "CPU CLIP"]
    rows = []
    for name in circuits:
        fm, clip = cells[name]["FM"], cells[name]["CLIP"]
        rows.append([name, fm.min_cut, clip.min_cut,
                     round(fm.avg_cut, 1), round(clip.avg_cut, 1),
                     round(fm.std_cut, 1), round(clip.std_cut, 1),
                     round(fm.cpu_seconds, 2), round(clip.cpu_seconds, 2)])
    return TableResult(
        title=f"Table III: FM vs CLIP ({runs} runs)",
        headers=headers, rows=rows, cells=cells)


# ----------------------------------------------------------------------
# Table IV: CLIP vs ML_F vs ML_C (R = 1).
# ----------------------------------------------------------------------

def table4_ml_vs_clip(circuits: Sequence[str] = BENCH_CIRCUITS,
                      scale: float = BENCH_SCALE,
                      runs: int = BENCH_RUNS,
                      seed: SeedLike = 0,
                      threshold: int = 35,
                      jobs: int = 1) -> TableResult:
    """CLIP vs the two ML variants with complete matching (R = 1)."""
    algorithms = [clip_algorithm("CLIP"),
                  ml_algorithm("fm", 1.0, threshold, name="MLF"),
                  ml_algorithm("clip", 1.0, threshold, name="MLC")]
    cells = _sweep(algorithms, _load(circuits, scale, seed), runs, seed,
                   jobs=jobs)
    names = ("CLIP", "MLF", "MLC")
    headers = (["Test Case"]
               + [f"MIN {n}" for n in names]
               + [f"AVG {n}" for n in names]
               + [f"CPU {n}" for n in names])
    rows = []
    for name in circuits:
        row_cells = cells[name]
        rows.append([name]
                    + [row_cells[n].min_cut for n in names]
                    + [round(row_cells[n].avg_cut, 1) for n in names]
                    + [round(row_cells[n].cpu_seconds, 2) for n in names])
    return TableResult(
        title=f"Table IV: CLIP vs ML_F vs ML_C, R=1.0, T={threshold} "
              f"({runs} runs)",
        headers=headers, rows=rows, cells=cells)


# ----------------------------------------------------------------------
# Tables V and VI: the matching-ratio sweep.
# ----------------------------------------------------------------------

def _ratio_sweep(engine: str, title: str,
                 circuits: Sequence[str], scale: float, runs: int,
                 seed: SeedLike, ratios: Sequence[float],
                 threshold: int, jobs: int = 1) -> TableResult:
    algorithms = [ml_algorithm(engine, r, threshold, name=f"R={r:g}")
                  for r in ratios]
    cells = _sweep(algorithms, _load(circuits, scale, seed), runs, seed,
                   jobs=jobs)
    names = [a.name for a in algorithms]
    headers = (["Test Case"]
               + [f"MIN {n}" for n in names]
               + [f"AVG {n}" for n in names]
               + [f"CPU {n}" for n in names])
    rows = []
    for name in circuits:
        row_cells = cells[name]
        rows.append([name]
                    + [row_cells[n].min_cut for n in names]
                    + [round(row_cells[n].avg_cut, 1) for n in names]
                    + [round(row_cells[n].cpu_seconds, 2) for n in names])
    return TableResult(title=title, headers=headers, rows=rows, cells=cells)


def table5_mlf_ratio(circuits: Sequence[str] = BENCH_CIRCUITS,
                     scale: float = BENCH_SCALE,
                     runs: int = BENCH_RUNS,
                     seed: SeedLike = 0,
                     ratios: Sequence[float] = (1.0, 0.5, 0.33),
                     threshold: int = 35,
                     jobs: int = 1) -> TableResult:
    """ML_F for R in {1.0, 0.5, 0.33} (Table V)."""
    return _ratio_sweep(
        "fm", f"Table V: ML_F matching-ratio sweep ({runs} runs)",
        circuits, scale, runs, seed, ratios, threshold, jobs=jobs)


def table6_mlc_ratio(circuits: Sequence[str] = BENCH_CIRCUITS,
                     scale: float = BENCH_SCALE,
                     runs: int = BENCH_RUNS,
                     seed: SeedLike = 0,
                     ratios: Sequence[float] = (1.0, 0.5, 0.33),
                     threshold: int = 35,
                     jobs: int = 1) -> TableResult:
    """ML_C for R in {1.0, 0.5, 0.33} (Table VI)."""
    return _ratio_sweep(
        "clip", f"Table VI: ML_C matching-ratio sweep ({runs} runs)",
        circuits, scale, runs, seed, ratios, threshold, jobs=jobs)


# ----------------------------------------------------------------------
# Table VII: ML_C vs other bipartitioners.
# ----------------------------------------------------------------------

def table7_comparison(circuits: Sequence[str] = BENCH_CIRCUITS,
                      scale: float = BENCH_SCALE,
                      runs: int = BENCH_RUNS,
                      runs_small: Optional[int] = None,
                      lsmc_descents: int = 10,
                      seed: SeedLike = 0,
                      jobs: int = 1) -> TableResult:
    """ML_C (R=0.5) vs reimplemented + literature comparators.

    Columns: ML_C min cut over ``runs`` and over the ``runs_small``
    prefix, our reimplemented comparators (single run each of LSMC,
    spectral+FM, PROP, two-phase FM), then the paper's published
    literature columns for the same circuit names, with the percent-
    improvement summary computed like the paper's final rows.
    """
    runs_small = runs_small or max(1, runs // 2)
    mlc = ml_algorithm("clip", 0.5, name="MLC")
    cl_la3 = FMConfig(clip=True, lookahead=3)
    reimplemented = [
        Algorithm("LSMC", lambda hg, s: lsmc_bipartition(
            hg, descents=lsmc_descents, seed=s)),
        Algorithm("Spectral+FM",
                  lambda hg, s: spectral_bipartition(hg, seed=s)),
        Algorithm("PROP", lambda hg, s: prop_bipartition(hg, seed=s)),
        Algorithm("2phase", lambda hg, s: two_phase_fm(hg, seed=s)),
        Algorithm("CL-LA3", lambda hg, s: fm_bipartition(
            hg, config=cl_la3, seed=s)),
    ]
    loaded = _load(circuits, scale, seed)
    cells = _sweep([mlc] + reimplemented, loaded, runs, seed, jobs=jobs)

    headers = (["Test Case", f"MLC({runs})", f"MLC({runs_small})"]
               + [a.name for a in reimplemented]
               + [f"lit:{a}" for a in TABLE_VII_ALGORITHMS])
    rows: List[List[object]] = []
    ours_full: Dict[str, int] = {}
    ours_small: Dict[str, int] = {}
    for name in circuits:
        row_cells = cells[name]
        mlc_cell = row_cells["MLC"]
        full = mlc_cell.min_cut
        small = min(mlc_cell.cuts[:runs_small])
        ours_full[name] = full
        ours_small[name] = small
        literature = TABLE_VII_CUTS.get(name, {})
        rows.append([name, full, small]
                    + [row_cells[a.name].min_cut for a in reimplemented]
                    + [literature.get(a) for a in TABLE_VII_ALGORITHMS])

    for label, ours in ((f"% imprv ({runs} runs)", ours_full),
                        (f"% imprv ({runs_small} runs)", ours_small)):
        improvements: List[object] = [label, None, None]
        for algorithm in reimplemented:
            theirs = {name: cells[name][algorithm.name].min_cut
                      for name in circuits}
            improvements.append(
                round(percent_improvement(ours, theirs) or 0.0, 1))
        for algo in TABLE_VII_ALGORITHMS:
            # Published cuts were measured on the full-size circuits, so
            # comparing against them is only meaningful at scale 1.0.
            if scale != 1.0:
                improvements.append(None)
                continue
            theirs = {name: TABLE_VII_CUTS.get(name, {}).get(algo)
                      for name in circuits}
            value = percent_improvement(ours, theirs)
            improvements.append(None if value is None else round(value, 1))
        rows.append(improvements)

    return TableResult(
        title=f"Table VII: ML_C (R=0.5) vs other bipartitioners "
              f"({runs}/{runs_small} runs; lit:* columns are the paper's "
              "published values on the real benchmarks)",
        headers=headers, rows=rows, cells=cells)


# ----------------------------------------------------------------------
# Table VIII: CPU comparison.
# ----------------------------------------------------------------------

def table8_cpu(circuits: Sequence[str] = BENCH_CIRCUITS,
               scale: float = BENCH_SCALE,
               runs: int = BENCH_RUNS,
               lsmc_descents: int = 10,
               seed: SeedLike = 0,
               jobs: int = 1) -> TableResult:
    """CPU seconds for ``runs`` runs of each reimplemented algorithm,
    next to the paper's published Table VIII columns."""
    algorithms = [ml_algorithm("clip", 0.5, name="MLC"),
                  fm_algorithm("lifo", name="FM"),
                  clip_algorithm("CLIP"),
                  Algorithm("LSMC", lambda hg, s: lsmc_bipartition(
                      hg, descents=lsmc_descents, seed=s)),
                  Algorithm("PROP",
                            lambda hg, s: prop_bipartition(hg, seed=s))]
    cells = _sweep(algorithms, _load(circuits, scale, seed), runs, seed,
                   jobs=jobs)
    lit_columns = ("MLc10", "GMet", "PB", "GFM", "CL-LA3f", "LSMC")
    headers = (["Test Case"]
               + [f"{a.name} (s)" for a in algorithms]
               + [f"lit:{c}" for c in lit_columns])
    rows = []
    for name in circuits:
        literature = TABLE_VIII_CPU.get(name, {})
        rows.append([name]
                    + [round(cells[name][a.name].cpu_seconds, 2)
                       for a in algorithms]
                    + [literature.get(c) for c in lit_columns])
    return TableResult(
        title=f"Table VIII: CPU time for {runs} runs (ours, this host) "
              "vs published seconds (lit:*, Sparc-era hosts)",
        headers=headers, rows=rows, cells=cells)


# ----------------------------------------------------------------------
# Table IX: quadrisection.
# ----------------------------------------------------------------------

def table9_quadrisection(circuits: Sequence[str] = ("primary2", "biomed",
                                                    "s13207"),
                         scale: float = BENCH_SCALE,
                         runs: int = 3,
                         lsmc_descents: int = 3,
                         seed: SeedLike = 0,
                         jobs: int = 1) -> TableResult:
    """4-way cuts: ML_F vs GORDIAN-sim vs FM4 vs CLIP4 vs LSMC_F/LSMC_C.

    ML uses the paper's Table IX settings (R=1.0, T=100, FM engine,
    sum-of-degrees gain).  GORDIAN is the quadratic-placement
    simulator; its split is deterministic given the pad seed, so it
    gets one run per circuit.
    """
    quad_config = default_quad_config()
    clip4 = FMConfig(clip=True)
    algorithms = [
        Algorithm("MLF4", lambda hg, s: ml_kway(
            hg, k=4, config=quad_config, objective="soed", seed=s)),
        Algorithm("GORDIAN", lambda hg, s: gordian_quadrisection(
            hg, seed=s)),
        Algorithm("FM4", lambda hg, s: kway_partition(
            hg, k=4, objective="soed", seed=s)),
        Algorithm("CLIP4", lambda hg, s: kway_partition(
            hg, k=4, config=clip4, objective="soed", seed=s)),
        Algorithm("LSMCF", lambda hg, s: lsmc_kway(
            hg, k=4, descents=lsmc_descents, seed=s)),
        Algorithm("LSMCC", lambda hg, s: lsmc_kway(
            hg, k=4, descents=lsmc_descents, config=clip4, seed=s)),
    ]
    cells = _sweep(algorithms, _load(circuits, scale, seed), runs, seed,
                   jobs=jobs)
    names = [a.name for a in algorithms]
    headers = ["Test Case"] + [f"{n} min" for n in names] + ["MLF4 avg"]
    rows = []
    for name in circuits:
        row_cells = cells[name]
        rows.append([name]
                    + [row_cells[n].min_cut for n in names]
                    + [round(row_cells["MLF4"].avg_cut, 1)])
    return TableResult(
        title=f"Table IX: 4-way partitioning comparisons ({runs} runs)",
        headers=headers, rows=rows, cells=cells)


# ----------------------------------------------------------------------
# Figure 4: matching ratio vs average cut.
# ----------------------------------------------------------------------

def figure4_ratio_tradeoff(circuits: Sequence[str] = ("avqsmall",),
                           scale: float = BENCH_SCALE,
                           runs: int = BENCH_RUNS,
                           ratios: Sequence[float] = (1.0, 0.8, 0.6, 0.4,
                                                      0.2),
                           seed: SeedLike = 0,
                           jobs: int = 1) -> TableResult:
    """Average ML_C cut as a function of the matching ratio R."""
    loaded = _load(circuits, scale, seed)
    headers = ["R"] + [f"{hg.name} avg cut" for hg in loaded] \
        + [f"{hg.name} cpu" for hg in loaded]
    cells: Dict[str, Dict[str, CellStats]] = {hg.name: {} for hg in loaded}
    rows = []
    for ratio in ratios:
        algorithm = ml_algorithm("clip", ratio, name=f"MLC(R={ratio:g})")
        row: List[object] = [ratio]
        cpu: List[object] = []
        for hg in loaded:
            cell = run_cell(algorithm, hg, runs,
                            _cell_seed(seed, hg.name, algorithm.name),
                            jobs=jobs)
            cells[hg.name][algorithm.name] = cell
            row.append(round(cell.avg_cut, 1))
            cpu.append(round(cell.cpu_seconds, 2))
        rows.append(row + cpu)
    return TableResult(
        title=f"Figure 4: matching ratio vs average cut ({runs} runs "
              "per point)",
        headers=headers, rows=rows, cells=cells)
