"""Published numbers quoted by the paper (Tables VII and VIII).

Table VII compares ML_C against nine algorithms whose cut sizes the
paper *quotes from the literature* rather than rerunning (GMet, HB,
PARABOLI, GFM, GFM_t, CL-LA3_f, CD-LA3_f, CL-PR_f) plus the authors'
own LSMC reimplementation.  We keep those published values as data so
the Table VII/VIII benchmark harnesses can print them next to our
measured columns, exactly as the paper does.

Cells that are blank in the paper (an algorithm did not report that
circuit) — or that are ambiguous in our source scan — are ``None``.
The paper's own summary rows (percent improvement of ML_C over each
algorithm) are reproduced verbatim in :data:`TABLE_VII_IMPROVEMENT`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "TABLE_VII_ALGORITHMS",
    "TABLE_VII_CUTS",
    "TABLE_VII_MLC",
    "TABLE_VII_IMPROVEMENT",
    "TABLE_VIII_CPU",
    "percent_improvement",
]

#: Comparator columns of Table VII, in the paper's order.
TABLE_VII_ALGORITHMS = ("GMet", "HB", "PB", "GFM", "GFMt",
                        "CL-LA3f", "CD-LA3f", "CL-PRf", "LSMC")

#: The paper's own ML_C results (min cut over 100 runs / over 10 runs).
TABLE_VII_MLC: Dict[str, Dict[str, int]] = {
    "balu": {"100": 27, "10": 27},
    "bm1": {"100": 47, "10": 51},
    "primary1": {"100": 47, "10": 52},
    "test04": {"100": 48, "10": 49},
    "test03": {"100": 56, "10": 58},
    "test02": {"100": 89, "10": 92},
    "test06": {"100": 60, "10": 60},
    "struct": {"100": 33, "10": 33},
    "test05": {"100": 71, "10": 72},
    "19ks": {"100": 106, "10": 108},
    "primary2": {"100": 139, "10": 145},
    "s9234": {"100": 40, "10": 41},
    "biomed": {"100": 83, "10": 84},
    "s13207": {"100": 55, "10": 55},
    "s15850": {"100": 44, "10": 56},
    "industry2": {"100": 164, "10": 174},
    "industry3": {"100": 243, "10": 243},
    "s35932": {"100": 41, "10": 42},
    "s38584": {"100": 47, "10": 48},
    "avqsmall": {"100": 128, "10": 134},
    "s38417": {"100": 49, "10": 50},
    "avqlarge": {"100": 128, "10": 131},
    "golem3": {"100": 1346, "10": 1374},
}

#: Published comparator cuts (Table VII); ``None`` = blank/ambiguous.
TABLE_VII_CUTS: Dict[str, Dict[str, Optional[int]]] = {
    "balu": {"GMet": 27, "HB": 41, "PB": 27, "GFM": 28, "GFMt": 27,
             "CL-LA3f": 27, "CD-LA3f": 27, "CL-PRf": 27, "LSMC": None},
    "bm1": {"GMet": 48, "HB": None, "PB": 51, "GFM": None, "GFMt": None,
            "CL-LA3f": 47, "CD-LA3f": 47, "CL-PRf": 49, "LSMC": None},
    "primary1": {"GMet": 47, "HB": 53, "PB": 47, "GFM": 51, "GFMt": 51,
                 "CL-LA3f": 47, "CD-LA3f": 51, "CL-PRf": 49, "LSMC": None},
    "test04": {"GMet": 49, "HB": None, "PB": 49, "GFM": None, "GFMt": None,
               "CL-LA3f": 48, "CD-LA3f": 52, "CL-PRf": 69, "LSMC": None},
    "test03": {"GMet": 62, "HB": None, "PB": 56, "GFM": None, "GFMt": None,
               "CL-LA3f": 57, "CD-LA3f": 57, "CL-PRf": 63, "LSMC": None},
    "test02": {"GMet": 95, "HB": None, "PB": 91, "GFM": None, "GFMt": None,
               "CL-LA3f": 89, "CD-LA3f": 87, "CL-PRf": 102, "LSMC": None},
    "test06": {"GMet": 94, "HB": None, "PB": 60, "GFM": None, "GFMt": None,
               "CL-LA3f": 60, "CD-LA3f": 60, "CL-PRf": 60, "LSMC": None},
    "struct": {"GMet": 33, "HB": 40, "PB": 41, "GFM": 36, "GFMt": 33,
               "CL-LA3f": 36, "CD-LA3f": 33, "CL-PRf": 43, "LSMC": None},
    "test05": {"GMet": 104, "HB": None, "PB": 80, "GFM": None, "GFMt": None,
               "CL-LA3f": 74, "CD-LA3f": 77, "CL-PRf": 97, "LSMC": None},
    "19ks": {"GMet": 106, "HB": None, "PB": 104, "GFM": None, "GFMt": None,
             "CL-LA3f": 104, "CD-LA3f": 104, "CL-PRf": 123, "LSMC": None},
    "primary2": {"GMet": 142, "HB": 146, "PB": 139, "GFM": 139,
                 "GFMt": 142, "CL-LA3f": 151, "CD-LA3f": 152,
                 "CL-PRf": 163, "LSMC": None},
    "s9234": {"GMet": 43, "HB": 45, "PB": 74, "GFM": 41, "GFMt": 44,
              "CL-LA3f": 45, "CD-LA3f": 44, "CL-PRf": 42, "LSMC": 44},
    "biomed": {"GMet": 83, "HB": 135, "PB": 84, "GFM": 92, "GFMt": None,
               "CL-LA3f": 83, "CD-LA3f": 83, "CL-PRf": 84, "LSMC": 83},
    "s13207": {"GMet": 70, "HB": 62, "PB": 91, "GFM": 66, "GFMt": 61,
               "CL-LA3f": 66, "CD-LA3f": 69, "CL-PRf": 71, "LSMC": 68},
    "s15850": {"GMet": 53, "HB": 46, "PB": 91, "GFM": 63, "GFMt": 46,
               "CL-LA3f": 71, "CD-LA3f": 59, "CL-PRf": 56, "LSMC": 91},
    "industry2": {"GMet": 177, "HB": 193, "PB": 211, "GFM": 175,
                  "GFMt": None, "CL-LA3f": 200, "CD-LA3f": 182,
                  "CL-PRf": 192, "LSMC": 246},
    "industry3": {"GMet": 243, "HB": 267, "PB": 241, "GFM": 244,
                  "GFMt": None, "CL-LA3f": 260, "CD-LA3f": 243,
                  "CL-PRf": 243, "LSMC": 242},
    "s35932": {"GMet": 57, "HB": 46, "PB": 62, "GFM": 41, "GFMt": 44,
               "CL-LA3f": 73, "CD-LA3f": 73, "CL-PRf": 42, "LSMC": 97},
    "s38584": {"GMet": 53, "HB": 52, "PB": 55, "GFM": 47, "GFMt": 54,
               "CL-LA3f": 50, "CD-LA3f": 47, "CL-PRf": 51, "LSMC": 51},
    "avqsmall": {"GMet": 144, "HB": None, "PB": 224, "GFM": 129,
                 "GFMt": None, "CL-LA3f": 139, "CD-LA3f": 144,
                 "CL-PRf": None, "LSMC": 270},
    "s38417": {"GMet": 69, "HB": 49, "PB": 81, "GFM": 62, "GFMt": None,
               "CL-LA3f": 70, "CD-LA3f": 74, "CL-PRf": 65, "LSMC": 116},
    "avqlarge": {"GMet": 144, "HB": None, "PB": 139, "GFM": 127,
                 "GFMt": None, "CL-LA3f": 137, "CD-LA3f": 143,
                 "CL-PRf": None, "LSMC": 255},
    "golem3": {"GMet": 2111, "HB": None, "PB": None, "GFM": None,
               "GFMt": None, "CL-LA3f": None, "CD-LA3f": None,
               "CL-PRf": None, "LSMC": 1629},
}

#: The paper's summary rows: average percent improvement of ML_C (100
#: runs / 10 runs) over each comparator.  HB has no 100-run entry in
#: the scan we transcribe from.
TABLE_VII_IMPROVEMENT: Dict[str, Dict[str, Optional[float]]] = {
    "100": {"GMet": 16.9, "HB": 9.5, "PB": 27.9, "GFM": 11.1, "GFMt": 7.8,
            "CL-LA3f": 9.2, "CD-LA3f": 11.5, "CL-PRf": 6.9, "LSMC": 21.9},
    "10": {"GMet": 8.4, "HB": 3.0, "PB": 20.6, "GFM": 6.5, "GFMt": 3.6,
           "CL-LA3f": 6.0, "CD-LA3f": 7.9, "CL-PRf": 5.2, "LSMC": 19.1},
}

#: Published CPU seconds (Table VIII): ML_C column is 10 runs on a Sun
#: Sparc 5; PB on a DEC 3000/500 AXP; GFM/GFM_t on a Sparc 10; the rest
#: on the Sparc 5.  ``None`` = blank in the paper / ambiguous scan.
TABLE_VIII_CPU: Dict[str, Dict[str, Optional[float]]] = {
    "balu": {"MLc10": 17, "GMet": 14, "PB": 16, "GFM": 24, "GFMt": 25,
             "CL-LA3f": 32, "CD-LA3f": 31, "CL-PRf": 34, "LSMC": 41},
    "bm1": {"MLc10": 18, "GMet": 12, "PB": None, "GFM": None, "GFMt": None,
            "CL-LA3f": 37, "CD-LA3f": 47, "CL-PRf": 36, "LSMC": 43},
    "primary1": {"MLc10": 18, "GMet": 12, "PB": 18, "GFM": 16, "GFMt": 25,
                 "CL-LA3f": 36, "CD-LA3f": 48, "CL-PRf": 37, "LSMC": 42},
    "test04": {"MLc10": 41, "GMet": 21, "PB": None, "GFM": None,
               "GFMt": None, "CL-LA3f": 81, "CD-LA3f": 106,
               "CL-PRf": 114, "LSMC": 89},
    "test03": {"MLc10": 47, "GMet": 23, "PB": None, "GFM": None,
               "GFMt": None, "CL-LA3f": 88, "CD-LA3f": 107,
               "CL-PRf": 95, "LSMC": 92},
    "test02": {"MLc10": 45, "GMet": 26, "PB": None, "GFM": None,
               "GFMt": None, "CL-LA3f": 99, "CD-LA3f": 124,
               "CL-PRf": 109, "LSMC": 94},
    "test06": {"MLc10": 55, "GMet": 32, "PB": None, "GFM": 50,
               "GFMt": None, "CL-LA3f": 55, "CD-LA3f": 175,
               "CL-PRf": 99, "LSMC": None},
    "struct": {"MLc10": 35, "GMet": 27, "PB": 35, "GFM": 80, "GFMt": 32,
               "CL-LA3f": 45, "CD-LA3f": 54, "CL-PRf": 75, "LSMC": 83},
    "test05": {"MLc10": 74, "GMet": 46, "PB": None, "GFM": None,
               "GFMt": None, "CL-LA3f": 141, "CD-LA3f": 162,
               "CL-PRf": 188, "LSMC": 148},
    "19ks": {"MLc10": 84, "GMet": 39, "PB": None, "GFM": None,
             "GFMt": None, "CL-LA3f": 178, "CD-LA3f": 216,
             "CL-PRf": 219, "LSMC": 279},
    "primary2": {"MLc10": 90, "GMet": 53, "PB": 137, "GFM": 224,
                 "GFMt": 61, "CL-LA3f": 167, "CD-LA3f": 210,
                 "CL-PRf": 353, "LSMC": 176},
    "s9234": {"MLc10": 97, "GMet": 58, "PB": 490, "GFM": 672, "GFMt": 186,
              "CL-LA3f": 175, "CD-LA3f": 270, "CL-PRf": 264, "LSMC": 326},
    "biomed": {"MLc10": 172, "GMet": 95, "PB": 711, "GFM": 1440,
               "GFMt": 371, "CL-LA3f": 231, "CD-LA3f": 362,
               "CL-PRf": 572, "LSMC": 342},
    "s13207": {"MLc10": 155, "GMet": 102, "PB": 2060, "GFM": 1920,
               "GFMt": 397, "CL-LA3f": 220, "CD-LA3f": 429,
               "CL-PRf": 380, "LSMC": 505},
    "s15850": {"MLc10": 189, "GMet": 114, "PB": 1731, "GFM": 2560,
               "GFMt": 530, "CL-LA3f": 267, "CD-LA3f": 543,
               "CL-PRf": 576, "LSMC": 598},
    "industry2": {"MLc10": 502, "GMet": 245, "PB": 1367, "GFM": 4320,
                  "GFMt": 819, "CL-LA3f": 1129, "CD-LA3f": 1453,
                  "CL-PRf": 2127, "LSMC": 944},
    "industry3": {"MLc10": 667, "GMet": 299, "PB": 761, "GFM": 4000,
                  "GFMt": 861, "CL-LA3f": 1419, "CD-LA3f": 1944,
                  "CL-PRf": 1920, "LSMC": 1192},
    "s35932": {"MLc10": 427, "GMet": 266, "PB": 2627, "GFM": 10160,
               "GFMt": 1088, "CL-LA3f": 463, "CD-LA3f": 964,
               "CL-PRf": 1085, "LSMC": 1191},
    "s38584": {"MLc10": 490, "GMet": 397, "PB": 6518, "GFM": 9680,
               "GFMt": 3463, "CL-LA3f": 748, "CD-LA3f": 1339,
               "CL-PRf": 1950, "LSMC": 1586},
    "avqsmall": {"MLc10": 603, "GMet": 328, "PB": 4099, "GFM": None,
                 "GFMt": 1260, "CL-LA3f": 2507, "CD-LA3f": 2082,
                 "CL-PRf": None, "LSMC": 1600},
    "s38417": {"MLc10": 496, "GMet": 281, "PB": 2042, "GFM": 11280,
               "GFMt": 1062, "CL-LA3f": 811, "CD-LA3f": 1733,
               "CL-PRf": 1690, "LSMC": 1676},
    "avqlarge": {"MLc10": 666, "GMet": 417, "PB": 4135, "GFM": None,
                 "GFMt": 1430, "CL-LA3f": 3145, "CD-LA3f": 2126,
                 "CL-PRf": None, "LSMC": 1742},
    "golem3": {"MLc10": 10483, "GMet": 450, "PB": None, "GFM": None,
               "GFMt": None, "CL-LA3f": None, "CD-LA3f": None,
               "CL-PRf": None, "LSMC": 10823},
}


def percent_improvement(ours: Dict[str, int],
                        theirs: Dict[str, Optional[int]]) -> Optional[float]:
    """Average percent cut improvement of ``ours`` over ``theirs``.

    Averaged over circuits present (non-``None``) in both, as the
    paper's summary rows are; returns ``None`` with no common circuit.
    """
    deltas: List[float] = []
    for circuit, theirs_cut in theirs.items():
        ours_cut = ours.get(circuit)
        if theirs_cut is None or ours_cut is None or theirs_cut == 0:
            continue
        deltas.append(100.0 * (theirs_cut - ours_cut) / theirs_cut)
    if not deltas:
        return None
    return sum(deltas) / len(deltas)
