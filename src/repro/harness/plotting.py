"""Terminal line charts for the paper's figures.

Figure 4 of the paper is a line chart (matching ratio vs average cut);
this renderer produces the equivalent as fixed-width text so benchmark
logs carry the figure, not just its numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@"


def ascii_chart(xs: Sequence[float],
                series: Dict[str, Sequence[float]],
                width: int = 60,
                height: int = 16,
                title: Optional[str] = None,
                x_label: str = "",
                y_label: str = "") -> str:
    """Render one or more y-series over shared x values.

    Each series gets a marker character; points are plotted on a
    ``width x height`` grid with linear scales, and min/max ticks are
    printed on both axes.
    """
    if not xs:
        raise ConfigError("ascii_chart needs at least one x value")
    if not series:
        raise ConfigError("ascii_chart needs at least one series")
    if width < 10 or height < 4:
        raise ConfigError("chart must be at least 10x4")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigError(
                f"series {name!r} has {len(ys)} points for {len(xs)} "
                "x values")

    x_min, x_max = min(xs), max(xs)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = round((x - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    top_tick = f"{y_max:g}"
    bottom_tick = f"{y_min:g}"
    gutter = max(len(top_tick), len(bottom_tick))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_tick.rjust(gutter)
        elif i == height - 1:
            label = bottom_tick.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    left = f"{x_min:g}"
    right = f"{x_max:g}"
    padding = width - len(left) - len(right)
    lines.append(" " * (gutter + 2) + left + " " * max(1, padding) + right)
    if x_label:
        lines.append(" " * (gutter + 2) + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(sorted(series)))
    lines.append(legend)
    return "\n".join(lines)
