"""Experiment harness: multistart runner, table formatting, the paper's
published numbers, and generators for every table/figure."""

from .experiments import (BENCH_CIRCUITS, BENCH_RUNS, BENCH_SCALE,
                          TableResult, clip_algorithm,
                          figure4_ratio_tradeoff, fm_algorithm,
                          ml_algorithm, table1_characteristics,
                          table2_tiebreak, table3_fm_vs_clip,
                          table4_ml_vs_clip, table5_mlf_ratio,
                          table6_mlc_ratio, table7_comparison, table8_cpu,
                          table9_quadrisection)
from .formatting import format_number, format_table
from .plotting import ascii_chart
from .literature import (TABLE_VII_ALGORITHMS, TABLE_VII_CUTS,
                         TABLE_VII_IMPROVEMENT, TABLE_VII_MLC,
                         TABLE_VIII_CPU, percent_improvement)
from .runner import Algorithm, CellStats, run_cell, run_matrix

__all__ = [
    "Algorithm",
    "CellStats",
    "run_cell",
    "run_matrix",
    "format_table",
    "format_number",
    "ascii_chart",
    "TableResult",
    "BENCH_CIRCUITS",
    "BENCH_SCALE",
    "BENCH_RUNS",
    "fm_algorithm",
    "clip_algorithm",
    "ml_algorithm",
    "table1_characteristics",
    "table2_tiebreak",
    "table3_fm_vs_clip",
    "table4_ml_vs_clip",
    "table5_mlf_ratio",
    "table6_mlc_ratio",
    "table7_comparison",
    "table8_cpu",
    "table9_quadrisection",
    "figure4_ratio_tradeoff",
    "TABLE_VII_ALGORITHMS",
    "TABLE_VII_CUTS",
    "TABLE_VII_MLC",
    "TABLE_VII_IMPROVEMENT",
    "TABLE_VIII_CPU",
    "percent_improvement",
]
