"""The service engine: caches, coalescing, batching, and execution.

This is where the daemon composes the existing subsystems into one
serving pipeline::

    request ──► result cache ──► coalescer ──► execution lane ──► runtime
                  (hit: copy)     (dup: await    (batch + thread)   (ledger)
                                   leader)

* The **result cache** (:class:`~repro.service.cache.ResultCache`)
  returns finished payloads for repeated request keys without touching
  the runtime at all.
* The **coalescer** collapses concurrent identical requests into one
  execution.
* The **execution lane** is a single consumer draining a pending list
  through one worker thread.  One portfolio executes at a time — the
  runtime's process-pool plumbing and the obs singletons are
  process-wide, so the lane is what makes them safe under a concurrent
  server — and while the lane is busy, the event loop keeps answering
  cache hits, health checks, and metric scrapes.
* **Batching**: when the consumer pops a request, it also takes every
  queued request with the same (netlist, config) — different seeds
  welcome — and merges their child-seed streams into one
  :class:`~repro.runtime.BatchPortfolio`.  Records are split back per
  request afterwards, re-indexed from zero, so each request's result —
  and its ledger entry — is byte-identical to a standalone CLI run of
  the same (netlist, config, seed).
* Same-netlist requests share one parsed :class:`Hypergraph` via the
  netlist cache, which is also what lets ``ml-reuse`` requests share a
  single :class:`~repro.runtime.HierarchyCache` entry (the hierarchy
  cache keys on ``id(hg)``): many seeds, one coarsening.

Everything the engine executes lands in the run ledger exactly like a
CLI run — the service is a front-end to the runtime, not a fork of it.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import secrets
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from statistics import median
from typing import Callable, Dict, List, Optional

from ..obs import get_logger, record_result
from ..partition import BalanceConstraint
from ..rng import child_seeds
from ..runtime import (BatchPortfolio, Job, Portfolio, PortfolioResult,
                       HierarchyCache, execute, get_executor,
                       ml_reuse_algorithm)
from ..solvers import build_algorithm, ml_config_for
from .cache import NetlistCache, ResultCache
from .coalescer import Coalescer
from .protocol import (PartitionRequest, ProtocolError, SCHEMA_VERSION,
                       canonical_json)

_log = get_logger("service.engine")

__all__ = ["ServiceEngine", "PendingRun"]

#: Counter names the engine tracks (and exports as
#: ``repro_service_<name>_total``).
_COUNTERS = ("requests", "cache_hits", "cache_misses", "coalesced",
             "executed_portfolios", "executed_starts", "batched_requests",
             "errors")


@dataclass
class PendingRun:
    """One request waiting on (or executing in) the lane."""

    id: str
    request: PartitionRequest
    key: str
    future: asyncio.Future
    #: Requests sharing a batch key may merge; ``None`` opts out
    #: (traced requests need their own portfolio).
    batch_key: Optional[str] = None
    trace_path: Optional[str] = None
    queued_at: float = field(default_factory=time.monotonic)


class ExecutionLane:
    """Single-consumer execution queue with same-group batching."""

    def __init__(self, runner: Callable[[List[PendingRun]], List[dict]]):
        self._runner = runner
        self._pending: List[PendingRun] = []
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._busy = False
        self.draining = False

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._consume(), name="repro-service-lane")

    @property
    def queued(self) -> int:
        return len(self._pending)

    @property
    def busy(self) -> bool:
        return self._busy

    async def submit(self, run: PendingRun) -> dict:
        if self.draining:
            raise ProtocolError("server is shutting down", status=503)
        self._pending.append(run)
        self._wake.set()
        return await run.future

    async def _consume(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._pending:
                head = self._pending.pop(0)
                batch = [head]
                if head.batch_key is not None:
                    mates = [r for r in self._pending
                             if r.batch_key == head.batch_key]
                    for mate in mates:
                        self._pending.remove(mate)
                    batch.extend(mates)
                batch = [r for r in batch if not r.future.done()]
                if not batch:
                    continue
                self._busy = True
                try:
                    payloads = await asyncio.to_thread(self._runner, batch)
                    for run, payload in zip(batch, payloads):
                        if not run.future.done():
                            run.future.set_result(payload)
                except Exception as exc:
                    for run in batch:
                        if not run.future.done():
                            run.future.set_exception(exc)
                finally:
                    self._busy = False

    async def drain(self, timeout: float = 30.0) -> bool:
        """Refuse new work, fail queued runs, wait out the in-flight
        one.  Returns ``True`` when the lane went quiet in time."""
        self.draining = True
        for run in self._pending:
            if not run.future.done():
                run.future.set_exception(
                    ProtocolError("server is shutting down", status=503))
        self._pending.clear()
        deadline = time.monotonic() + timeout
        while self._busy and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        quiet = not self._busy
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        return quiet


class ServiceEngine:
    """Caches + coalescer + lane, bound to the portfolio runtime."""

    def __init__(self, jobs: int = 1, result_entries: int = 256,
                 netlist_entries: int = 32, hierarchy_entries: int = 8,
                 spool_dir: Optional[str] = None,
                 kernels: Optional[str] = None):
        self.jobs = jobs
        # Kernel mode is process-global and fork-inherited, so it must
        # be pinned before the first executor pool spawns workers; the
        # lane re-asserts it per batch in case anything else flipped it.
        self.kernels = kernels
        if kernels is not None:
            from ..kernels import set_kernel_mode
            set_kernel_mode(kernels)
        self.results = ResultCache(result_entries)
        self.netlists = NetlistCache(netlist_entries)
        self.hierarchies = HierarchyCache(hierarchy_entries)
        self.coalescer = Coalescer()
        self.lane = ExecutionLane(self._run_batch_sync)
        self.started_at = time.time()
        self._spool_dir = spool_dir
        self._traces: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self._counters = {name: 0 for name in _COUNTERS}
        self._counter_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the lane's consumer (call from the running loop)."""
        self.lane.start()

    async def drain(self, timeout: float = 30.0) -> bool:
        return await self.lane.drain(timeout)

    # -- serving -------------------------------------------------------

    async def serve(self, request: PartitionRequest) -> dict:
        """Serve one partition request through cache → coalescer →
        lane.  Returns a fresh payload dict the caller may annotate."""
        self._count("requests")
        key = request.request_key()
        if request.trace:
            # Traced requests always execute (the trace file is the
            # point) and never join a batch or populate the cache.
            out = dict(await self._submit(request, key, traced=True))
        else:
            cached = self.results.get(key)
            if cached is not None:
                self._count("cache_hits")
                out = dict(cached)
                out["cached"] = True
                return self._trim(out, request)
            self._count("cache_misses")
            piggyback = self.coalescer.inflight(key)
            if piggyback:
                self._count("coalesced")

            async def factory() -> dict:
                payload = await self._submit(request, key)
                self.results.put(key, payload)
                return payload

            out = dict(await self.coalescer.run(key, factory))
            out["cached"] = False
            out["coalesced"] = piggyback
        return self._trim(out, request)

    @staticmethod
    def _trim(out: dict, request: PartitionRequest) -> dict:
        # Payloads carry the best assignment internally (so a cache
        # entry can satisfy either answer shape); ``include_assignment``
        # is honored per request, not per cache entry — it is
        # deliberately absent from the request key.
        if not request.include_assignment:
            out.pop("assignment", None)
        return out

    async def _submit(self, request: PartitionRequest, key: str,
                      traced: bool = False) -> dict:
        run_id = f"r{next(self._ids):06d}-{secrets.token_hex(3)}"
        run = PendingRun(
            id=run_id, request=request, key=key,
            future=asyncio.get_running_loop().create_future(),
            batch_key=None if traced else request.batch_key(),
            trace_path=self._trace_path(run_id) if traced else None)
        return await self.lane.submit(run)

    # -- execution (lane worker thread) --------------------------------

    def _run_batch_sync(self, batch: List[PendingRun]) -> List[dict]:
        """Execute a batch of same-(netlist, config) requests.

        Runs on the lane's worker thread — the only place the engine
        touches the portfolio runtime.
        """
        if self.kernels is not None:
            from ..kernels import set_kernel_mode
            set_kernel_mode(self.kernels)
        request0 = batch[0].request
        hg = self.netlists.resolve(canonical_json(request0.netlist.key),
                                   request0.netlist.load)
        algorithm = self._algorithm_for(request0, hg)
        try:
            if len(batch) == 1:
                payloads = [self._run_single(batch[0], hg, algorithm)]
            else:
                payloads = self._run_merged(batch, hg, algorithm)
        except ProtocolError:
            self._count("errors")
            raise
        return payloads

    def _algorithm_for(self, request: PartitionRequest, hg):
        if request.mode == "ml-reuse":
            config = ml_config_for(request.algorithm, request.ratio,
                                   request.threshold, request.tolerance)
            hierarchy = self.hierarchies.get(hg, config,
                                             request.hierarchy_seed)
            return ml_reuse_algorithm(config, hierarchy)
        return build_algorithm(request.algorithm, k=request.k,
                               ratio=request.ratio,
                               threshold=request.threshold,
                               tolerance=request.tolerance,
                               descents=request.descents,
                               vcycles=request.vcycles)

    def _run_single(self, run: PendingRun, hg, algorithm) -> dict:
        request = run.request
        portfolio = Portfolio(algorithm=algorithm, hg=hg,
                              runs=request.runs, seed=request.seed,
                              keep_results=True, trace=run.trace_path)
        result = execute(portfolio, jobs=self.jobs)
        self._count("executed_portfolios")
        self._count("executed_starts", result.runs)
        if run.trace_path is not None:
            self._traces[run.id] = run.trace_path
        return self._payload(run, result, hg)

    def _run_merged(self, batch: List[PendingRun], hg,
                    algorithm) -> List[dict]:
        """One executor invocation covering every request's seed
        stream; records split back per request afterwards."""
        job_list: List[Job] = []
        offsets: List[int] = []
        for run in batch:
            offsets.append(len(job_list))
            seeds = child_seeds(run.request.seed, run.request.runs)
            base = len(job_list)
            job_list.extend(Job(index=base + i, seed=s)
                            for i, s in enumerate(seeds))
        merged = BatchPortfolio(algorithm=algorithm, hg=hg,
                                runs=len(job_list),
                                seed=batch[0].request.seed,
                                keep_results=True, job_list=job_list)
        executor = get_executor(self.jobs)
        result = executor.run(merged)
        self._count("executed_portfolios")
        self._count("executed_starts", len(job_list))
        self._count("batched_requests", len(batch))
        _log.info("batched %d requests (%d starts) on %s",
                  len(batch), len(job_list), hg.name)
        payloads = []
        for run, offset in zip(batch, offsets):
            n = run.request.runs
            records = [replace(result.records[offset + i], index=i)
                       for i in range(n)]
            sub = PortfolioResult(
                algorithm=merged.name, circuit=hg.name, records=records,
                wall_seconds=sum(r.wall_seconds for r in records),
                jobs=executor.jobs)
            # Each request is ledger-recorded as its own portfolio —
            # same entry a standalone CLI run would have written.
            portfolio = Portfolio(algorithm=algorithm, hg=hg, runs=n,
                                  seed=run.request.seed, keep_results=True)
            record_result(sub, portfolio, jobs=executor.jobs)
            payloads.append(self._payload(run, sub, hg))
        return payloads

    def _payload(self, run: PendingRun, result: PortfolioResult,
                 hg) -> dict:
        request = run.request
        if not result.ok_records:
            first = result.records[0] if result.records else None
            raise ProtocolError(
                f"all {result.runs} runs failed"
                + (f": {first.error}" if first is not None else ""),
                status=500)
        statuses: Dict[str, int] = {}
        for record in result.records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        cuts = result.cuts
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "id": run.id,
            "algorithm": result.algorithm,
            "circuit": result.circuit,
            "k": request.k,
            "runs": request.runs,
            "seed": request.seed,
            "mode": request.mode,
            "cuts": list(cuts),
            "min_cut": min(cuts),
            "median_cut": median(cuts),
            "statuses": statuses,
            "fingerprint": result.fingerprint_digest(),
            "request_key": run.key,
            "wall_seconds": round(result.wall_seconds, 6),
            "cpu_seconds": round(result.cpu_seconds, 6),
            "cached": False,
            "coalesced": False,
        }
        best = result.best
        if best.result is not None:
            partition = best.result.partition
            areas = partition.part_areas(hg)
            constraint = BalanceConstraint.from_tolerance(
                hg, request.tolerance, k=request.k)
            payload["part_areas"] = [round(a, 6) for a in areas]
            payload["balanced"] = constraint.is_feasible(areas)
            payload["assignment"] = list(partition.assignment)
        if run.trace_path is not None:
            payload["trace"] = f"/trace/{run.id}"
        return payload

    # -- traces --------------------------------------------------------

    def _trace_path(self, run_id: str) -> str:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        else:
            os.makedirs(self._spool_dir, exist_ok=True)
        return os.path.join(self._spool_dir, f"{run_id}.trace.jsonl")

    def trace_file(self, run_id: str) -> Path:
        path = self._traces.get(run_id)
        if path is None or not os.path.exists(path):
            raise ProtocolError(f"no trace for run {run_id!r}", status=404)
        return Path(path)

    # -- accounting ----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += amount

    def counters(self) -> Dict[str, int]:
        with self._counter_lock:
            return dict(self._counters)

    def stats(self) -> Dict[str, object]:
        """The ``/healthz`` diagnostics block."""
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": self.jobs,
            "lane": {"queued": self.lane.queued, "busy": self.lane.busy,
                     "draining": self.lane.draining},
            "counters": self.counters(),
            "result_cache": self.results.stats(),
            "netlist_cache": self.netlists.stats(),
            "hierarchy_cache": {"entries": len(self.hierarchies),
                                "hits": self.hierarchies.hits,
                                "misses": self.hierarchies.misses},
            "coalescer": self.coalescer.stats(),
        }

    def export_metrics(self, registry) -> None:
        """Sync engine counters/cache stats into ``registry`` (called
        at scrape time, so the text exposition always reflects now)."""
        for name, value in self.counters().items():
            registry.counter(f"repro_service_{name}_total",
                             f"Service {name.replace('_', ' ')}."
                             ).value = float(value)
        for label, cache in (("result", self.results),
                             ("netlist", self.netlists)):
            stats = cache.stats()
            for stat in ("entries", "hits", "misses", "evictions"):
                registry.gauge("repro_service_cache_" + stat,
                               "Service cache " + stat + ", by cache.",
                               cache=label).set(float(stats[stat]))
        registry.gauge("repro_service_lane_queued",
                       "Requests waiting on the execution lane."
                       ).set(float(self.lane.queued))
