"""The service engine: caches, coalescing, batching, and execution.

This is where the daemon composes the existing subsystems into one
serving pipeline::

    request ──► result cache ──► coalescer ──► execution lane ──► runtime
                  (hit: copy)     (dup: await    (batch + thread)   (ledger)
                                   leader)

* The **result cache** (:class:`~repro.service.cache.ResultCache`)
  returns finished payloads for repeated request keys without touching
  the runtime at all.
* The **coalescer** collapses concurrent identical requests into one
  execution.
* The **execution lane** is a single consumer draining a pending list
  through one worker thread.  One portfolio executes at a time — the
  runtime's process-pool plumbing and the obs singletons are
  process-wide, so the lane is what makes them safe under a concurrent
  server — and while the lane is busy, the event loop keeps answering
  cache hits, health checks, and metric scrapes.
* **Batching**: when the consumer pops a request, it also takes every
  queued request with the same (netlist, config) — different seeds
  welcome — and merges their child-seed streams into one
  :class:`~repro.runtime.BatchPortfolio`.  Records are split back per
  request afterwards, re-indexed from zero, so each request's result —
  and its ledger entry — is byte-identical to a standalone CLI run of
  the same (netlist, config, seed).
* Same-netlist requests share one parsed :class:`Hypergraph` via the
  netlist cache, which is also what lets ``ml-reuse`` requests share a
  single :class:`~repro.runtime.HierarchyCache` entry (the hierarchy
  cache keys on ``id(hg)``): many seeds, one coarsening.

Everything the engine executes lands in the run ledger exactly like a
CLI run — the service is a front-end to the runtime, not a fork of it.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import secrets
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from statistics import median
from typing import Callable, Dict, List, Optional

from ..obs import get_logger, metrics, record_result, trace_scope, tracer
from ..obs.metrics import SERVICE_BUCKETS
from ..partition import BalanceConstraint
from ..rng import child_seeds
from ..runtime import (BatchPortfolio, Job, Portfolio, PortfolioResult,
                       HierarchyCache, STATUS_TIMEOUT, execute,
                       get_executor, ml_reuse_algorithm)
from ..solvers import build_algorithm, ml_config_for
from .breaker import CircuitBreaker, PLAN_DEGRADED
from .cache import NetlistCache, ResultCache
from .coalescer import Coalescer
from .protocol import (PartitionRequest, ProtocolError, SCHEMA_VERSION,
                       canonical_json)

_log = get_logger("service.engine")

__all__ = ["ServiceEngine", "PendingRun", "ExecutionLane",
           "DEADLINE_GRACE_SECONDS"]

#: Counter names the engine tracks (and exports as
#: ``repro_service_<name>_total``).
_COUNTERS = ("requests", "cache_hits", "cache_misses", "coalesced",
             "executed_portfolios", "executed_starts", "batched_requests",
             "errors", "deadline_expired", "degraded_served")

#: The documented grace window on top of a request's deadline: the
#: event loop abandons waiting on a response ``deadline + grace`` after
#: admission and answers 504, regardless of what the execution lane is
#: doing.  The window absorbs the collector's poll granularity, pool
#: teardown after a deadline kill, and payload/ledger bookkeeping —
#: no request ever observes a response later than this.
DEADLINE_GRACE_SECONDS = 0.75

#: Floor handed to the runtime as a portfolio deadline, so a request
#: admitted with microseconds to spare still gets a well-formed
#: (instantly-expiring) portfolio instead of a ConfigError.
_MIN_PORTFOLIO_DEADLINE = 0.05


@dataclass
class PendingRun:
    """One request waiting on (or executing in) the lane."""

    id: str
    request: PartitionRequest
    key: str
    future: asyncio.Future
    #: Requests sharing a batch key may merge; ``None`` opts out
    #: (traced requests need their own portfolio).
    batch_key: Optional[str] = None
    trace_path: Optional[str] = None
    #: Spool path of the request's decision recording (``GET
    #: /record/<id>``); like ``trace_path``, set only for runs that
    #: bypass cache/batching so the file covers a real execution.
    record_path: Optional[str] = None
    queued_at: float = field(default_factory=time.monotonic)
    #: Absolute monotonic instant past which this request's answer is
    #: worthless; ``None`` means no deadline.
    deadline_at: Optional[float] = None
    #: Correlation IDs from the originating HTTP request (client-
    #: supplied or server-generated); ``None`` when the engine is used
    #: without the HTTP front-end, in which case the run id stands in.
    trace_id: Optional[str] = None
    request_id: Optional[str] = None

    @property
    def effective_trace_id(self) -> str:
        """The ID stamped into spans and the ledger for this run."""
        return self.trace_id if self.trace_id is not None else self.id

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at


class ExecutionLane:
    """Single-consumer execution queue with same-group batching,
    bounded admission, and queue-expiry sweeping.

    ``max_queued`` is the load-shedding watermark: a submit that finds
    the queue full is refused with HTTP 429 and a ``Retry-After`` hint
    derived from an EWMA of recent batch execution times, instead of
    building an unbounded backlog whose tail can never meet any
    deadline.  Queued runs whose deadline lapses before the consumer
    reaches them are failed with 504 without ever touching the runtime.

    The runner returns one entry per batch member, each either a
    payload dict or an :class:`Exception` — so one member's failure
    (e.g. every start timed out for *its* deadline) never poisons its
    batch mates.
    """

    def __init__(self, runner: Callable[[List[PendingRun]], List[object]],
                 max_queued: Optional[int] = None):
        if max_queued is not None and max_queued < 1:
            raise ProtocolError(
                f"max_queued must be >= 1, got {max_queued}", status=500)
        self._runner = runner
        self.max_queued = max_queued
        self._pending: List[PendingRun] = []
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._busy = False
        #: The batch currently on the worker thread (empty when idle);
        #: read by ``in_flight`` for the ops surfaces.  Mutated only on
        #: the event loop, so ``/status`` handlers see it consistently.
        self.executing: List[PendingRun] = []
        self.draining = False
        #: Load-shedding / expiry counters, read by the engine's stats.
        self.shed = 0
        self.expired = 0
        #: EWMA of batch execution wall time, seeding ``Retry-After``.
        self.exec_ewma: Optional[float] = None

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._consume(), name="repro-service-lane")

    @property
    def queued(self) -> int:
        return len(self._pending)

    @property
    def busy(self) -> bool:
        return self._busy

    def retry_after(self) -> float:
        """Seconds a shed client should wait: roughly one queue's worth
        of work at the recent per-batch execution rate."""
        per_batch = self.exec_ewma if self.exec_ewma is not None else 1.0
        backlog = len(self._pending) + (1 if self._busy else 0)
        return max(1.0, round(per_batch * max(1, backlog), 1))

    def _sweep_expired(self) -> None:
        now = time.monotonic()
        lapsed = [r for r in self._pending if r.expired(now)]
        for run in lapsed:
            self._pending.remove(run)
            self.expired += 1
            if not run.future.done():
                run.future.set_exception(ProtocolError(
                    "deadline expired while queued", status=504))

    async def submit(self, run: PendingRun) -> dict:
        if self.draining:
            raise ProtocolError("server is shutting down", status=503)
        self._sweep_expired()
        if self.max_queued is not None and \
                len(self._pending) >= self.max_queued:
            self.shed += 1
            raise ProtocolError(
                f"execution queue is full ({len(self._pending)} queued, "
                f"limit {self.max_queued}); retry later",
                status=429, retry_after=self.retry_after())
        self._pending.append(run)
        self._wake.set()
        return await run.future

    async def _consume(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._pending:
                self._sweep_expired()
                if not self._pending:
                    break
                head = self._pending.pop(0)
                batch = [head]
                if head.batch_key is not None:
                    mates = [r for r in self._pending
                             if r.batch_key == head.batch_key]
                    for mate in mates:
                        self._pending.remove(mate)
                    batch.extend(mates)
                batch = [r for r in batch if not r.future.done()]
                if not batch:
                    continue
                self._busy = True
                self.executing = list(batch)
                begun = time.monotonic()
                try:
                    payloads = await asyncio.to_thread(self._runner, batch)
                    for run, payload in zip(batch, payloads):
                        if run.future.done():
                            continue
                        if isinstance(payload, Exception):
                            run.future.set_exception(payload)
                        else:
                            run.future.set_result(payload)
                except Exception as exc:
                    for run in batch:
                        if not run.future.done():
                            run.future.set_exception(exc)
                finally:
                    self._busy = False
                    self.executing = []
                    elapsed = time.monotonic() - begun
                    self.exec_ewma = (
                        elapsed if self.exec_ewma is None
                        else 0.3 * elapsed + 0.7 * self.exec_ewma)

    def in_flight(self) -> List[Dict[str, object]]:
        """Every request on the lane right now — executing batch first,
        then the queue in arrival order — with age and correlation IDs,
        the ``/status`` in-flight table."""
        now = time.monotonic()
        rows: List[Dict[str, object]] = []
        for state, runs in (("executing", self.executing),
                            ("queued", self._pending)):
            for run in runs:
                rows.append({
                    "id": run.id,
                    "trace_id": run.effective_trace_id,
                    "request_id": run.request_id,
                    "state": state,
                    "age_seconds": round(now - run.queued_at, 3),
                    "deadline_in_seconds": (
                        None if run.deadline_at is None
                        else round(run.deadline_at - now, 3)),
                })
        return rows

    async def drain(self, timeout: float = 30.0) -> bool:
        """Refuse new work, fail queued runs, wait out the in-flight
        one.  Returns ``True`` when the lane went quiet in time."""
        self.draining = True
        for run in self._pending:
            if not run.future.done():
                run.future.set_exception(
                    ProtocolError("server is shutting down", status=503))
        self._pending.clear()
        deadline = time.monotonic() + timeout
        while self._busy and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        quiet = not self._busy
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        return quiet


class ServiceEngine:
    """Caches + coalescer + lane, bound to the portfolio runtime."""

    def __init__(self, jobs: int = 1, result_entries: int = 256,
                 netlist_entries: int = 32, hierarchy_entries: int = 8,
                 spool_dir: Optional[str] = None,
                 kernels: Optional[str] = None,
                 default_deadline_ms: Optional[int] = 300_000,
                 max_queued: Optional[int] = 32,
                 breaker_failures: int = 3,
                 breaker_cooldown: float = 30.0,
                 retries: int = 0,
                 faults=None):
        self.jobs = jobs
        # Kernel mode is process-global and fork-inherited, so it must
        # be pinned before the first executor pool spawns workers; the
        # lane re-asserts it per batch in case anything else flipped it.
        self.kernels = kernels
        if kernels is not None:
            from ..kernels import set_kernel_mode
            set_kernel_mode(kernels)
        if default_deadline_ms is not None and default_deadline_ms < 1:
            raise ProtocolError(
                f"default_deadline_ms must be >= 1, "
                f"got {default_deadline_ms}", status=500)
        self.default_deadline_ms = default_deadline_ms
        self.retries = retries
        #: An armed :class:`~repro.faults.FaultPlan` applied to every
        #: executed portfolio — the service-level chaos hook.
        self.faults = faults
        self.results = ResultCache(result_entries)
        self.netlists = NetlistCache(netlist_entries)
        self.hierarchies = HierarchyCache(hierarchy_entries)
        self.coalescer = Coalescer()
        self.lane = ExecutionLane(self._run_batch_sync,
                                  max_queued=max_queued)
        self.breaker = CircuitBreaker(failure_threshold=breaker_failures,
                                      cooldown_seconds=breaker_cooldown)
        self.started_at = time.time()
        self._spool_dir = spool_dir
        self._traces: Dict[str, str] = {}
        self._records: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self._counters = {name: 0 for name in _COUNTERS}
        self._counter_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the lane's consumer (call from the running loop)."""
        self.lane.start()

    async def drain(self, timeout: float = 30.0) -> bool:
        return await self.lane.drain(timeout)

    # -- serving -------------------------------------------------------

    async def serve(self, request: PartitionRequest,
                    request_id: Optional[str] = None,
                    trace_id: Optional[str] = None) -> dict:
        """Serve one partition request through cache → coalescer →
        lane.  Returns a fresh payload dict the caller may annotate.

        ``request_id``/``trace_id`` are the HTTP front-end's
        correlation IDs; when this request executes (rather than
        hitting the cache or coalescing onto a leader), they ride the
        :class:`PendingRun` onto the portfolio, so every span of the
        execution and its ledger entry carry the trace ID.

        The request's deadline (``deadline_ms`` or the server default)
        is fixed here, at admission: it bounds queue wait + execution,
        and :meth:`_with_deadline` guarantees the caller gets *some*
        answer — a result, a degraded partial, or a 504 — within
        ``deadline + DEADLINE_GRACE_SECONDS``.
        """
        self._count("requests")
        deadline_ms = (request.deadline_ms if request.deadline_ms is not None
                       else self.default_deadline_ms)
        deadline_at = (None if deadline_ms is None
                       else time.monotonic() + deadline_ms / 1000.0)
        key = request.request_key()
        if request.trace or request.record:
            # Traced/recorded requests always execute (the telemetry
            # file is the point) and never join a batch or populate
            # the cache.
            out = dict(await self._with_deadline(
                self._submit(request, key, deadline_at, traced=True,
                             request_id=request_id, trace_id=trace_id),
                deadline_at))
        else:
            cached = self.results.get(key)
            if cached is not None:
                self._count("cache_hits")
                out = dict(cached)
                out["cached"] = True
                return self._finish(out, request, deadline_ms)
            self._count("cache_misses")

            async def factory() -> dict:
                payload = await self._submit(request, key, deadline_at,
                                             request_id=request_id,
                                             trace_id=trace_id)
                if not payload.get("degraded"):
                    # Degraded payloads (deadline partials, breaker
                    # fallbacks) are point-in-time answers — caching
                    # them would serve a worse cut than the full
                    # portfolio to every later client, and is also why
                    # ``deadline_ms`` can stay out of the request key.
                    self.results.put(key, payload)
                return payload

            async def coalesced() -> dict:
                # The inflight check must share a task body with
                # ``run`` (ensure_future defers both to the same loop
                # tick), or followers would race the leader's
                # registration and miscount.
                piggyback = self.coalescer.inflight(key)
                if piggyback:
                    self._count("coalesced")
                else:
                    # This body runs a loop tick after the
                    # admission-time cache check; a leader can finish
                    # in that gap — result cached, in-flight entry
                    # gone — so re-check before electing ourselves the
                    # new leader and re-executing the same key.
                    done = self.results.get(key)
                    if done is not None:
                        self._count("cache_hits")
                        late = dict(done)
                        late["cached"] = True
                        late["coalesced"] = False
                        return late
                payload = dict(await self.coalescer.run(key, factory))
                payload["coalesced"] = piggyback
                return payload

            out = dict(await self._with_deadline(coalesced(), deadline_at))
            out.setdefault("cached", False)
        return self._finish(out, request, deadline_ms)

    async def _with_deadline(self, awaitable, deadline_at) -> dict:
        """Await ``awaitable``, but never past ``deadline_at`` plus the
        grace window.  The underlying work is shielded — a coalesced
        leader keeps running for its followers and still populates the
        cache — only *this* waiter gives up and answers 504."""
        task = asyncio.ensure_future(awaitable)
        if deadline_at is None:
            return await task
        remaining = deadline_at - time.monotonic() + DEADLINE_GRACE_SECONDS
        try:
            return await asyncio.wait_for(asyncio.shield(task),
                                          max(remaining, 0.001))
        except asyncio.TimeoutError:
            self._count("deadline_expired")
            # Retrieve the orphaned task's eventual exception so it
            # never surfaces as an "exception was never retrieved" log.
            task.add_done_callback(
                lambda t: t.exception() if not t.cancelled() else None)
            raise ProtocolError(
                "deadline exhausted before a response was ready",
                status=504) from None

    def _finish(self, out: dict, request: PartitionRequest,
                deadline_ms: Optional[int]) -> dict:
        # Payloads carry the best assignment internally (so a cache
        # entry can satisfy either answer shape); ``include_assignment``
        # is honored per request, not per cache entry — it is
        # deliberately absent from the request key, as is the deadline:
        # any *complete* (non-degraded) result is deadline-independent.
        if not request.include_assignment:
            out.pop("assignment", None)
        if deadline_ms is not None:
            out["deadline_ms"] = deadline_ms
        return out

    async def _submit(self, request: PartitionRequest, key: str,
                      deadline_at: Optional[float] = None,
                      traced: bool = False,
                      request_id: Optional[str] = None,
                      trace_id: Optional[str] = None) -> dict:
        run_id = f"r{next(self._ids):06d}-{secrets.token_hex(3)}"
        run = PendingRun(
            id=run_id, request=request, key=key,
            future=asyncio.get_running_loop().create_future(),
            batch_key=None if traced else request.batch_key(),
            trace_path=(self._trace_path(run_id)
                        if traced and request.trace else None),
            record_path=(self._record_path(run_id)
                         if traced and request.record else None),
            deadline_at=deadline_at,
            request_id=request_id, trace_id=trace_id)
        return await self.lane.submit(run)

    # -- execution (lane worker thread) --------------------------------

    def _run_batch_sync(self, batch: List[PendingRun]) -> List[object]:
        """Execute a batch of same-(netlist, config) requests.

        Runs on the lane's worker thread — the only place the engine
        touches the portfolio runtime.  The telemetry wrapper around
        :meth:`_run_batch_inner`: records each member's queue wait and
        the batch's execution wall in the service histograms, and wraps
        the whole invocation in one ``service.execute`` span carrying
        the lead run's IDs — the execution tree every request-scoped
        root span references by ``exec_id``.  The trace scope is
        installed on this worker thread (synchronous code, so unlike
        the event loop it cannot interleave requests), which is how
        parent-side collector events pick up the IDs.
        """
        head = batch[0]
        mx = metrics()
        tr = tracer()
        if mx.enabled:
            now = time.monotonic()
            for run in batch:
                mx.histogram(
                    "repro_service_queue_wait_seconds",
                    "Time a request spent queued on the execution lane.",
                    buckets=SERVICE_BUCKETS,
                ).observe(max(0.0, now - run.queued_at))
        t_exec = tr.begin() if tr.enabled else 0
        begun = time.perf_counter()
        outcome = "error"
        try:
            with trace_scope(trace_id=head.effective_trace_id,
                             exec_id=head.id):
                payloads = self._run_batch_inner(batch)
            outcome = "ok"
            return payloads
        finally:
            elapsed = time.perf_counter() - begun
            if tr.enabled:
                tr.end("service.execute", t_exec, {
                    "exec_id": head.id,
                    "trace_id": head.effective_trace_id,
                    "batch": len(batch),
                    "requests": [run.id for run in batch],
                    "netlist": head.request.netlist.kind,
                    "outcome": outcome})
            if mx.enabled:
                mx.histogram(
                    "repro_service_execution_seconds",
                    "Wall time of one execution-lane batch.",
                    buckets=SERVICE_BUCKETS).observe(elapsed)

    def _run_batch_inner(self, batch: List[PendingRun]) -> List[object]:
        """The uninstrumented batch body: breaker plan, netlist
        resolution, single/degraded/merged execution.  Returns one
        payload *or exception* per batch member; a whole-batch failure
        is fanned out as one exception per member.  Consults the
        per-netlist circuit breaker first and records the execution's
        health after, so a netlist that keeps crashing or timing out
        stops occupying the lane with full portfolios.
        """
        if self.kernels is not None:
            from ..kernels import set_kernel_mode
            set_kernel_mode(self.kernels)
        request0 = batch[0].request
        netlist_key = canonical_json(request0.netlist.key)
        plan = self.breaker.plan(netlist_key)
        try:
            hg = self.netlists.resolve(netlist_key, request0.netlist.load)
            if plan == PLAN_DEGRADED:
                return [self._guarded(self._run_degraded, run, hg)
                        for run in batch]
            algorithm = self._algorithm_for(request0, hg)
            if len(batch) == 1:
                payloads = [self._guarded(self._run_single, batch[0], hg,
                                          algorithm)]
            else:
                payloads = self._run_merged(batch, hg, algorithm)
        except Exception as exc:
            self._count("errors")
            self.breaker.record(netlist_key, healthy=False, error=str(exc))
            if isinstance(exc, ProtocolError):
                raise
            raise ProtocolError(f"execution failed: {exc}",
                                status=500) from exc
        self.breaker.record(netlist_key,
                            healthy=self._batch_healthy(payloads),
                            error=self._batch_error(payloads))
        return payloads

    def _guarded(self, runner, *args) -> object:
        """Run one request's executor call, converting its failure into
        a per-member exception instead of poisoning batch mates."""
        try:
            return runner(*args)
        except ProtocolError as exc:
            self._count("errors")
            return exc
        except Exception as exc:
            self._count("errors")
            return ProtocolError(f"execution failed: {exc}", status=500)

    @staticmethod
    def _batch_healthy(payloads: List[object]) -> bool:
        """An execution is healthy only when every member produced a
        payload whose starts all finished ``ok`` — crashes *and*
        timeouts count against the breaker."""
        for payload in payloads:
            if isinstance(payload, Exception):
                return False
            statuses = payload.get("statuses", {})
            if any(status != "ok" for status in statuses):
                return False
        return True

    @staticmethod
    def _batch_error(payloads: List[object]) -> str:
        for payload in payloads:
            if isinstance(payload, Exception):
                return str(payload)
            bad = [s for s in payload.get("statuses", {}) if s != "ok"]
            if bad:
                return f"starts finished {','.join(sorted(bad))}"
        return ""

    def _deadline_seconds(self, batch: List[PendingRun]) -> Optional[float]:
        """Remaining wall budget for this executor invocation: the
        tightest member deadline governs the merged portfolio (its
        records are split back per request, so no member may be served
        past its own deadline by a mate's slack)."""
        instants = [r.deadline_at for r in batch if r.deadline_at is not None]
        if not instants:
            return None
        remaining = min(instants) - time.monotonic()
        return max(remaining, _MIN_PORTFOLIO_DEADLINE)

    def _algorithm_for(self, request: PartitionRequest, hg):
        if request.mode == "ml-reuse":
            config = ml_config_for(request.algorithm, request.ratio,
                                   request.threshold, request.tolerance)
            hierarchy = self.hierarchies.get(hg, config,
                                             request.hierarchy_seed)
            return ml_reuse_algorithm(config, hierarchy)
        return build_algorithm(request.algorithm, k=request.k,
                               ratio=request.ratio,
                               threshold=request.threshold,
                               tolerance=request.tolerance,
                               descents=request.descents,
                               vcycles=request.vcycles)

    def _run_single(self, run: PendingRun, hg, algorithm) -> dict:
        request = run.request
        portfolio = Portfolio(algorithm=algorithm, hg=hg,
                              runs=request.runs, seed=request.seed,
                              keep_results=True, trace=run.trace_path,
                              record=run.record_path,
                              retries=self.retries, faults=self.faults,
                              deadline_seconds=self._deadline_seconds([run]),
                              trace_id=run.effective_trace_id)
        result = execute(portfolio, jobs=self.jobs)
        self._count("executed_portfolios")
        self._count("executed_starts", result.runs)
        if run.trace_path is not None:
            self._traces[run.id] = run.trace_path
        if run.record_path is not None:
            self._records[run.id] = run.record_path
        return self._payload(run, result, hg)

    def _run_degraded(self, run: PendingRun, hg) -> dict:
        """Breaker-open fallback: one start of the cheapest kernel in
        the *same cut class* instead of the request's full portfolio.

        Kernel mode is process-global and the event loop computes
        request keys (which embed the cut class) concurrently with this
        thread, so the fallback must never cross cut classes:
        ``reference`` drops to ``csr`` (bit-identical results, cheaper
        inner loops), ``numpy`` stays ``numpy``.
        """
        from ..kernels import cut_class, kernel_mode, set_kernel_mode
        request = run.request
        previous = kernel_mode()
        cheap = "numpy" if cut_class(previous) == "numpy" else "csr"
        algorithm = self._algorithm_for(request, hg)
        portfolio = Portfolio(algorithm=algorithm, hg=hg,
                              runs=1, seed=request.seed,
                              keep_results=True, trace=run.trace_path,
                              record=run.record_path,
                              deadline_seconds=self._deadline_seconds([run]),
                              trace_id=run.effective_trace_id)
        set_kernel_mode(cheap)
        try:
            result = execute(portfolio, jobs=1)
        finally:
            set_kernel_mode(previous)
        self._count("executed_portfolios")
        self._count("executed_starts", result.runs)
        self._count("degraded_served")
        if run.trace_path is not None:
            self._traces[run.id] = run.trace_path
        if run.record_path is not None:
            self._records[run.id] = run.record_path
        payload = self._payload(run, result, hg)
        payload["degraded"] = True
        payload["degraded_reason"] = "breaker_open"
        payload["runs"] = 1
        _log.warning("breaker open for %s: served degraded single-start "
                     "answer to %s", hg.name, run.id)
        return payload

    def _run_merged(self, batch: List[PendingRun], hg,
                    algorithm) -> List[dict]:
        """One executor invocation covering every request's seed
        stream; records split back per request afterwards."""
        job_list: List[Job] = []
        offsets: List[int] = []
        for run in batch:
            offsets.append(len(job_list))
            seeds = child_seeds(run.request.seed, run.request.runs)
            base = len(job_list)
            job_list.extend(Job(index=base + i, seed=s)
                            for i, s in enumerate(seeds))
        merged = BatchPortfolio(algorithm=algorithm, hg=hg,
                                runs=len(job_list),
                                seed=batch[0].request.seed,
                                keep_results=True, job_list=job_list,
                                retries=self.retries, faults=self.faults,
                                deadline_seconds=self._deadline_seconds(batch),
                                trace_id=batch[0].effective_trace_id)
        tr = tracer()
        if tr.enabled:
            # One child marker per batched member, inside the
            # ``service.execute`` scope: ties each rider's IDs and seed
            # range to the shared execution tree.
            for run, offset in zip(batch, offsets):
                tr.instant("service.batch_member", {
                    "exec_id": batch[0].id, "member_id": run.id,
                    "member_trace_id": run.effective_trace_id,
                    "request_id": run.request_id,
                    "offset": offset, "runs": run.request.runs})
        executor = get_executor(self.jobs)
        result = executor.run(merged)
        self._count("executed_portfolios")
        self._count("executed_starts", len(job_list))
        self._count("batched_requests", len(batch))
        _log.info("batched %d requests (%d starts) on %s",
                  len(batch), len(job_list), hg.name)
        payloads: List[object] = []
        for run, offset in zip(batch, offsets):
            n = run.request.runs
            records = [replace(result.records[offset + i], index=i)
                       for i in range(n)]
            sub = PortfolioResult(
                algorithm=merged.name, circuit=hg.name, records=records,
                wall_seconds=sum(r.wall_seconds for r in records),
                jobs=executor.jobs)
            # Each request is ledger-recorded as its own portfolio —
            # same entry a standalone CLI run would have written.
            portfolio = Portfolio(algorithm=algorithm, hg=hg, runs=n,
                                  seed=run.request.seed, keep_results=True,
                                  trace_id=run.effective_trace_id)
            record_result(sub, portfolio, jobs=executor.jobs)
            payloads.append(self._guarded(self._payload, run, sub, hg))
        return payloads

    def _payload(self, run: PendingRun, result: PortfolioResult,
                 hg) -> dict:
        request = run.request
        if not result.ok_records:
            first = result.records[0] if result.records else None
            if result.records and all(r.status == STATUS_TIMEOUT
                                      for r in result.records):
                raise ProtocolError(
                    f"deadline exhausted before any of {result.runs} "
                    f"starts completed", status=504)
            raise ProtocolError(
                f"all {result.runs} runs failed"
                + (f": {first.error}" if first is not None else ""),
                status=500)
        statuses: Dict[str, int] = {}
        for record in result.records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        cuts = result.cuts
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "id": run.id,
            "algorithm": result.algorithm,
            "circuit": result.circuit,
            "k": request.k,
            "runs": request.runs,
            "seed": request.seed,
            "mode": request.mode,
            "cuts": list(cuts),
            "min_cut": min(cuts),
            "median_cut": median(cuts),
            "statuses": statuses,
            "fingerprint": result.fingerprint_digest(),
            "request_key": run.key,
            "wall_seconds": round(result.wall_seconds, 6),
            "cpu_seconds": round(result.cpu_seconds, 6),
            "cached": False,
            "coalesced": False,
            "degraded": False,
        }
        if statuses.get(STATUS_TIMEOUT):
            # Best-completed-starts partial: the portfolio deadline
            # killed some starts but others finished — degrade rather
            # than error, and never cache (see ``serve``'s factory).
            payload["degraded"] = True
            payload["degraded_reason"] = "deadline"
            self._count("degraded_served")
        best = result.best
        if best.result is not None:
            partition = best.result.partition
            areas = partition.part_areas(hg)
            constraint = BalanceConstraint.from_tolerance(
                hg, request.tolerance, k=request.k)
            payload["part_areas"] = [round(a, 6) for a in areas]
            payload["balanced"] = constraint.is_feasible(areas)
            payload["assignment"] = list(partition.assignment)
        if run.trace_path is not None:
            payload["trace"] = f"/trace/{run.id}"
        if run.record_path is not None:
            payload["record"] = f"/record/{run.id}"
        return payload

    # -- traces and recordings -----------------------------------------

    def _trace_path(self, run_id: str) -> str:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        else:
            os.makedirs(self._spool_dir, exist_ok=True)
        return os.path.join(self._spool_dir, f"{run_id}.trace.jsonl")

    def trace_file(self, run_id: str) -> Path:
        path = self._traces.get(run_id)
        if path is None or not os.path.exists(path):
            raise ProtocolError(f"no trace for run {run_id!r}", status=404)
        return Path(path)

    def _record_path(self, run_id: str) -> str:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        else:
            os.makedirs(self._spool_dir, exist_ok=True)
        return os.path.join(self._spool_dir, f"{run_id}.record.jsonl")

    def record_file(self, run_id: str) -> Path:
        path = self._records.get(run_id)
        if path is None or not os.path.exists(path):
            raise ProtocolError(f"no recording for run {run_id!r}",
                                status=404)
        return Path(path)

    # -- accounting ----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += amount

    def counters(self) -> Dict[str, int]:
        with self._counter_lock:
            return dict(self._counters)

    def stats(self) -> Dict[str, object]:
        """The ``/healthz`` diagnostics block."""
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": self.jobs,
            "default_deadline_ms": self.default_deadline_ms,
            "lane": {"queued": self.lane.queued, "busy": self.lane.busy,
                     "draining": self.lane.draining,
                     "max_queued": self.lane.max_queued,
                     "shed": self.lane.shed,
                     "expired": self.lane.expired,
                     "retry_after_seconds": self.lane.retry_after()},
            "breaker": self.breaker.stats(),
            "counters": self.counters(),
            "result_cache": self.results.stats(),
            "netlist_cache": self.netlists.stats(),
            "hierarchy_cache": {"entries": len(self.hierarchies),
                                "hits": self.hierarchies.hits,
                                "misses": self.hierarchies.misses},
            "coalescer": self.coalescer.stats(),
        }

    def status(self) -> Dict[str, object]:
        """The engine's part of the ``GET /status`` body: everything
        :meth:`stats` reports plus the live in-flight table.  The
        server layers request-level latency summaries and profiler
        state on top."""
        body = self.stats()
        body["in_flight"] = self.lane.in_flight()
        return body

    def export_metrics(self, registry) -> None:
        """Sync engine counters/cache stats into ``registry`` (called
        at scrape time, so the text exposition always reflects now)."""
        for name, value in self.counters().items():
            registry.counter(f"repro_service_{name}_total",
                             f"Service {name.replace('_', ' ')}."
                             ).value = float(value)
        for label, cache in (("result", self.results),
                             ("netlist", self.netlists)):
            stats = cache.stats()
            for stat in ("entries", "hits", "misses", "evictions"):
                registry.gauge("repro_service_cache_" + stat,
                               "Service cache " + stat + ", by cache.",
                               cache=label).set(float(stats[stat]))
        registry.gauge("repro_service_lane_queued",
                       "Requests waiting on the execution lane."
                       ).set(float(self.lane.queued))
        registry.counter("repro_service_lane_shed_total",
                         "Requests refused with 429 at the lane's "
                         "high-watermark.").value = float(self.lane.shed)
        registry.counter("repro_service_lane_expired_total",
                         "Queued requests whose deadline lapsed before "
                         "execution.").value = float(self.lane.expired)
        for stat, value in self.breaker.stats().items():
            registry.gauge(f"repro_service_breaker_{stat}",
                           f"Circuit breaker {stat.replace('_', ' ')}."
                           ).set(float(value))
