"""Async job handles: ``POST /sweep`` returns one, ``GET /jobs/<id>``
polls it, ``POST /jobs/<id>/cancel`` cancels it.

A :class:`ServiceJob` wraps an :class:`asyncio.Task`; the table keeps a
bounded history of finished jobs so a client polling a moment after
completion still finds its result.  Cancellation is cooperative at the
request granularity: sub-requests not yet executing are abandoned, the
one currently on the execution lane's worker thread runs to completion
(a fork pool cannot be safely interrupted mid-portfolio) and its
result is discarded.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .protocol import ProtocolError

__all__ = ["ServiceJob", "JobTable",
           "JOB_QUEUED", "JOB_RUNNING", "JOB_DONE", "JOB_FAILED",
           "JOB_CANCELLED"]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"


@dataclass
class ServiceJob:
    """One asynchronous unit of server work."""

    id: str
    kind: str
    state: str = JOB_QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    total: int = 1
    done: int = 0
    result: Optional[object] = None
    error: Optional[str] = None
    task: Optional[asyncio.Task] = None
    trace_path: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>`` body."""
        body: Dict[str, object] = {
            "id": self.id, "kind": self.kind, "state": self.state,
            "total": self.total, "done": self.done,
        }
        if self.started is not None and self.finished is not None:
            body["wall_seconds"] = round(self.finished - self.started, 6)
        if self.state == JOB_DONE:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        if self.trace_path is not None:
            body["trace"] = f"/trace/{self.id}"
        return body


class JobTable:
    """Live and recently-finished jobs, keyed by id."""

    def __init__(self, max_finished: int = 256):
        self.max_finished = max_finished
        self._jobs: Dict[str, ServiceJob] = {}
        self._ids = itertools.count(1)

    def create(self, kind: str, total: int = 1) -> ServiceJob:
        job = ServiceJob(id=f"j{next(self._ids):06d}-"
                            f"{secrets.token_hex(4)}",
                         kind=kind, total=total)
        self._jobs[job.id] = job
        self._prune()
        return job

    def get(self, job_id: str) -> ServiceJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", status=404)
        return job

    def cancel(self, job_id: str) -> ServiceJob:
        """Cancel a queued/running job; finished jobs are left alone."""
        job = self.get(job_id)
        if job.state in (JOB_QUEUED, JOB_RUNNING):
            if job.task is not None and not job.task.done():
                job.task.cancel()
            job.state = JOB_CANCELLED
            job.finished = time.time()
        return job

    def live(self) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.state in (JOB_QUEUED, JOB_RUNNING))

    def values(self):
        return list(self._jobs.values())

    def _prune(self) -> None:
        """Drop the oldest *finished* jobs beyond the history bound
        (live jobs are never evicted)."""
        finished = [j for j in self._jobs.values()
                    if j.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED)]
        excess = len(finished) - self.max_finished
        if excess > 0:
            finished.sort(key=lambda j: j.finished or j.created)
            for job in finished[:excess]:
                del self._jobs[job.id]
