"""Async job handles: ``POST /sweep`` returns one, ``GET /jobs/<id>``
polls it, ``POST /jobs/<id>/cancel`` cancels it.

A :class:`ServiceJob` wraps an :class:`asyncio.Task`; the table keeps a
bounded history of finished jobs so a client polling a moment after
completion still finds its result.  Cancellation is cooperative at the
request granularity: sub-requests not yet executing are abandoned, the
one currently on the execution lane's worker thread runs to completion
(a fork pool cannot be safely interrupted mid-portfolio) and its
result is discarded.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .protocol import ProtocolError

__all__ = ["ServiceJob", "JobTable",
           "JOB_QUEUED", "JOB_RUNNING", "JOB_DONE", "JOB_FAILED",
           "JOB_CANCELLED"]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"


@dataclass
class ServiceJob:
    """One asynchronous unit of server work."""

    id: str
    kind: str
    state: str = JOB_QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    total: int = 1
    done: int = 0
    result: Optional[object] = None
    error: Optional[str] = None
    task: Optional[asyncio.Task] = None
    trace_path: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>`` body."""
        body: Dict[str, object] = {
            "id": self.id, "kind": self.kind, "state": self.state,
            "total": self.total, "done": self.done,
        }
        if self.started is not None and self.finished is not None:
            body["wall_seconds"] = round(self.finished - self.started, 6)
        if self.state == JOB_DONE:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        if self.trace_path is not None:
            body["trace"] = f"/trace/{self.id}"
        return body


class JobTable:
    """Live and recently-finished jobs, keyed by id.

    Finished jobs are bounded two ways so a long-lived daemon's job
    table cannot leak: at most ``max_finished`` are retained (oldest
    evicted first) and none longer than ``ttl_seconds``.  ``max_live``
    is the admission-control bound: creating a job beyond it is load
    shedding (HTTP 429 with a ``Retry-After`` hint), not queueing.
    Evictions are counted for the metrics endpoint.
    """

    def __init__(self, max_finished: int = 256,
                 ttl_seconds: Optional[float] = 3600.0,
                 max_live: Optional[int] = None):
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ProtocolError(
                f"job ttl_seconds must be > 0, got {ttl_seconds}",
                status=500)
        self.max_finished = max_finished
        self.ttl_seconds = ttl_seconds
        self.max_live = max_live
        self.evictions = 0
        self._jobs: Dict[str, ServiceJob] = {}
        self._ids = itertools.count(1)

    def create(self, kind: str, total: int = 1) -> ServiceJob:
        self._prune()
        if self.max_live is not None and self.live() >= self.max_live:
            raise ProtocolError(
                f"job table is full ({self.live()} live jobs, "
                f"limit {self.max_live}); retry later",
                status=429, retry_after=5.0)
        job = ServiceJob(id=f"j{next(self._ids):06d}-"
                            f"{secrets.token_hex(4)}",
                         kind=kind, total=total)
        self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> ServiceJob:
        self._prune()
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", status=404)
        return job

    def cancel(self, job_id: str) -> ServiceJob:
        """Cancel a queued/running job; finished jobs are left alone."""
        job = self.get(job_id)
        if job.state in (JOB_QUEUED, JOB_RUNNING):
            if job.task is not None and not job.task.done():
                job.task.cancel()
            job.state = JOB_CANCELLED
            job.finished = time.time()
        return job

    def live(self) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.state in (JOB_QUEUED, JOB_RUNNING))

    def values(self):
        return list(self._jobs.values())

    def stats(self) -> Dict[str, int]:
        finished = sum(1 for j in self._jobs.values()
                       if j.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED))
        return {"live": self.live(), "finished": finished,
                "evictions": self.evictions}

    def _prune(self, now: Optional[float] = None) -> None:
        """Drop finished jobs past their TTL, then the oldest finished
        jobs beyond the history bound (live jobs are never evicted)."""
        now = time.time() if now is None else now
        finished = [j for j in self._jobs.values()
                    if j.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED)]
        if self.ttl_seconds is not None:
            expired = [j for j in finished
                       if now - (j.finished or j.created) > self.ttl_seconds]
            for job in expired:
                del self._jobs[job.id]
                self.evictions += 1
            finished = [j for j in finished if j.id in self._jobs]
        excess = len(finished) - self.max_finished
        if excess > 0:
            finished.sort(key=lambda j: j.finished or j.created)
            for job in finished[:excess]:
                del self._jobs[job.id]
                self.evictions += 1
