"""Per-netlist circuit breaker for the serving path.

A netlist whose portfolios keep dying — hung workers, repeated
crashes, deadline blowouts — must not be allowed to stall the single
execution lane for every other client.  The breaker tracks execution
health *per netlist key* and, once ``failure_threshold`` consecutive
executions have gone unhealthy, trips **open**: subsequent requests
for that netlist are served in *degraded mode* (a single cheap start
instead of the full portfolio, flagged ``degraded: true``) so clients
still get an answer while the lane stays clear.  After
``cooldown_seconds`` the breaker goes **half-open** and lets exactly
one full-configuration *probe* through; a healthy probe closes the
breaker, an unhealthy one re-opens it for another cooldown.

The breaker is consulted and updated only from the execution lane's
single consumer, so its transitions are naturally serialized; the lock
exists for the event loop reading :meth:`stats` concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import ConfigError

__all__ = ["CircuitBreaker", "PLAN_FULL", "PLAN_DEGRADED", "PLAN_PROBE",
           "STATE_CLOSED", "STATE_OPEN", "STATE_HALF_OPEN"]

#: Execution plans :meth:`CircuitBreaker.plan` hands the engine.
PLAN_FULL = "full"
PLAN_DEGRADED = "degraded"
PLAN_PROBE = "probe"

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass
class _KeyState:
    state: str = STATE_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    trips: int = 0
    last_error: str = ""


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker keyed by netlist identity."""

    failure_threshold: int = 3
    cooldown_seconds: float = 30.0
    #: Injectable monotonic clock (tests shrink time with it).
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ConfigError(f"failure_threshold must be >= 1, "
                              f"got {self.failure_threshold}")
        if self.cooldown_seconds <= 0:
            raise ConfigError(f"cooldown_seconds must be > 0, "
                              f"got {self.cooldown_seconds}")
        self._states: Dict[str, _KeyState] = {}
        self._lock = threading.Lock()
        self.trips = 0
        self.probes = 0
        self.recoveries = 0
        self.degraded_planned = 0

    # -- lane-side API -------------------------------------------------

    def plan(self, key: str) -> str:
        """Execution plan for the next request on ``key``:
        ``full`` (healthy), ``degraded`` (breaker open), or ``probe``
        (cooldown elapsed — run the full configuration once and let
        :meth:`record` decide)."""
        with self._lock:
            state = self._states.get(key)
            if state is None or state.state == STATE_CLOSED:
                return PLAN_FULL
            if state.state == STATE_OPEN:
                if self.clock() - state.opened_at < self.cooldown_seconds:
                    self.degraded_planned += 1
                    return PLAN_DEGRADED
                state.state = STATE_HALF_OPEN
            # half-open: the lane is a single consumer, so at most one
            # execution is in flight — every half-open plan is a probe.
            self.probes += 1
            return PLAN_PROBE

    def record(self, key: str, healthy: bool, error: str = "") -> None:
        """Account one full-configuration execution's outcome.

        Degraded-mode executions are *not* recorded — the breaker only
        re-closes on a successful probe, never on the cheap fallback
        looking fine.
        """
        with self._lock:
            state = self._states.setdefault(key, _KeyState())
            if state.state == STATE_HALF_OPEN:
                if healthy:
                    self._states.pop(key, None)
                    self.recoveries += 1
                else:
                    state.state = STATE_OPEN
                    state.opened_at = self.clock()
                    state.trips += 1
                    state.last_error = error
                return
            if healthy:
                state.consecutive_failures = 0
                if state.state == STATE_CLOSED and state.trips == 0:
                    self._states.pop(key, None)
                return
            state.consecutive_failures += 1
            state.last_error = error
            if state.state == STATE_CLOSED and \
                    state.consecutive_failures >= self.failure_threshold:
                state.state = STATE_OPEN
                state.opened_at = self.clock()
                state.trips += 1
                self.trips += 1

    # -- observability -------------------------------------------------

    def state(self, key: str) -> str:
        with self._lock:
            state = self._states.get(key)
            return STATE_CLOSED if state is None else state.state

    def stats(self) -> Dict[str, object]:
        with self._lock:
            open_keys = sum(1 for s in self._states.values()
                            if s.state != STATE_CLOSED)
            return {"tracked_keys": len(self._states),
                    "open_keys": open_keys,
                    "trips": self.trips,
                    "probes": self.probes,
                    "recoveries": self.recoveries,
                    "degraded_planned": self.degraded_planned}
