"""The ``repro serve`` daemon: a hand-rolled asyncio HTTP/1.1 server.

No web framework — the protocol surface is six JSON endpoints and a
text scrape, small enough that :func:`asyncio.start_server` plus ~100
lines of request parsing beats a dependency.  Connections are
keep-alive (clients hammering the cache reuse their socket); bodies
are bounded; every response carries ``Content-Length``.

Endpoints
---------
* ``POST /partition`` — synchronous partition request (cache →
  coalesce → execute); body per
  :class:`~repro.service.protocol.PartitionRequest`.
* ``POST /sweep`` — ``{"requests": [...]}``; answers immediately with
  a job id, sub-requests run concurrently through the same pipeline
  (which is what lets the lane batch them).
* ``GET /jobs/<id>`` — job state/result; ``POST /jobs/<id>/cancel``.
* ``GET /metrics`` — Prometheus text exposition of the service
  registry (runtime metrics included: the registry is installed as
  the process-wide obs singleton while the server runs).
* ``GET /trace/<id>`` — download the trace of a ``"trace": true`` run.
* ``GET /healthz`` — liveness + engine diagnostics; 503 once draining.
* ``GET /version`` — package version + git SHA.

Shutdown
--------
SIGTERM/SIGINT trigger a graceful drain: stop accepting, fail queued
work with 503, wait for the in-flight portfolio (its ledger line is
written by the worker thread before the loop exits), then close.  A
second signal aborts immediately.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import time
from typing import Dict, Optional, Tuple

from ..obs import MetricsRegistry, get_logger, set_metrics
from .engine import ServiceEngine
from .jobs import (JOB_CANCELLED, JOB_DONE, JOB_FAILED, JOB_RUNNING,
                   JobTable, ServiceJob)
from .protocol import PartitionRequest, ProtocolError

_log = get_logger("service.server")

__all__ = ["PartitionServer", "DEFAULT_PORT"]

DEFAULT_PORT = 8349

#: Request line + headers cap.
_MAX_HEADER_BYTES = 16 * 1024
#: Request body cap (inline netlists are the big case).
_MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                408: "Request Timeout", 413: "Payload Too Large",
                500: "Internal Server Error", 503: "Service Unavailable"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Dict[str, str],
                                            bytes]]:
    """Parse one request; ``None`` on clean EOF (client went away)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        body_len = int(length)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length {length!r}")
    if body_len < 0 or body_len > _MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {body_len} bytes exceeds limit")
    body = await reader.readexactly(body_len) if body_len else b""
    return method, target, headers, body


def _response(status: int, payload: bytes, content_type: str,
              keep_alive: bool) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n")
    return head.encode("latin-1") + payload


def _json_bytes(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


class PartitionServer:
    """The long-lived serving process around a :class:`ServiceEngine`."""

    def __init__(self, engine: Optional[ServiceEngine] = None,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 drain_seconds: float = 30.0):
        self.engine = engine if engine is not None else ServiceEngine()
        self.host = host
        self.port = port
        self.drain_seconds = drain_seconds
        self.jobs = JobTable()
        self.registry = MetricsRegistry()
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._previous_metrics = None
        self._shutdown_event: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start serving (non-blocking).

        With ``port=0`` the OS picks a free port; ``self.port`` is
        updated to the bound one.
        """
        self._previous_metrics = set_metrics(self.registry)
        self.engine.start()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=_MAX_HEADER_BYTES)
        bound = [s for s in self._server.sockets
                 if s.family in (socket.AF_INET, socket.AF_INET6)]
        if bound:
            self.port = bound[0].getsockname()[1]
        _log.info("serving on http://%s:%d", self.host, self.port)

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Block until a signal (or :meth:`request_shutdown`), then
        drain gracefully."""
        assert self._shutdown_event is not None, "call start() first"
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # e.g. non-main thread; rely on KeyboardInterrupt
        await self._shutdown_event.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish the in-flight
        portfolio (so its ledger line is complete), then close."""
        if self.draining:
            return
        self.draining = True
        _log.info("draining: refusing new requests")
        if self._server is not None:
            self._server.close()
        for job in self.jobs.values():
            if job.state in (JOB_RUNNING,) and job.task is not None:
                job.task.cancel()
        quiet = await self.engine.drain(self.drain_seconds)
        if not quiet:
            _log.warning("drain timed out after %gs with a portfolio "
                         "still executing", self.drain_seconds)
        if self._server is not None:
            await self._server.wait_closed()
        set_metrics(self._previous_metrics)
        _log.info("shutdown complete")

    async def run(self) -> None:
        """``start()`` + readiness line + ``serve_forever()`` — the
        ``repro serve`` entry point."""
        await self.start()
        # The readiness line is machine-read (tests, benchmarks, CI
        # smoke): keep the format stable.
        print(f"repro-serve listening on http://{self.host}:{self.port}",
              flush=True)
        await self.serve_forever()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    parsed = await _read_request(reader)
                except _HttpError as exc:
                    writer.write(_response(
                        exc.status, _json_bytes({"error": str(exc)}),
                        "application/json", keep_alive=False))
                    await writer.drain()
                    return
                if parsed is None:
                    return
                method, target, headers, body = parsed
                status, payload, content_type = await self._dispatch(
                    method, target, body)
                keep_alive = headers.get("connection", "").lower() != \
                    "close" and not self.draining
                writer.write(_response(status, payload, content_type,
                                       keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> Tuple[int, bytes, str]:
        path = target.split("?", 1)[0]
        started = time.perf_counter()
        endpoint = path.split("/", 2)[1] if "/" in path else ""
        try:
            status, payload, content_type = await self._route(
                method, path, body)
        except ProtocolError as exc:
            status = exc.status
            payload = _json_bytes({"error": str(exc)})
            content_type = "application/json"
        except Exception as exc:  # never kill the connection loop
            _log.exception("unhandled error serving %s %s", method, path)
            status = 500
            payload = _json_bytes({"error": f"internal error: {exc}"})
            content_type = "application/json"
        self.registry.counter(
            "repro_service_requests_total",
            "HTTP requests served, by endpoint and status code.",
            endpoint=endpoint or "root", code=str(status)).inc()
        self.registry.histogram(
            "repro_service_request_seconds",
            "Request handling latency, by endpoint.",
            endpoint=endpoint or "root"
        ).observe(time.perf_counter() - started)
        return status, payload, content_type

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, bytes, str]:
        if path == "/healthz":
            return self._healthz(method)
        if path == "/version":
            self._expect(method, "GET")
            from ..obs import git_sha
            from .. import __version__
            return 200, _json_bytes({
                "name": "repro", "version": __version__,
                "git_sha": git_sha(),
            }), "application/json"
        if path == "/metrics":
            self._expect(method, "GET")
            return 200, self._render_metrics(), \
                "text/plain; version=0.0.4; charset=utf-8"
        if path == "/partition":
            self._expect(method, "POST")
            return await self._partition(body)
        if path == "/sweep":
            self._expect(method, "POST")
            return await self._sweep(body)
        if path.startswith("/jobs/"):
            return await self._jobs_endpoint(method, path)
        if path.startswith("/trace/"):
            self._expect(method, "GET")
            run_id = path[len("/trace/"):]
            data = self.engine.trace_file(run_id).read_bytes()
            return 200, data, "application/jsonl"
        raise ProtocolError(f"no such endpoint {path!r}", status=404)

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(f"method {method} not allowed "
                                f"(use {expected})", status=405)

    def _healthz(self, method: str) -> Tuple[int, bytes, str]:
        self._expect(method, "GET")
        status = 503 if self.draining else 200
        return status, _json_bytes({
            "status": "draining" if self.draining else "ok",
            **self.engine.stats(),
            "jobs_live": self.jobs.live(),
        }), "application/json"

    def _render_metrics(self) -> bytes:
        self.engine.export_metrics(self.registry)
        # The lane's worker thread appends runtime metrics while we
        # render; a mid-iteration insert is rare but possible.
        for _ in range(3):
            try:
                return self.registry.render_prometheus().encode("utf-8")
            except RuntimeError:
                continue
        return b"# metrics temporarily unavailable\n"

    # -- request endpoints ---------------------------------------------

    def _parse_body(self, body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")

    async def _partition(self, body: bytes) -> Tuple[int, bytes, str]:
        if self.draining:
            raise ProtocolError("server is shutting down", status=503)
        request = PartitionRequest.from_json(self._parse_body(body))
        payload = await self.engine.serve(request)
        return 200, _json_bytes(payload), "application/json"

    async def _sweep(self, body: bytes) -> Tuple[int, bytes, str]:
        if self.draining:
            raise ProtocolError("server is shutting down", status=503)
        data = self._parse_body(body)
        if not isinstance(data, dict) or "requests" not in data:
            raise ProtocolError(
                "sweep body must be {\"requests\": [...]}")
        items = data["requests"]
        if not isinstance(items, list) or not items:
            raise ProtocolError("sweep 'requests' must be a non-empty list")
        if len(items) > 10_000:
            raise ProtocolError("sweep is limited to 10000 requests")
        requests = [PartitionRequest.from_json(item) for item in items]
        job = self.jobs.create("sweep", total=len(requests))
        job.task = asyncio.get_running_loop().create_task(
            self._run_sweep(job, requests))
        return 202, _json_bytes({"job_id": job.id, "state": job.state,
                                 "total": job.total}), "application/json"

    async def _run_sweep(self, job: ServiceJob,
                         requests: list) -> None:
        job.state = JOB_RUNNING
        job.started = time.time()

        async def one(request: PartitionRequest) -> dict:
            try:
                payload = await self.engine.serve(request)
            except ProtocolError as exc:
                payload = {"error": str(exc), "status": exc.status}
            job.done += 1
            return payload

        try:
            # Concurrent submission is deliberate: simultaneous
            # same-netlist sub-requests are what the lane batches.
            results = await asyncio.gather(*(one(r) for r in requests))
            job.result = {"results": list(results)}
            job.state = JOB_DONE
        except asyncio.CancelledError:
            job.state = JOB_CANCELLED
            job.error = "cancelled"
        except Exception as exc:
            job.state = JOB_FAILED
            job.error = str(exc)
            _log.exception("sweep job %s failed", job.id)
        finally:
            job.finished = time.time()

    async def _jobs_endpoint(self, method: str,
                             path: str) -> Tuple[int, bytes, str]:
        rest = path[len("/jobs/"):]
        if rest.endswith("/cancel"):
            self._expect(method, "POST")
            job = self.jobs.cancel(rest[:-len("/cancel")])
        else:
            self._expect(method, "GET")
            job = self.jobs.get(rest)
        return 200, _json_bytes(job.describe()), "application/json"
