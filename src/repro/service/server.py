"""The ``repro serve`` daemon: a hand-rolled asyncio HTTP/1.1 server.

No web framework — the protocol surface is six JSON endpoints and a
text scrape, small enough that :func:`asyncio.start_server` plus ~100
lines of request parsing beats a dependency.  Connections are
keep-alive (clients hammering the cache reuse their socket); bodies
are bounded; every response carries ``Content-Length``.

Endpoints
---------
* ``POST /partition`` — synchronous partition request (cache →
  coalesce → execute); body per
  :class:`~repro.service.protocol.PartitionRequest`.
* ``POST /sweep`` — ``{"requests": [...]}``; answers immediately with
  a job id, sub-requests run concurrently through the same pipeline
  (which is what lets the lane batch them).
* ``GET /jobs/<id>`` — job state/result; ``POST /jobs/<id>/cancel``.
* ``GET /metrics`` — Prometheus text exposition of the service
  registry (runtime metrics included: the registry is installed as
  the process-wide obs singleton while the server runs).
* ``GET /trace/<id>`` — download the trace of a ``"trace": true`` run.
* ``GET /healthz`` — liveness + engine diagnostics; 503 once draining.
* ``GET /version`` — package version + git SHA.

Overload protection
-------------------
The daemon prefers shedding to queueing: a full execution lane or job
table answers 429 with ``Retry-After``, a connection flood is refused
at the socket with 503, and slow or hostile clients (slowloris heads,
trickled bodies) are timed out with 408 without disturbing the accept
loop.  Per-request deadlines (``deadline_ms``, server default
``--deadline-ms``) bound queue wait + execution; see
:mod:`repro.service.engine` for the degradation ladder.

Shutdown
--------
SIGTERM/SIGINT trigger a graceful drain: stop accepting, fail queued
work with 503, wait for the in-flight portfolio (its ledger line is
written by the worker thread before the loop exits), then close.  A
second signal aborts immediately.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import os
import secrets
import signal
import socket
import time
from typing import Dict, Iterator, Optional, Tuple

from ..obs import (JsonlTraceWriter, MetricsRegistry, SamplingProfiler,
                   enable_memory_profiling, get_logger, read_jsonl_objects,
                   set_metrics, set_tracer, tracer)
from ..obs.metrics import SERVICE_BUCKETS
from .engine import ServiceEngine
from .jobs import (JOB_CANCELLED, JOB_DONE, JOB_FAILED, JOB_RUNNING,
                   JobTable, ServiceJob)
from .protocol import (HEADER_REQUEST_ID, HEADER_TRACE_ID,
                       PartitionRequest, ProtocolError)

_log = get_logger("service.server")

__all__ = ["PartitionServer", "DEFAULT_PORT", "read_access_log"]

DEFAULT_PORT = 8349

#: Request line + headers cap.
_MAX_HEADER_BYTES = 16 * 1024
#: Request body cap (inline netlists are the big case).
_MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                408: "Request Timeout", 413: "Payload Too Large",
                429: "Too Many Requests", 500: "Internal Server Error",
                503: "Service Unavailable", 504: "Gateway Timeout"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader,
                        idle_timeout: Optional[float] = None,
                        read_timeout: Optional[float] = None,
                        max_body_bytes: int = _MAX_BODY_BYTES,
                        ) -> Optional[Tuple[float, str, str,
                                            Dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF (client went away).

    The first tuple element is a ``perf_counter`` stamp taken when the
    request's first byte arrived — the closest server-side moment to
    the client starting its stopwatch, so the latency histogram built
    on it includes head/body read time and stays comparable to
    client-side send-to-receive measurements.

    Two timers defend the accept loop against slow clients:
    ``idle_timeout`` bounds the wait for the *first* byte of a request
    — an idle keep-alive socket is closed silently (``None``), never
    sent a spurious 408 that would desync a pipelining client —
    while ``read_timeout`` bounds the rest of the head and the body,
    so a slowloris trickling one byte a minute gets 408 and is
    disconnected instead of pinning a connection slot forever.
    """
    # asyncio.timeout over wait_for: no wrapper task per read, which
    # keeps the cache-hit hot path at its pre-hardening latency.
    try:
        async with asyncio.timeout(idle_timeout):
            first = await reader.readexactly(1)
    except TimeoutError:
        return None  # idle keep-alive connection: close silently
    except asyncio.IncompleteReadError:
        return None  # clean EOF before a new request began
    arrived = time.perf_counter()
    try:
        async with asyncio.timeout(read_timeout):
            head = first + await reader.readuntil(b"\r\n\r\n")
    except TimeoutError:
        raise _HttpError(408, "timed out reading request head")
    except asyncio.IncompleteReadError:
        raise _HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        body_len = int(length)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length {length!r}")
    if body_len < 0 or body_len > max_body_bytes:
        raise _HttpError(413, f"body of {body_len} bytes exceeds limit")
    try:
        async with asyncio.timeout(read_timeout):
            body = await reader.readexactly(body_len) if body_len else b""
    except TimeoutError:
        raise _HttpError(408, "timed out reading request body")
    return arrived, method, target, headers, body


def _response(status: int, payload: bytes, content_type: str,
              keep_alive: bool,
              extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n")
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    return (head + "\r\n").encode("latin-1") + payload


def _json_bytes(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


#: Characters allowed in client-supplied correlation IDs.  Anything
#: else is stripped before the ID is echoed into response headers (CRLF
#: injection), trace args, and the access log.
_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "-_.:/@")
_MAX_ID_LEN = 120


def _sanitize_id(value: Optional[str]) -> Optional[str]:
    """A header-supplied ID reduced to its safe characters, or ``None``
    when nothing safe remains."""
    if not value:
        return None
    cleaned = "".join(ch for ch in value if ch in _ID_SAFE)[:_MAX_ID_LEN]
    return cleaned or None


def _clean_rows(rows: list) -> list:
    """Histogram summary rows with NaN quantiles (empty histograms)
    mapped to ``None`` so the ``/status`` body is strict JSON."""
    return [{k: (None if isinstance(v, float) and math.isnan(v) else v)
             for k, v in row.items()} for row in rows]


def read_access_log(path) -> Iterator[Dict[str, object]]:
    """Yield access-log records, oldest first — the same tolerant
    reading discipline as the run ledger (corrupt or truncated lines,
    including a final line cut short by ``kill -9``, are skipped with
    a warning)."""
    yield from read_jsonl_objects(path, kind="access log")


class PartitionServer:
    """The long-lived serving process around a :class:`ServiceEngine`."""

    def __init__(self, engine: Optional[ServiceEngine] = None,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 drain_seconds: float = 30.0,
                 max_connections: Optional[int] = 128,
                 idle_timeout: Optional[float] = 300.0,
                 read_timeout: Optional[float] = 30.0,
                 max_body_bytes: int = _MAX_BODY_BYTES,
                 job_ttl: Optional[float] = 3600.0,
                 max_jobs: Optional[int] = 64,
                 trace_path: Optional[str] = None,
                 access_log_path: Optional[str] = None,
                 profile_dir: Optional[str] = None,
                 profile_interval: float = 0.01):
        self.engine = engine if engine is not None else ServiceEngine()
        self.host = host
        self.port = port
        self.drain_seconds = drain_seconds
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.read_timeout = read_timeout
        self.max_body_bytes = max_body_bytes
        self.jobs = JobTable(ttl_seconds=job_ttl, max_live=max_jobs)
        self.registry = MetricsRegistry()
        self.draining = False
        self.connections = 0
        self.connections_rejected = 0
        #: Daemon-lifetime trace file (``repro serve --trace``): unlike
        #: per-request ``"trace": true`` runs — which bypass cache,
        #: coalescing, and batching so their trace is honest — a
        #: server-wide tracer sees the *real* pipeline, so a coalesced
        #: burst shows one execution tree fanned out to N request spans.
        self.trace_path = trace_path
        self.access_log_path = access_log_path
        self.profile_dir = profile_dir
        self.profiler: Optional[SamplingProfiler] = (
            SamplingProfiler(interval_seconds=profile_interval)
            if profile_dir is not None else None)
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._previous_metrics = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._tracer: Optional[JsonlTraceWriter] = None
        self._previous_tracer = None
        self._access_file = None
        self._request_seq = itertools.count(1)
        #: endpoint -> bound ``Histogram.observe``, so the per-request
        #: hot path skips the registry's family/label-key lookups.
        self._latency_observers: Dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start serving (non-blocking).

        With ``port=0`` the OS picks a free port; ``self.port`` is
        updated to the bound one.
        """
        self._previous_metrics = set_metrics(self.registry)
        if self.trace_path is not None:
            self._tracer = JsonlTraceWriter(self.trace_path)
            self._previous_tracer = set_tracer(self._tracer)
        if self.access_log_path is not None:
            parent = os.path.dirname(str(self.access_log_path))
            if parent:
                os.makedirs(parent, exist_ok=True)
            # Line-buffered append: whole records hit disk per request,
            # so a killed daemon loses at most one (truncated) line —
            # exactly the case read_access_log tolerates.
            self._access_file = open(self.access_log_path, "a",
                                     encoding="utf-8", buffering=1)
        if self.profiler is not None:
            os.makedirs(self.profile_dir, exist_ok=True)
            enable_memory_profiling(True)
            self.profiler.start()
        self.engine.start()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=_MAX_HEADER_BYTES)
        bound = [s for s in self._server.sockets
                 if s.family in (socket.AF_INET, socket.AF_INET6)]
        if bound:
            self.port = bound[0].getsockname()[1]
        _log.info("serving on http://%s:%d", self.host, self.port)

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Block until a signal (or :meth:`request_shutdown`), then
        drain gracefully."""
        assert self._shutdown_event is not None, "call start() first"
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # e.g. non-main thread; rely on KeyboardInterrupt
        await self._shutdown_event.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish the in-flight
        portfolio (so its ledger line is complete), then close."""
        if self.draining:
            return
        self.draining = True
        _log.info("draining: refusing new requests")
        if self._server is not None:
            self._server.close()
        for job in self.jobs.values():
            if job.state in (JOB_RUNNING,) and job.task is not None:
                job.task.cancel()
        quiet = await self.engine.drain(self.drain_seconds)
        if not quiet:
            _log.warning("drain timed out after %gs with a portfolio "
                         "still executing", self.drain_seconds)
        if self._server is not None:
            await self._server.wait_closed()
        if self.profiler is not None:
            self.profiler.stop()
            enable_memory_profiling(False)
            try:
                final = os.path.join(self.profile_dir, "profile.collapsed")
                self.profiler.write(final)
                _log.info("wrote final profile to %s", final)
            except OSError as exc:
                _log.warning("could not write final profile: %s", exc)
        if self._tracer is not None:
            set_tracer(self._previous_tracer)
            self._tracer.close()
            self._tracer = None
        if self._access_file is not None:
            try:
                self._access_file.close()
            except OSError:
                pass
            self._access_file = None
        set_metrics(self._previous_metrics)
        _log.info("shutdown complete")

    async def run(self) -> None:
        """``start()`` + readiness line + ``serve_forever()`` — the
        ``repro serve`` entry point."""
        await self.start()
        # The readiness line is machine-read (tests, benchmarks, CI
        # smoke): keep the format stable.
        print(f"repro-serve listening on http://{self.host}:{self.port}",
              flush=True)
        await self.serve_forever()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self.max_connections is not None and \
                self.connections >= self.max_connections:
            # Admission control at the socket: refuse before parsing so
            # a connection flood cannot starve established clients.
            self.connections_rejected += 1
            try:
                writer.write(_response(
                    503, _json_bytes({"error": "connection limit "
                                      f"({self.max_connections}) reached"}),
                    "application/json", keep_alive=False,
                    extra_headers={"Retry-After": "1"}))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                writer.close()
            return
        self.connections += 1
        try:
            while True:
                try:
                    parsed = await _read_request(
                        reader, idle_timeout=self.idle_timeout,
                        read_timeout=self.read_timeout,
                        max_body_bytes=self.max_body_bytes)
                except _HttpError as exc:
                    writer.write(_response(
                        exc.status, _json_bytes({"error": str(exc)}),
                        "application/json", keep_alive=False))
                    await writer.drain()
                    return
                if parsed is None:
                    return
                # Admission: the clock starts at the request's first
                # byte, so the histogram below measures first-byte to
                # drained-response — the closest server-side analogue
                # of a client's send-to-receive stopwatch, which is
                # what lets bench_service.py cross-check the quantiles.
                admitted, method, target, headers, body = parsed
                request_id = _sanitize_id(
                    headers.get(HEADER_REQUEST_ID.lower())) \
                    or self._new_request_id()
                trace_id = _sanitize_id(
                    headers.get(HEADER_TRACE_ID.lower())) or request_id
                status, payload, content_type, extra, info = \
                    await self._dispatch(method, target, body,
                                         request_id, trace_id)
                extra = dict(extra or {})
                extra[HEADER_REQUEST_ID] = request_id
                extra[HEADER_TRACE_ID] = trace_id
                keep_alive = headers.get("connection", "").lower() != \
                    "close" and not self.draining
                writer.write(_response(status, payload, content_type,
                                       keep_alive, extra_headers=extra))
                await writer.drain()
                latency = time.perf_counter() - admitted
                path = target.split("?", 1)[0]
                endpoint = path.split("/", 2)[1] if "/" in path else ""
                observe = self._latency_observers.get(endpoint)
                if observe is None:
                    observe = self.registry.histogram(
                        "repro_service_latency_seconds",
                        "Admission-to-response latency (first request "
                        "byte to response drained), by endpoint.",
                        buckets=SERVICE_BUCKETS,
                        endpoint=endpoint or "root").observe
                    self._latency_observers[endpoint] = observe
                observe(latency)
                self._log_access(request_id, trace_id, method, path,
                                 status, latency, info)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _new_request_id(self) -> str:
        return f"q{next(self._request_seq):06d}-{secrets.token_hex(3)}"

    async def _dispatch(self, method: str, target: str, body: bytes,
                        request_id: str, trace_id: str
                        ) -> Tuple[int, bytes, str,
                                   Optional[Dict[str, str]],
                                   Dict[str, object]]:
        path = target.split("?", 1)[0]
        started = time.perf_counter()
        endpoint = path.split("/", 2)[1] if "/" in path else ""
        extra: Optional[Dict[str, str]] = None
        # Endpoints deposit correlation facts here (exec_id, cache
        # hit/miss, ...) for the root span and the access log.
        info: Dict[str, object] = {}
        tr = tracer()
        t0 = tr.begin() if tr.enabled else 0
        try:
            status, payload, content_type = await self._route(
                method, path, body, request_id, trace_id, info)
        except ProtocolError as exc:
            status = exc.status
            payload = _json_bytes({"error": str(exc)})
            content_type = "application/json"
            if exc.retry_after is not None:
                # Load-shedding responses tell the client when to come
                # back; see ServiceClient's 429 handling.
                extra = {"Retry-After":
                         str(max(1, int(round(exc.retry_after))))}
        except Exception as exc:  # never kill the connection loop
            _log.exception("unhandled error serving %s %s", method, path)
            status = 500
            payload = _json_bytes({"error": f"internal error: {exc}"})
            content_type = "application/json"
        if tr.enabled:
            # The per-request root span.  Args are explicit — never
            # trace_scope here: this coroutine interleaves with other
            # requests on the event loop, and a thread-local scope held
            # across an await would stamp their spans too.
            args: Dict[str, object] = {
                "request_id": request_id, "trace_id": trace_id,
                "method": method, "endpoint": endpoint or "root",
                "status": status}
            for key in ("exec_id", "cached", "coalesced", "degraded"):
                if key in info:
                    args[key] = info[key]
            tr.end("service.request", t0, args)
        self.registry.counter(
            "repro_service_requests_total",
            "HTTP requests served, by endpoint and status code.",
            endpoint=endpoint or "root", code=str(status)).inc()
        self.registry.histogram(
            "repro_service_request_seconds",
            "Request handling latency, by endpoint.",
            endpoint=endpoint or "root"
        ).observe(time.perf_counter() - started)
        return status, payload, content_type, extra, info

    async def _route(self, method: str, path: str, body: bytes,
                     request_id: str, trace_id: str,
                     info: Dict[str, object]) -> Tuple[int, bytes, str]:
        if path == "/healthz":
            return self._healthz(method)
        if path == "/version":
            self._expect(method, "GET")
            from ..obs import git_sha
            from .. import __version__
            return 200, _json_bytes({
                "name": "repro", "version": __version__,
                "git_sha": git_sha(),
            }), "application/json"
        if path == "/metrics":
            self._expect(method, "GET")
            return 200, self._render_metrics(), \
                "text/plain; version=0.0.4; charset=utf-8"
        if path == "/status":
            self._expect(method, "GET")
            return self._status()
        if path == "/profile":
            self._expect(method, "GET")
            return self._profile()
        if path == "/partition":
            self._expect(method, "POST")
            return await self._partition(body, request_id, trace_id, info)
        if path == "/sweep":
            self._expect(method, "POST")
            return await self._sweep(body, request_id, trace_id)
        if path.startswith("/jobs/"):
            return await self._jobs_endpoint(method, path)
        if path.startswith("/trace/"):
            self._expect(method, "GET")
            run_id = path[len("/trace/"):]
            data = self.engine.trace_file(run_id).read_bytes()
            return 200, data, "application/jsonl"
        if path.startswith("/record/"):
            self._expect(method, "GET")
            run_id = path[len("/record/"):]
            data = self.engine.record_file(run_id).read_bytes()
            return 200, data, "application/jsonl"
        raise ProtocolError(f"no such endpoint {path!r}", status=404)

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(f"method {method} not allowed "
                                f"(use {expected})", status=405)

    def _healthz(self, method: str) -> Tuple[int, bytes, str]:
        self._expect(method, "GET")
        status = 503 if self.draining else 200
        return status, _json_bytes({
            "status": "draining" if self.draining else "ok",
            **self.engine.stats(),
            "jobs_live": self.jobs.live(),
            "jobs": self.jobs.stats(),
            "connections": self.connections,
            "connections_rejected": self.connections_rejected,
        }), "application/json"

    def _status(self) -> Tuple[int, bytes, str]:
        """``GET /status`` — the ops-console snapshot: everything
        ``/healthz`` reports plus the live in-flight request table
        (with ages and trace IDs), latency histogram summaries, and
        profiler state.  JSON so ``repro top`` needs one poll."""
        latency = {
            name.split("repro_service_", 1)[1].rsplit("_seconds", 1)[0]:
                _clean_rows(self.registry.histogram_summaries(name))
            for name in ("repro_service_latency_seconds",
                         "repro_service_queue_wait_seconds",
                         "repro_service_execution_seconds")}
        profiler: Dict[str, object] = {"enabled": self.profiler is not None}
        if self.profiler is not None:
            profiler.update(self.profiler.stats())
        return 200, _json_bytes({
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            **self.engine.status(),
            "jobs_live": self.jobs.live(),
            "jobs": self.jobs.stats(),
            "connections": self.connections,
            "connections_rejected": self.connections_rejected,
            "latency": latency,
            "profiler": profiler,
            "tracing": self.trace_path is not None,
            "access_log": self.access_log_path is not None,
        }), "application/json"

    def _profile(self) -> Tuple[int, bytes, str]:
        """``GET /profile`` — the wall profile so far, collapsed-stack
        format (feed straight to a flamegraph renderer).  404 unless
        the daemon was started with ``--profile-dir``."""
        if self.profiler is None:
            raise ProtocolError(
                "profiling is disabled (start with --profile-dir)",
                status=404)
        return 200, self.profiler.collapsed().encode("utf-8"), \
            "text/plain; charset=utf-8"

    def _log_access(self, request_id: str, trace_id: str, method: str,
                    path: str, status: int, latency: float,
                    info: Dict[str, object]) -> None:
        """Append one JSONL access-log record; never raises (a full
        disk costs a warning, not the response)."""
        if self._access_file is None:
            return
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "request_id": request_id,
            "trace_id": trace_id,
            "method": method,
            "route": path,
            "status": status,
            "latency_ms": round(latency * 1000.0, 3),
        }
        for key in ("exec_id", "cached", "coalesced", "degraded"):
            if key in info:
                record[key] = info[key]
        try:
            self._access_file.write(
                json.dumps(record, sort_keys=True,
                           separators=(",", ":")) + "\n")
        except (OSError, ValueError) as exc:
            _log.warning("could not write access log record: %s", exc)

    def _render_metrics(self) -> bytes:
        self.engine.export_metrics(self.registry)
        job_stats = self.jobs.stats()
        self.registry.gauge("repro_service_jobs_live",
                            "Live (queued or running) jobs."
                            ).set(float(job_stats["live"]))
        self.registry.counter("repro_service_job_evictions_total",
                              "Finished jobs evicted by TTL or history "
                              "bound.").value = float(job_stats["evictions"])
        self.registry.gauge("repro_service_connections",
                            "Open client connections."
                            ).set(float(self.connections))
        self.registry.counter("repro_service_connections_rejected_total",
                              "Connections refused at the connection "
                              "limit.").value = \
            float(self.connections_rejected)
        # The lane's worker thread appends runtime metrics while we
        # render; a mid-iteration insert is rare but possible.
        for _ in range(3):
            try:
                return self.registry.render_prometheus().encode("utf-8")
            except RuntimeError:
                continue
        return b"# metrics temporarily unavailable\n"

    # -- request endpoints ---------------------------------------------

    def _parse_body(self, body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")

    async def _partition(self, body: bytes, request_id: str,
                         trace_id: str, info: Dict[str, object]
                         ) -> Tuple[int, bytes, str]:
        if self.draining:
            raise ProtocolError("server is shutting down", status=503,
                                retry_after=self.drain_seconds)
        request = PartitionRequest.from_json(self._parse_body(body))
        payload = await self.engine.serve(request, request_id=request_id,
                                          trace_id=trace_id)
        # Echo the correlation IDs in the body (the headers carry them
        # too) and surface the execution identity to the root span and
        # access log: payload["id"] is the PendingRun that produced
        # this answer — shared by every coalesced/cached request it
        # served, which is what ties N request spans to one tree.
        payload["request_id"] = request_id
        payload["trace_id"] = trace_id
        info["exec_id"] = payload.get("id")
        for key in ("cached", "coalesced", "degraded"):
            if key in payload:
                info[key] = payload[key]
        return 200, _json_bytes(payload), "application/json"

    async def _sweep(self, body: bytes, request_id: str,
                     trace_id: str) -> Tuple[int, bytes, str]:
        if self.draining:
            raise ProtocolError("server is shutting down", status=503,
                                retry_after=self.drain_seconds)
        data = self._parse_body(body)
        if not isinstance(data, dict) or "requests" not in data:
            raise ProtocolError(
                "sweep body must be {\"requests\": [...]}")
        items = data["requests"]
        if not isinstance(items, list) or not items:
            raise ProtocolError("sweep 'requests' must be a non-empty list")
        if len(items) > 10_000:
            raise ProtocolError("sweep is limited to 10000 requests")
        requests = [PartitionRequest.from_json(item) for item in items]
        job = self.jobs.create("sweep", total=len(requests))
        job.task = asyncio.get_running_loop().create_task(
            self._run_sweep(job, requests, request_id, trace_id))
        return 202, _json_bytes({"job_id": job.id, "state": job.state,
                                 "total": job.total,
                                 "request_id": request_id,
                                 "trace_id": trace_id}), "application/json"

    async def _run_sweep(self, job: ServiceJob, requests: list,
                         request_id: str, trace_id: str) -> None:
        job.state = JOB_RUNNING
        job.started = time.time()

        async def one(request: PartitionRequest) -> dict:
            try:
                # Sub-requests inherit the sweep's trace_id: the whole
                # sweep regroups as one tree in a merged trace.
                payload = await self.engine.serve(
                    request, request_id=request_id, trace_id=trace_id)
            except ProtocolError as exc:
                payload = {"error": str(exc), "status": exc.status}
            job.done += 1
            return payload

        try:
            # Concurrent submission is deliberate: simultaneous
            # same-netlist sub-requests are what the lane batches.
            results = await asyncio.gather(*(one(r) for r in requests))
            job.result = {"results": list(results)}
            job.state = JOB_DONE
        except asyncio.CancelledError:
            job.state = JOB_CANCELLED
            job.error = "cancelled"
        except Exception as exc:
            job.state = JOB_FAILED
            job.error = str(exc)
            _log.exception("sweep job %s failed", job.id)
        finally:
            job.finished = time.time()

    async def _jobs_endpoint(self, method: str,
                             path: str) -> Tuple[int, bytes, str]:
        rest = path[len("/jobs/"):]
        if rest.endswith("/cancel"):
            self._expect(method, "POST")
            job = self.jobs.cancel(rest[:-len("/cancel")])
        else:
            self._expect(method, "GET")
            job = self.jobs.get(rest)
        return 200, _json_bytes(job.describe()), "application/json"
