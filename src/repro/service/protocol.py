"""Wire protocol of the partitioning service.

Requests and responses are plain JSON objects.  This module owns the
schema: parsing and validating request bodies, and deriving the two
identities everything downstream keys on:

* the **netlist key** — a digest of the circuit itself, independent of
  how it was submitted (inline container, generator spec, or a
  server-side file), so the same circuit shares parsed-netlist and
  hierarchy cache entries across submission styles;
* the **request key** — SHA-256 of the canonical (netlist, config,
  seed, runs) tuple, the result cache's key and the coalescer's
  in-flight identity.  It deliberately excludes scheduling knobs
  (worker count, tracing): the runtime's determinism contract says
  those never change outcomes, so they must never split cache entries.

Validation failures raise :class:`ProtocolError` carrying the HTTP
status the server should answer with; nothing in this module does IO
beyond reading a ``path`` netlist spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ReproError
from ..hypergraph import Hypergraph, load_circuit, read_hmetis, read_json
from ..solvers import ALGORITHMS

__all__ = ["SCHEMA_VERSION", "MAX_DEADLINE_MS", "HEADER_REQUEST_ID",
           "HEADER_TRACE_ID", "ProtocolError", "NetlistSpec",
           "PartitionRequest", "canonical_json", "netlist_digest",
           "inline_netlist"]

#: Version stamped into every response envelope.
SCHEMA_VERSION = 1

#: Correlation headers — part of the wire contract.  Clients may
#: supply either on any request; the server echoes both back (headers
#: and, on ``/partition``, the response body) after sanitising, and
#: generates them when absent.  ``trace_id`` defaults to
#: ``request_id`` when only the latter is present.
HEADER_REQUEST_ID = "X-Request-Id"
HEADER_TRACE_ID = "X-Trace-Id"

#: Modes a request may execute under.  ``fresh`` is CLI-identical
#: (every start coarsens for itself); ``ml-reuse`` coarsens once per
#: (netlist, config, hierarchy_seed) and shares that hierarchy across
#: requests — faster, deterministic, but a different experiment than
#: the CLI's default path (and documented as such).
MODES = ("fresh", "ml-reuse")

#: Hex digits kept of netlist/request digests.  Longer than the result
#: fingerprint's 16 — request keys index a cache, where an accidental
#: collision would serve a wrong answer rather than just mislabel a
#: ledger row.
_KEY_LENGTH = 32


#: Upper bound accepted for a request's ``deadline_ms`` (one hour) —
#: matching the runtime's own finite collection ceiling: nothing in
#: the service is allowed to wait unboundedly.
MAX_DEADLINE_MS = 3_600_000


class ProtocolError(ReproError):
    """A malformed or unserviceable request; ``status`` is the HTTP
    answer (400 for bad bodies, 404 for unknown resources, 429 for
    load shed, 504 for an exhausted deadline, ...).  ``retry_after``,
    when set, is surfaced as a ``Retry-After`` header so shed clients
    know when the queue is likely to have drained."""

    def __init__(self, message: str, status: int = 400,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def canonical_json(obj) -> str:
    """Deterministic JSON encoding used for every digest in the
    protocol (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _digest(obj) -> str:
    return hashlib.sha256(
        canonical_json(obj).encode("utf-8")).hexdigest()[:_KEY_LENGTH]


def netlist_digest(hg: Hypergraph) -> str:
    """Digest of a parsed netlist's full structure (nets, areas,
    weights, name) — the submission-independent circuit identity."""
    payload = {
        "name": hg.name,
        "num_modules": hg.num_modules,
        "nets": [list(hg.pins(e)) for e in hg.all_nets()],
        "areas": hg.areas(),
        "net_weights": hg.net_weights(),
    }
    return _digest(payload)


def inline_netlist(hg: Hypergraph) -> Dict[str, object]:
    """``hg`` as the inline-container dict a request embeds — the same
    shape :func:`repro.hypergraph.write_json` writes."""
    return {
        "name": hg.name,
        "num_modules": hg.num_modules,
        "nets": [list(hg.pins(e)) for e in hg.all_nets()],
        "areas": hg.areas(),
        "net_weights": hg.net_weights(),
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _typed(data: Dict[str, object], key: str, kind, default):
    """Fetch ``key`` coerced to ``kind``; bools never pass as ints."""
    if key not in data:
        return default
    value = data[key]
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or (kind is int
                                       and isinstance(value, bool)):
        raise ProtocolError(
            f"field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}")
    return value


@dataclass
class NetlistSpec:
    """One of three ways a request names its circuit.

    * ``{"netlist": {"inline": {...}}}`` — the JSON netlist container
      (``nets``, ``num_modules``, optional ``areas``/``net_weights``/
      ``name``), identical to ``repro generate -o x.json`` output;
    * ``{"netlist": {"generate": {"name": ..., "scale": ..., "seed":
      ...}}}`` — a synthetic Table I stand-in built server-side;
    * ``{"netlist": {"path": "circuit.hgr"}}`` — a file readable by the
      *server* (``.hgr`` or ``.json``), hashed at parse time so a file
      that changes on disk can never poison the cache.
    """

    kind: str
    inline: Optional[Dict[str, object]] = None
    name: str = ""
    scale: float = 1.0
    seed: int = 0
    path: Optional[str] = None
    #: Identity payload; for ``path`` specs the file's bytes are folded
    #: in here at parse time.
    key: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_json(cls, data: object) -> "NetlistSpec":
        _require(isinstance(data, dict), "field 'netlist' must be an object")
        kinds = [k for k in ("inline", "generate", "path") if k in data]
        _require(len(kinds) == 1,
                 "field 'netlist' must contain exactly one of "
                 "'inline', 'generate', 'path'")
        kind = kinds[0]
        if kind == "inline":
            inline = data["inline"]
            _require(isinstance(inline, dict),
                     "netlist.inline must be a netlist container object")
            for required in ("nets", "num_modules"):
                _require(required in inline,
                         f"netlist.inline is missing {required!r}")
            return cls(kind="inline", inline=inline,
                       key={"kind": "inline", "digest": _digest(inline)})
        if kind == "generate":
            spec = data["generate"]
            _require(isinstance(spec, dict),
                     "netlist.generate must be an object")
            name = _typed(spec, "name", str, None)
            _require(bool(name), "netlist.generate needs a circuit 'name'")
            scale = _typed(spec, "scale", float, 1.0)
            seed = _typed(spec, "seed", int, 0)
            _require(scale > 0, "netlist.generate scale must be positive")
            return cls(kind="generate", name=name, scale=scale, seed=seed,
                       key={"kind": "generate", "name": name,
                            "scale": scale, "seed": seed})
        path = data["path"]
        _require(isinstance(path, str) and bool(path),
                 "netlist.path must be a non-empty string")
        try:
            raw = Path(path).read_bytes()
        except OSError as exc:
            raise ProtocolError(
                f"netlist path {path!r} is not readable by the server: "
                f"{exc}", status=400)
        digest = hashlib.sha256(raw).hexdigest()[:_KEY_LENGTH]
        return cls(kind="path", path=path,
                   key={"kind": "path", "digest": digest})

    def load(self) -> Hypergraph:
        """Parse/generate the hypergraph (potentially expensive — the
        engine calls this off the event loop, behind its netlist
        cache)."""
        if self.kind == "inline":
            try:
                return Hypergraph(self.inline["nets"],
                                  num_modules=self.inline["num_modules"],
                                  areas=self.inline.get("areas"),
                                  net_weights=self.inline.get("net_weights"),
                                  name=self.inline.get("name", "inline"))
            except ReproError as exc:
                raise ProtocolError(f"invalid inline netlist: {exc}")
        if self.kind == "generate":
            try:
                return load_circuit(self.name, scale=self.scale,
                                    seed=self.seed)
            except ReproError as exc:
                raise ProtocolError(f"invalid generate spec: {exc}")
        try:
            if self.path.endswith(".json"):
                return read_json(self.path)
            return read_hmetis(self.path)
        except (ReproError, OSError) as exc:
            raise ProtocolError(
                f"could not read netlist {self.path!r}: {exc}")


@dataclass
class PartitionRequest:
    """A validated ``POST /partition`` body.

    Fields mirror ``repro partition``'s flags; scheduling knobs the
    determinism contract excludes from outcomes (worker count, trace)
    are accepted but never reach :meth:`request_key`.
    """

    netlist: NetlistSpec
    algorithm: str = "mlc"
    k: int = 2
    ratio: float = 0.5
    threshold: int = 35
    tolerance: float = 0.1
    runs: int = 1
    seed: int = 0
    vcycles: int = 0
    descents: int = 20
    mode: str = "fresh"
    hierarchy_seed: int = 0
    include_assignment: bool = False
    trace: bool = False
    #: Decision recording for this request (``GET /record/<id>`` serves
    #: the file).  Like ``trace``, a scheduling/observability knob:
    #: never part of the request key, and recorded requests bypass the
    #: cache and the batcher so the recording covers a real execution.
    record: bool = False
    #: Per-request wall-clock deadline in milliseconds; ``None`` means
    #: the server default applies.  Like the other scheduling knobs it
    #: never reaches the request key: a *complete* result is
    #: deadline-independent, and degraded (partial) results are never
    #: cached, so one cache entry serves every deadline.
    deadline_ms: Optional[int] = None

    _FIELDS = ("netlist", "algorithm", "k", "ratio", "threshold",
               "tolerance", "runs", "seed", "vcycles", "descents", "mode",
               "hierarchy_seed", "include_assignment", "trace", "record",
               "deadline_ms")

    @classmethod
    def from_json(cls, data: object) -> "PartitionRequest":
        _require(isinstance(data, dict), "request body must be a JSON object")
        unknown = sorted(set(data) - set(cls._FIELDS))
        _require(not unknown,
                 f"unknown request field(s): {', '.join(unknown)}")
        _require("netlist" in data, "request needs a 'netlist' spec")
        request = cls(
            netlist=NetlistSpec.from_json(data["netlist"]),
            algorithm=_typed(data, "algorithm", str, "mlc"),
            k=_typed(data, "k", int, 2),
            ratio=_typed(data, "ratio", float, 0.5),
            threshold=_typed(data, "threshold", int, 35),
            tolerance=_typed(data, "tolerance", float, 0.1),
            runs=_typed(data, "runs", int, 1),
            seed=_typed(data, "seed", int, 0),
            vcycles=_typed(data, "vcycles", int, 0),
            descents=_typed(data, "descents", int, 20),
            mode=_typed(data, "mode", str, "fresh"),
            hierarchy_seed=_typed(data, "hierarchy_seed", int, 0),
            include_assignment=_typed(data, "include_assignment", bool,
                                      False),
            trace=_typed(data, "trace", bool, False),
            record=_typed(data, "record", bool, False),
            deadline_ms=_typed(data, "deadline_ms", int, None),
        )
        _require(request.algorithm in ALGORITHMS,
                 f"unknown algorithm {request.algorithm!r} "
                 f"(expected one of {', '.join(ALGORITHMS)})")
        _require(request.mode in MODES,
                 f"unknown mode {request.mode!r} "
                 f"(expected one of {', '.join(MODES)})")
        _require(request.k >= 2, "k must be >= 2")
        _require(request.runs >= 1, "runs must be >= 1")
        _require(request.runs <= 10_000, "runs must be <= 10000")
        _require(0.0 < request.ratio <= 1.0, "ratio must be in (0, 1]")
        _require(request.threshold >= 1, "threshold must be >= 1")
        _require(0.0 <= request.tolerance < 1.0,
                 "tolerance must be in [0, 1)")
        _require(request.vcycles >= 0, "vcycles must be >= 0")
        _require(request.descents >= 1, "descents must be >= 1")
        if request.deadline_ms is not None:
            _require(request.deadline_ms >= 1,
                     "deadline_ms must be >= 1")
            _require(request.deadline_ms <= MAX_DEADLINE_MS,
                     f"deadline_ms must be <= {MAX_DEADLINE_MS}")
        if request.mode == "ml-reuse":
            _require(request.algorithm in ("mlc", "mlf"),
                     "mode 'ml-reuse' requires a multilevel algorithm "
                     "(mlc/mlf)")
            _require(request.k == 2 and request.vcycles == 0,
                     "mode 'ml-reuse' supports k=2 without vcycles")
        return request

    def config_key(self) -> Dict[str, object]:
        """The outcome-shaping knobs *minus* seed and runs — the level
        at which same-netlist requests are batchable.

        ``kernels`` is the *cut class* of the process's current kernel
        mode, not the mode itself: ``csr`` and ``reference`` are
        bit-identical so their cached results must keep deduplicating,
        while ``numpy``'s batched refinement can break ties differently
        and so must never be served a scalar-mode answer (or vice
        versa).
        """
        from ..kernels import cut_class
        key = {
            "algorithm": self.algorithm, "k": self.k, "ratio": self.ratio,
            "threshold": self.threshold, "tolerance": self.tolerance,
            "vcycles": self.vcycles, "descents": self.descents,
            "mode": self.mode, "kernels": cut_class(),
        }
        if self.mode == "ml-reuse":
            key["hierarchy_seed"] = self.hierarchy_seed
        return key

    def batch_key(self) -> str:
        """Identity of the request's batch group: same netlist, same
        config, any seed/runs."""
        return _digest({"netlist": self.netlist.key,
                        "config": self.config_key()})

    def request_key(self) -> str:
        """The cache/coalescing key: netlist + config + seed + runs."""
        return _digest({"netlist": self.netlist.key,
                        "config": self.config_key(),
                        "seed": self.seed, "runs": self.runs})
