"""A small blocking client for the partition service.

Backs ``repro client`` (smoke use against a running daemon), the
service benchmark, and the CI smoke step.  Pure stdlib
(:mod:`http.client`), one keep-alive connection per
:class:`ServiceClient` instance — enough for scripts and load
generators without pulling in an HTTP dependency.

Retry policy: connection failures and 429 load-shed responses are
retried up to ``retries`` times with the runtime's seed-jittered
exponential backoff (:func:`repro.runtime.backoff_delay` — the same
derivation portfolio start retries use, so a fixed ``retry_seed``
replays the identical wait sequence).  A 429's ``Retry-After`` header
takes precedence over the computed delay; any other HTTP error is
surfaced immediately as :class:`ServiceError`.
"""

from __future__ import annotations

import http.client
import json
import math
import time
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..runtime import backoff_delay
from .protocol import HEADER_REQUEST_ID, HEADER_TRACE_ID

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-2xx response; ``status`` is the HTTP code and
    ``retry_after`` the parsed ``Retry-After`` header (seconds), when
    the server sent one."""

    def __init__(self, message: str, status: int = 0,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client bound to one ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8349,
                 timeout: float = 300.0, retries: int = 2,
                 backoff_seconds: float = 0.25, backoff_cap: float = 5.0,
                 retry_seed: int = 0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap = backoff_cap
        self.retry_seed = retry_seed
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Monotonic per-request counter: the backoff jitter index, so
        #: two requests retrying concurrently don't share a wait
        #: sequence (and a replayed client reproduces its own).
        self._request_index = 0

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _sleep_before(self, attempt: int, index: int,
                      retry_after: Optional[float]) -> None:
        delay = backoff_delay(self.backoff_seconds, self.backoff_cap,
                              self.retry_seed, index, attempt)
        if retry_after is not None:
            delay = max(delay, retry_after)
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _retry_after(response: http.client.HTTPResponse
                     ) -> Optional[float]:
        value = response.getheader("Retry-After")
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> http.client.HTTPResponse:
        payload = None
        headers = dict(headers or {})
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._request_index += 1
        index = self._request_index
        attempts = max(1, self.retries + 1)
        for attempt in range(1, attempts + 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive socket (server restarted, idle
                # timeout) or refused connection: back off and retry.
                self.close()
                if attempt >= attempts:
                    raise
                self._sleep_before(attempt + 1, index, None)
                continue
            if response.status == 429 and attempt < attempts:
                # Load shed: drain the body so the keep-alive socket
                # stays usable, then honor the server's Retry-After.
                retry_after = self._retry_after(response)
                response.read()
                self._sleep_before(attempt + 1, index, retry_after)
                continue
            return response
        raise AssertionError("unreachable")

    def _json(self, method: str, path: str,
              body: Optional[dict] = None,
              headers: Optional[Dict[str, str]] = None) -> dict:
        response = self._request(method, path, body, headers=headers)
        raw = response.read()
        if response.status >= 400:
            try:
                message = json.loads(raw).get("error", raw.decode())
            except (ValueError, AttributeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceError(f"{path}: {message}",
                               status=response.status,
                               retry_after=self._retry_after(response))
        return json.loads(raw)

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def version(self) -> dict:
        return self._json("GET", "/version")

    def metrics(self) -> str:
        response = self._request("GET", "/metrics")
        raw = response.read()
        if response.status >= 400:
            raise ServiceError(f"/metrics: HTTP {response.status}",
                               status=response.status)
        return raw.decode("utf-8")

    def metric_value(self, name: str, **labels) -> float:
        """Read one sample from the text exposition (0.0 if absent)."""
        wanted = {f'{k}="{v}"' for k, v in labels.items()}
        for line in self.metrics().splitlines():
            if not line.startswith(name):
                continue
            rest = line[len(name):]
            if rest[:1] not in ("{", " "):
                continue
            label_part = rest[1:rest.index("}")] if \
                rest.startswith("{") else ""
            if wanted and not wanted <= set(label_part.split(",")):
                continue
            return float(line.rsplit(" ", 1)[1])
        return 0.0

    def histogram_quantile(self, name: str, q: float, **labels) -> float:
        """PromQL-style ``histogram_quantile`` over one scraped series.

        Reads the ``<name>_bucket`` samples matching ``labels`` from
        ``/metrics`` and interpolates inside the owning bucket — the
        same estimate the server's in-process
        :meth:`~repro.obs.metrics.Histogram.quantile` computes, so a
        client-side cross-check (bench_service.py) compares like with
        like.  ``nan`` when the series is absent or empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        wanted = {f'{k}="{v}"' for k, v in labels.items()}
        buckets: List[Tuple[float, float]] = []
        prefix = f"{name}_bucket{{"
        for line in self.metrics().splitlines():
            if not line.startswith(prefix):
                continue
            label_part = line[len(prefix):line.index("}")]
            parts = set(label_part.split(","))
            if wanted and not wanted <= parts:
                continue
            le = next((p[4:-1] for p in parts if p.startswith('le="')),
                      None)
            if le is None:
                continue
            upper = math.inf if le == "+Inf" else float(le)
            buckets.append((upper, float(line.rsplit(" ", 1)[1])))
        buckets.sort()
        if not buckets or buckets[-1][1] <= 0:
            return math.nan
        total = buckets[-1][1]
        rank = q * total
        cumulative = 0.0
        lower = 0.0
        for upper, cum_count in buckets:
            count = cum_count - cumulative
            if count > 0 and cum_count >= rank:
                if math.isinf(upper):
                    return lower
                return lower + (upper - lower) * \
                    (rank - cumulative) / count
            cumulative = cum_count
            if not math.isinf(upper):
                lower = upper
        return lower

    def status(self) -> dict:
        return self._json("GET", "/status")

    def profile(self) -> str:
        """The daemon's collapsed-stack wall profile (404 → error when
        profiling is off)."""
        response = self._request("GET", "/profile")
        raw = response.read()
        if response.status >= 400:
            raise ServiceError(f"/profile: HTTP {response.status}",
                               status=response.status)
        return raw.decode("utf-8")

    def partition(self, request: dict,
                  request_id: Optional[str] = None,
                  trace_id: Optional[str] = None) -> dict:
        headers = {}
        if request_id is not None:
            headers[HEADER_REQUEST_ID] = request_id
        if trace_id is not None:
            headers[HEADER_TRACE_ID] = trace_id
        return self._json("POST", "/partition", request,
                          headers=headers or None)

    def sweep(self, requests: List[dict]) -> str:
        return self._json("POST", "/sweep",
                          {"requests": requests})["job_id"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def wait_job(self, job_id: str, poll_seconds: float = 0.1,
                 timeout: float = 600.0) -> dict:
        """Poll until the job leaves queued/running; return its body."""
        import time
        deadline = time.monotonic() + timeout
        while True:
            body = self.job(job_id)
            if body["state"] not in ("queued", "running"):
                return body
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {body['state']} after "
                    f"{timeout:g}s")
            time.sleep(poll_seconds)

    def trace(self, run_id: str) -> bytes:
        response = self._request("GET", f"/trace/{run_id}")
        raw = response.read()
        if response.status >= 400:
            raise ServiceError(f"/trace/{run_id}: HTTP {response.status}",
                               status=response.status)
        return raw

    def record(self, run_id: str) -> bytes:
        """Download a request's decision recording
        (``"record": true`` in the partition body)."""
        response = self._request("GET", f"/record/{run_id}")
        raw = response.read()
        if response.status >= 400:
            raise ServiceError(f"/record/{run_id}: HTTP {response.status}",
                               status=response.status)
        return raw
