"""Partitioning-as-a-service: the ``repro serve`` daemon.

This package turns the portfolio runtime into a long-lived serving
process — the composition layer over everything the repo already has:

* requests are keyed by the same SHA-256 fingerprint convention the
  run ledger uses (:func:`repro.runtime.fingerprint_digest`), so a
  repeated (netlist, config, seed) request is a **cache hit** instead
  of a recomputation;
* concurrent identical requests **coalesce** onto one in-flight
  execution, and concurrent same-netlist/different-seed requests are
  **batched** into one merged portfolio (one executor invocation, one
  shared parsed netlist, shared :class:`~repro.runtime.HierarchyCache`
  entries for ``ml-reuse`` requests);
* every served run is recorded in the run ledger exactly like a CLI
  run, scrape-able Prometheus metrics ride on the existing
  :mod:`repro.obs` registry, and traced requests offer their Perfetto
  stream for download.

Layers
------
* :mod:`.protocol`  — request schema, validation, identity digests.
* :mod:`.cache`     — LRU result/netlist caches.
* :mod:`.coalescer` — one in-flight execution per request key.
* :mod:`.engine`    — execution lane, batching, deadlines, payload
  construction.
* :mod:`.breaker`   — per-netlist circuit breaker (degraded mode).
* :mod:`.jobs`      — async job handles for ``POST /sweep``.
* :mod:`.server`    — the asyncio HTTP/1.1 daemon (admission control,
  slow-client defenses).
* :mod:`.client`    — blocking stdlib client (``repro client``, bench,
  CI smoke) with jittered 429-aware retries.

Overload behavior — deadlines, load shedding, the circuit breaker,
and the degradation ladder — is documented in ``DESIGN.md`` §14.
"""

from .breaker import CircuitBreaker
from .cache import LRUCache, NetlistCache, ResultCache
from .client import ServiceClient, ServiceError
from .coalescer import Coalescer
from .engine import (DEADLINE_GRACE_SECONDS, ExecutionLane, PendingRun,
                     ServiceEngine)
from .jobs import JobTable, ServiceJob
from .protocol import (MAX_DEADLINE_MS, NetlistSpec, PartitionRequest,
                       ProtocolError, SCHEMA_VERSION, canonical_json,
                       inline_netlist, netlist_digest)
from .server import DEFAULT_PORT, PartitionServer

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_PORT",
    "MAX_DEADLINE_MS",
    "DEADLINE_GRACE_SECONDS",
    "CircuitBreaker",
    "ExecutionLane",
    "PartitionServer",
    "ServiceEngine",
    "ServiceClient",
    "ServiceError",
    "PartitionRequest",
    "NetlistSpec",
    "ProtocolError",
    "Coalescer",
    "LRUCache",
    "ResultCache",
    "NetlistCache",
    "JobTable",
    "ServiceJob",
    "PendingRun",
    "canonical_json",
    "netlist_digest",
    "inline_netlist",
]
