"""Request coalescing: one in-flight execution per request key.

When N clients ask for the same (netlist, config, seed, runs) at once,
exactly one of them — the *leader* — executes; the rest await the
leader's future and share its payload.  Combined with the result cache
this gives the daemon its amortization shape: the first request pays,
every concurrent duplicate rides along, every later duplicate hits the
cache.

Single-threaded by construction: the coalescer lives on the event loop
and its map is only touched from coroutines, so registration of the
in-flight future is atomic with respect to other requests — two
"simultaneous" identical requests can never both become leaders.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict

__all__ = ["Coalescer"]


class Coalescer:
    """In-flight futures keyed by request key."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Requests that became leaders (executed something).
        self.leaders = 0
        #: Requests that piggybacked on an in-flight leader.
        self.coalesced = 0

    def inflight(self, key: str) -> bool:
        return key in self._inflight

    async def run(self, key: str,
                  factory: Callable[[], Awaitable[object]]) -> object:
        """Return ``factory()``'s result, sharing one execution per key.

        The leader's exception propagates to every waiter (each gets
        the same exception object); the in-flight entry is removed
        before the leader returns, so a retry after a failure executes
        afresh instead of replaying the failure forever.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            # shield: a waiter being cancelled must not cancel the
            # leader's future out from under the other waiters.
            return await asyncio.shield(existing)
        self.leaders += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # A leader that fails with zero waiters would otherwise log
        # "exception was never retrieved" at GC time.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = future
        try:
            result = await factory()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            if not future.done():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)

    def stats(self) -> Dict[str, int]:
        return {"inflight": len(self._inflight),
                "leaders": self.leaders, "coalesced": self.coalesced}
