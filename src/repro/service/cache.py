"""Bounded LRU caches for the service.

Two instantiations of one mechanism:

* :class:`ResultCache` — fingerprint-keyed response payloads.  A hit
  turns a multi-second portfolio into a dictionary copy; the LRU bound
  keeps a long-lived daemon's memory flat.
* :class:`NetlistCache` — parsed :class:`~repro.hypergraph.Hypergraph`
  objects keyed by the protocol's netlist identity.  Sharing the *same
  object* across requests is what makes the runtime's
  :class:`~repro.runtime.HierarchyCache` (keyed on ``id(hg)``) hit
  across requests at all.

Both are thread-safe: the event loop reads the result cache while the
execution lane's worker thread populates it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, TypeVar

from ..errors import ConfigError
from ..hypergraph import Hypergraph

__all__ = ["LRUCache", "ResultCache", "NetlistCache"]

V = TypeVar("V")


class LRUCache:
    """A small thread-safe LRU with hit/miss/eviction counters."""

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ConfigError(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[object]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_build(self, key: str, build: Callable[[], V]) -> V:
        """Return the cached value, building (under the lock's *miss*
        accounting but outside the lock itself) when absent.

        Two threads may race to build the same entry; the second put
        simply overwrites with an equivalent value — correctness never
        depends on single-build, only the counters do, and they are
        advisory.
        """
        value = self.get(key)
        if value is None:
            value = build()
            self.put(key, value)
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}


class ResultCache(LRUCache):
    """Response payloads keyed by the protocol's request key.

    Values are the *stable* portion of a response (no per-request
    ``cached``/timing fields); the server copies on hit so a handler
    can annotate its copy without corrupting the cache.
    """

    def __init__(self, max_entries: int = 256):
        super().__init__(max_entries)


class NetlistCache(LRUCache):
    """Parsed netlists keyed by the protocol's netlist identity."""

    def __init__(self, max_entries: int = 32):
        super().__init__(max_entries)

    def resolve(self, key: str, load: Callable[[], Hypergraph]
                ) -> Hypergraph:
        return self.get_or_build(key, load)
