"""Exception hierarchy for the repro package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class HypergraphError(ReproError):
    """Raised for structurally invalid hypergraphs or invalid construction."""


class ParseError(ReproError):
    """Raised when a netlist file cannot be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PartitionError(ReproError):
    """Raised for invalid partitioning solutions or infeasible constraints."""


class BalanceError(PartitionError):
    """Raised when balance constraints cannot be satisfied at all."""


class ClusteringError(ReproError):
    """Raised for invalid clusterings (overlapping or incomplete clusters)."""


class ConfigError(ReproError):
    """Raised for invalid algorithm configuration values."""


class HarnessError(ReproError):
    """Raised for invalid experiment-harness states (e.g. statistics
    requested over a portfolio whose runs all failed)."""


class InjectedFault(ReproError):
    """Raised by the fault-injection layer when a start is scheduled to
    crash.  Deliberately a :class:`ReproError` subclass: injected
    crashes must flow through exactly the code paths real ones do."""


class CheckpointError(HarnessError):
    """Raised when a sweep checkpoint cannot be resumed (corrupt file,
    or a resume whose configuration contradicts the checkpoint's)."""
