"""Command-line interface.

Three subcommands make the library usable without writing Python:

* ``repro info FILE``       — print a netlist's size characteristics
* ``repro generate NAME``   — emit a synthetic Table I stand-in (hMETIS)
* ``repro partition FILE``  — partition a netlist and report the cut

``FILE`` is hMETIS (``.hgr``) or this library's JSON container
(``.json``), auto-detected by extension.

Examples::

    repro generate s9234 --scale 0.1 -o s9234.hgr
    repro info s9234.hgr
    repro partition s9234.hgr --algorithm mlc -R 0.5 --runs 10
    repro partition s9234.hgr --runs 20 --jobs 4 --budget 30
    repro partition s9234.hgr --runs 20 --verify \
        --inject-faults rate=0.1,seed=7 --retries 2 --min-ok-fraction 0.5
    repro partition s9234.hgr -k 4 --algorithm mlf --output parts.txt
    repro partition s9234.hgr --runs 10 --jobs 4 --trace run.trace.jsonl
    repro trace-summary run.trace.jsonl
    repro compare baseline.jsonl current.jsonl --gate
    repro report --ledger .repro/ledger.jsonl --trace run.trace.jsonl
    repro partition s9234.hgr --record run.record.jsonl
    repro replay run.record.jsonl s9234.hgr
    repro diff-run csr.record.jsonl numpy.record.jsonl

Every subcommand accepts ``-v``/``-vv`` (or ``--log-level LEVEL``) to
raise the verbosity of the ``repro.*`` logging hierarchy, which is
quiet by default.  ``--trace FILE`` (on ``partition``/``bench``) writes
a Chrome trace-event stream loadable in Perfetto or chrome://tracing;
``--metrics-out FILE`` writes Prometheus-format metrics.

Every ``partition``/``bench`` run is also recorded in the append-only
run ledger (``.repro/ledger.jsonl``; redirect or disable with the
``REPRO_LEDGER`` environment variable).  ``repro compare`` reduces two
ledgers (or committed ``BENCH_*.json`` reports) with median/sign-test
statistics — ``--gate`` exits nonzero on a *confirmed* regression —
and ``repro report`` renders the ledger (plus optional convergence
analytics from a trace) as markdown or HTML.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .errors import ReproError
from .faults import FaultPlan
from .hypergraph import (Hypergraph, benchmark_names, compute_stats,
                         load_circuit, read_hmetis, read_json,
                         write_hmetis, write_json)
from .obs import configure_logging
from .partition import (BalanceConstraint, cut, read_assignment,
                        summarize, write_assignment)
from .runtime import Portfolio, execute
from .solvers import ALGORITHMS, build_algorithm

__all__ = ["main", "build_parser", "version_string"]


def version_string() -> str:
    """``repro <version> (<git sha>)`` — the ``--version``/``/version``
    identity line, reusing the ledger's cached git-SHA probe."""
    from . import __version__
    from .obs import git_sha
    sha = git_sha()
    return f"repro {__version__}" + (f" ({sha})" if sha else "")


def _read_netlist(path: str) -> Hypergraph:
    if path.endswith(".json"):
        return read_json(path)
    return read_hmetis(path)


def _write_metrics(registry, path: str) -> None:
    """Write a registry's Prometheus exposition to ``path``.

    The one ``--metrics-out`` implementation (partition and bench both
    funnel here): parent directories are created, and IO failures
    surface as a clean CLI error instead of a traceback.
    """
    from .obs import write_prometheus
    try:
        write_prometheus(registry, path)
    except OSError as exc:
        raise ReproError(f"could not write metrics to {path}: {exc}")
    print(f"metrics written to {path}", file=sys.stderr)


def _cmd_info(args: argparse.Namespace) -> int:
    hg = _read_netlist(args.file)
    stats = compute_stats(hg)
    print(f"name:          {stats.name or Path(args.file).stem}")
    print(f"modules:       {stats.modules}")
    print(f"nets:          {stats.nets}")
    print(f"pins:          {stats.pins}")
    print(f"mean net size: {stats.mean_net_size:.2f} "
          f"(max {stats.max_net_size})")
    print(f"mean degree:   {stats.mean_degree:.2f} (max {stats.max_degree})")
    print(f"total area:    {stats.total_area:g} (max module "
          f"{stats.max_area:g})")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    hg = load_circuit(args.name, scale=args.scale, seed=args.seed)
    out = args.output or f"{args.name}.hgr"
    if out.endswith(".json"):
        write_json(hg, out)
    else:
        write_hmetis(hg, out)
    print(f"wrote {out}: {hg.num_modules} modules, {hg.num_nets} nets, "
          f"{hg.num_pins} pins (stand-in for {args.name} at scale "
          f"{args.scale:g})")
    return 0


def _apply_kernels(args: argparse.Namespace) -> None:
    """Select the kernel mode process-wide (worker processes inherit it
    through fork) before any engine or executor is built."""
    if getattr(args, "kernels", None):
        from .kernels import set_kernel_mode
        set_kernel_mode(args.kernels)


def _cmd_partition(args: argparse.Namespace) -> int:
    _apply_kernels(args)
    hg = _read_netlist(args.file)
    algorithm = build_algorithm(args.algorithm, k=args.k, ratio=args.ratio,
                                threshold=args.threshold,
                                tolerance=args.tolerance,
                                descents=args.descents,
                                vcycles=args.vcycles)
    faults = (FaultPlan.parse(args.inject_faults)
              if args.inject_faults else None)
    # --verify recomputes every returned cut from scratch and checks
    # balance at the run's own tolerance; corrupt results are demoted
    # to 'invalid' records and retried instead of reported.
    verify = args.tolerance if args.verify else False
    portfolio = Portfolio(algorithm=algorithm, hg=hg, runs=args.runs,
                          seed=args.seed, budget_seconds=args.budget,
                          retries=args.retries, keep_results=True,
                          faults=faults, verify=verify, trace=args.trace,
                          record=args.record)
    registry = None
    if args.metrics_out:
        from .obs import collecting_metrics
        with collecting_metrics() as registry:
            outcome = execute(portfolio, jobs=args.jobs)
    else:
        outcome = execute(portfolio, jobs=args.jobs)
    if registry is not None:
        _write_metrics(registry, args.metrics_out)
    if args.trace:
        print(f"trace written to {args.trace} (load in Perfetto or "
              "chrome://tracing, or run 'repro trace-summary')",
              file=sys.stderr)
    if args.record:
        print(f"decision recording written to {args.record} (audit with "
              "'repro replay', compare with 'repro diff-run')",
              file=sys.stderr)
    outcome.require_quorum(args.min_ok_fraction)
    if not outcome.ok_records:
        raise ReproError(
            f"all {outcome.runs} runs failed; first error: "
            f"{outcome.records[0].error}")
    best = outcome.best.result
    cuts = outcome.cuts

    assert best is not None
    partition = best.partition
    constraint = BalanceConstraint.from_tolerance(hg, args.tolerance,
                                                  k=args.k)
    areas = partition.part_areas(hg)
    print(f"algorithm:  {args.algorithm} (k={args.k}, runs={args.runs}, "
          f"jobs={args.jobs})")
    print(f"min cut:    {min(cuts)}")
    if args.runs > 1:
        print(f"avg cut:    {sum(cuts) / len(cuts):.1f}")
        print(f"all cuts:   {cuts}")
    if outcome.failures:
        for record in outcome.failures:
            print(f"run {record.index} {record.status} "
                  f"(seed {record.seed}): {record.error}", file=sys.stderr)
        print(f"failed:     {len(outcome.failures)}/{outcome.runs} runs")
    print(f"part areas: {[round(a, 2) for a in areas]} "
          f"(bounds [{constraint.lower:.1f}, {constraint.upper:.1f}], "
          f"feasible: {constraint.is_feasible(areas)})")
    print(f"wall:       {outcome.wall_seconds:.2f}s")
    print(f"cpu:        {outcome.cpu_seconds:.2f}s")
    if cut(hg, partition) != best.cut:
        raise ReproError(
            f"best solution failed final recomputation (reported "
            f"{best.cut}, recomputed {cut(hg, partition)}); "
            "re-run with --verify to quarantine corrupt results")

    if args.output:
        write_assignment(partition, args.output)
        print(f"assignment written to {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    hg = _read_netlist(args.file)
    partition = read_assignment(args.assignment,
                                num_modules=hg.num_modules)
    summary = summarize(hg, partition, tolerance=args.tolerance)
    print(f"k:           {summary['k']}")
    print(f"cut:         {summary['cut']}")
    print(f"soed:        {summary['soed']}")
    print(f"absorption:  {summary['absorption']:.2f} "
          f"(of {hg.total_net_weight})")
    if "ratio_cut" in summary:
        print(f"ratio cut:   {summary['ratio_cut']:.3e}")
    if "scaled_cost" in summary:
        print(f"scaled cost: {summary['scaled_cost']:.3e}")
    areas = summary["part_areas"]
    print(f"part areas:  {[round(a, 2) for a in areas]}")
    print(f"balanced:    {summary['balanced']} "
          f"(r = {args.tolerance})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness import (figure4_ratio_tradeoff, table1_characteristics,
                          table2_tiebreak, table3_fm_vs_clip,
                          table4_ml_vs_clip, table5_mlf_ratio,
                          table6_mlc_ratio, table7_comparison, table8_cpu,
                          table9_quadrisection)
    generators = {
        "1": lambda: table1_characteristics(scale=args.scale,
                                            seed=args.seed),
        "2": lambda: table2_tiebreak(scale=args.scale, runs=args.runs,
                                     seed=args.seed, jobs=args.jobs),
        "3": lambda: table3_fm_vs_clip(scale=args.scale, runs=args.runs,
                                       seed=args.seed, jobs=args.jobs),
        "4": lambda: table4_ml_vs_clip(scale=args.scale, runs=args.runs,
                                       seed=args.seed, jobs=args.jobs),
        "5": lambda: table5_mlf_ratio(scale=args.scale, runs=args.runs,
                                      seed=args.seed, jobs=args.jobs),
        "6": lambda: table6_mlc_ratio(scale=args.scale, runs=args.runs,
                                      seed=args.seed, jobs=args.jobs),
        "7": lambda: table7_comparison(scale=args.scale, runs=args.runs,
                                       seed=args.seed, jobs=args.jobs),
        "8": lambda: table8_cpu(scale=args.scale, runs=args.runs,
                                seed=args.seed, jobs=args.jobs),
        "9": lambda: table9_quadrisection(scale=args.scale,
                                          runs=max(1, args.runs // 2),
                                          seed=args.seed, jobs=args.jobs),
        "fig4": lambda: figure4_ratio_tradeoff(scale=args.scale,
                                               runs=args.runs,
                                               seed=args.seed,
                                               jobs=args.jobs),
    }
    from contextlib import ExitStack
    with ExitStack() as stack:
        registry = None
        if args.trace:
            from .obs import tracing
            stack.enter_context(tracing(args.trace))
        if args.metrics_out:
            from .obs import collecting_metrics
            registry = stack.enter_context(collecting_metrics())
        rendered = generators[args.table]().render()
    print(rendered)
    if registry is not None:
        _write_metrics(registry, args.metrics_out)
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from .obs import summarize_service_trace, summarize_trace
    # Service traces (repro serve --trace) regroup into one span tree
    # per request; everything else gets the flat phase table.
    service = summarize_service_trace(args.trace)
    if service.is_service_trace:
        print(service.render())
        print()
    print(summarize_trace(args.trace).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .obs import compare_sample_sets, load_samples
    from .obs.compare import RUNTIME_METRICS
    baseline = load_samples(args.baseline)
    current = load_samples(args.current)
    comparisons = compare_sample_sets(
        baseline, current, alpha=args.alpha,
        min_effect_pct=args.min_effect,
        time_min_effect_pct=args.time_min_effect)
    if not comparisons:
        print("no overlapping (key, metric) pairs between "
              f"{args.baseline} and {args.current}; nothing to compare")
        return 2 if args.gate else 0
    for comparison in comparisons:
        print(comparison.describe())
    gated = [c for c in comparisons
             if c.regressed and c.confirmed
             and (not args.no_time_gate
                  or c.metric not in RUNTIME_METRICS)]
    improved = sum(c.confirmed and not c.regressed for c in comparisons)
    print(f"{len(comparisons)} comparison(s): "
          f"{len([c for c in comparisons if c.regressed])} regressed, "
          f"{improved} improved, "
          f"{sum(not c.confirmed for c in comparisons)} indistinguishable")
    if args.gate and gated:
        print(f"gate: FAILED — {len(gated)} confirmed regression(s)",
              file=sys.stderr)
        return 1
    if args.gate:
        print("gate: ok (no confirmed regressions)")
    return 0


def _require_recording(path: str) -> None:
    # The tolerant JSONL reader maps a missing file to an empty
    # stream; at the CLI that would silently "verify" nothing, so
    # require the file up front (diff(1)-style exit 2 via ReproError).
    if not Path(path).is_file():
        raise ReproError(f"recording not found: {path}")


def _cmd_replay(args: argparse.Namespace) -> int:
    from .obs import replay_recording
    _require_recording(args.recording)
    hg = _read_netlist(args.netlist)
    report = replay_recording(args.recording, hg,
                              verify_states=args.verify_states)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_diff_run(args: argparse.Namespace) -> int:
    from .obs import diff_recordings
    for path in (args.a, args.b):
        _require_recording(path)
    report = diff_recordings(args.a, args.b)
    print(report.render())
    # diff(1) semantics: 0 identical, 1 diverged, 2 (ReproError) bad input.
    return 0 if report.identical else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs import build_report
    text = build_report(ledger=args.ledger, trace=args.trace,
                        fmt=args.format, last=args.last,
                        record=args.record)
    if args.output:
        try:
            Path(args.output).parent.mkdir(parents=True, exist_ok=True)
            Path(args.output).write_text(text, encoding="utf-8")
        except OSError as exc:
            raise ReproError(
                f"could not write report to {args.output}: {exc}")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import PartitionServer, ServiceEngine
    faults = None
    if args.inject_faults:
        from .faults import FaultPlan
        faults = FaultPlan.parse(args.inject_faults)
    engine = ServiceEngine(jobs=args.jobs,
                           result_entries=args.cache_size,
                           spool_dir=args.spool_dir,
                           kernels=args.kernels,
                           default_deadline_ms=args.deadline_ms,
                           max_queued=args.max_queued,
                           breaker_failures=args.breaker_failures,
                           breaker_cooldown=args.breaker_cooldown,
                           retries=args.retries,
                           faults=faults)
    server = PartitionServer(engine, host=args.host, port=args.port,
                             drain_seconds=args.drain_seconds,
                             max_connections=args.max_connections,
                             read_timeout=args.read_timeout,
                             job_ttl=args.job_ttl,
                             max_jobs=args.max_jobs,
                             trace_path=args.trace,
                             access_log_path=args.access_log,
                             profile_dir=args.profile_dir,
                             profile_interval=args.profile_interval)
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        # Signal handlers already drained; a second Ctrl-C lands here.
        pass
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.console import run_top
    from .service import ServiceClient
    host, port = _parse_server(args.server)
    color = sys.stdout.isatty() and not args.no_color
    with ServiceClient(host, port, timeout=args.timeout,
                       retries=0) as client:
        return run_top(client, interval=args.interval, once=args.once,
                       color=color)


def _parse_server(spec: str) -> tuple:
    from .service import DEFAULT_PORT
    host, _, port = spec.rpartition(":")
    if not host:
        host, port = spec, ""
    try:
        return host or "127.0.0.1", int(port) if port else DEFAULT_PORT
    except ValueError:
        raise ReproError(f"bad --server {spec!r} (expected HOST[:PORT])")


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceClient, inline_netlist
    host, port = _parse_server(args.server)
    with ServiceClient(host, port, timeout=args.timeout,
                       retries=args.retries) as client:
        if args.action == "health":
            print(_json.dumps(client.healthz(), indent=2))
        elif args.action == "version":
            print(_json.dumps(client.version(), indent=2))
        elif args.action == "metrics":
            print(client.metrics(), end="")
        elif args.action == "status":
            print(_json.dumps(client.status(), indent=2))
        elif args.action == "profile":
            print(client.profile(), end="")
        else:  # partition
            if not args.file:
                raise ReproError("client partition needs a netlist FILE")
            request = {
                "netlist": {"inline": inline_netlist(_read_netlist(args.file))},
                "algorithm": args.algorithm,
                "k": args.k, "runs": args.runs, "seed": args.seed,
                "ratio": args.ratio, "threshold": args.threshold,
                "tolerance": args.tolerance,
            }
            if args.deadline_ms is not None:
                request["deadline_ms"] = args.deadline_ms
            print(_json.dumps(client.partition(
                request, trace_id=args.trace_id), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multilevel circuit partitioning "
                    "(Alpert/Huang/Kahng 1997 reproduction)")
    parser.add_argument("--version", action="version",
                        version=version_string())
    # Logging flags are shared by every subcommand (so they can be
    # written after the subcommand name, where users expect them).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise repro.* log verbosity (-v info, "
                             "-vv debug; default: warnings only)")
    common.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="explicit log level name (DEBUG, INFO, ...); "
                             "overrides -v")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", parents=[common],
                            help="print netlist characteristics")
    p_info.add_argument("file")
    p_info.set_defaults(fn=_cmd_info)

    p_gen = sub.add_parser("generate", parents=[common],
                           help="generate a synthetic suite circuit")
    p_gen.add_argument("name", choices=benchmark_names())
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default=None,
                       help="output path (.hgr or .json)")
    p_gen.set_defaults(fn=_cmd_generate)

    p_part = sub.add_parser("partition", parents=[common],
                            help="partition a netlist")
    p_part.add_argument("file")
    p_part.add_argument("--algorithm", choices=ALGORITHMS, default="mlc")
    p_part.add_argument("-k", type=int, default=2,
                        help="number of parts (k>2 needs mlc/mlf)")
    p_part.add_argument("-R", "--ratio", type=float, default=0.5,
                        help="matching ratio for ML (paper: 0.5)")
    p_part.add_argument("-T", "--threshold", type=int, default=35,
                        help="coarsening threshold for ML (paper: 35)")
    p_part.add_argument("--tolerance", type=float, default=0.1,
                        help="balance tolerance r (paper: 0.1)")
    p_part.add_argument("--runs", type=int, default=1)
    p_part.add_argument("--descents", type=int, default=20,
                        help="LSMC descent count")
    p_part.add_argument("--vcycles", type=int, default=0,
                        help="extra restricted V-cycles after ML (k=2, "
                             "mlc/mlf only)")
    p_part.add_argument("--seed", type=int, default=0)
    from .kernels import KERNEL_MODES
    p_part.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                        help="kernel implementation family (default: "
                             "csr; 'numpy' vectorizes the hot path and "
                             "may break refinement ties differently — "
                             "see DESIGN.md)")
    p_part.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for the runs (same cuts "
                             "at any worker count)")
    p_part.add_argument("--budget", type=float, default=None,
                        help="per-run wall-clock budget in seconds")
    p_part.add_argument("--retries", type=int, default=0,
                        help="re-execute a crashed run this many times")
    p_part.add_argument("--verify", action="store_true",
                        help="recompute every returned cut (and balance "
                             "at --tolerance) from scratch; corrupt "
                             "results are retried, never reported")
    p_part.add_argument("--min-ok-fraction", type=float, default=None,
                        metavar="FRAC",
                        help="survival quorum: fail unless at least this "
                             "fraction of runs succeeds (default: any)")
    p_part.add_argument("--inject-faults", metavar="SPEC", default=None,
                        help="arm a deterministic fault plan, e.g. "
                             "'rate=0.1,seed=7,kinds=raise+corrupt_cut' "
                             "(chaos-testing the runtime; see "
                             "repro.faults.FaultPlan.parse)")
    p_part.add_argument("--output", default=None,
                        help="write the per-module part assignment here")
    p_part.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event stream of the "
                             "whole run (all workers) to FILE")
    p_part.add_argument("--record", metavar="FILE", default=None,
                        help="write the run's decision recording (every "
                             "merge and refinement move, all workers) to "
                             "FILE as JSONL; replay with 'repro replay', "
                             "compare runs with 'repro diff-run'")
    p_part.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write Prometheus-format metrics to FILE "
                             "after the run")
    p_part.set_defaults(fn=_cmd_partition)

    p_eval = sub.add_parser(
        "evaluate", parents=[common],
        help="score an existing partition assignment")
    p_eval.add_argument("file", help="the netlist (.hgr/.json)")
    p_eval.add_argument("assignment",
                        help="one part id per line, one line per module")
    p_eval.add_argument("--tolerance", type=float, default=0.1)
    p_eval.set_defaults(fn=_cmd_evaluate)

    p_bench = sub.add_parser(
        "bench", parents=[common],
        help="regenerate one of the paper's tables/figures")
    p_bench.add_argument("table",
                         choices=["1", "2", "3", "4", "5", "6", "7", "8",
                                  "9", "fig4"])
    p_bench.add_argument("--scale", type=float, default=0.1)
    p_bench.add_argument("--runs", type=int, default=5)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes per table cell")
    p_bench.add_argument("--trace", metavar="FILE", default=None,
                         help="write a Chrome trace-event stream of the "
                              "whole sweep to FILE")
    p_bench.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write Prometheus-format metrics to FILE")
    p_bench.set_defaults(fn=_cmd_bench)

    p_replay = sub.add_parser(
        "replay", parents=[common],
        help="re-execute a decision recording against its netlist, "
             "auditing every recorded gain/cut/balance; exits 1 on any "
             "mismatch")
    p_replay.add_argument("recording",
                          help="recording written by --record")
    p_replay.add_argument("netlist", help="the netlist (.hgr/.json) the "
                                          "recording was made on")
    p_replay.add_argument("--verify-states", action="store_true",
                          help="additionally run each refinement "
                               "block's full-state invariant check "
                               "(slower, strictest audit)")
    p_replay.set_defaults(fn=_cmd_replay)

    p_diff = sub.add_parser(
        "diff-run", parents=[common],
        help="align two decision recordings and report the first "
             "diverging decision (diff semantics: exit 1 when they "
             "diverge)")
    p_diff.add_argument("a", help="recording A (.jsonl)")
    p_diff.add_argument("b", help="recording B (.jsonl)")
    p_diff.set_defaults(fn=_cmd_diff_run)

    p_tsum = sub.add_parser(
        "trace-summary", parents=[common],
        help="print per-phase time and cut breakdown of a trace file")
    p_tsum.add_argument("trace", help="trace file written by --trace")
    p_tsum.set_defaults(fn=_cmd_trace_summary)

    p_cmp = sub.add_parser(
        "compare", parents=[common],
        help="statistically compare two run ledgers (or BENCH_*.json "
             "reports); --gate exits nonzero on confirmed regressions")
    p_cmp.add_argument("baseline",
                       help="baseline ledger (.jsonl) or BENCH_*.json")
    p_cmp.add_argument("current",
                       help="current ledger (.jsonl) or BENCH_*.json")
    p_cmp.add_argument("--gate", action="store_true",
                       help="exit 1 on any confirmed regression (the CI "
                            "perf/quality gate)")
    p_cmp.add_argument("--alpha", type=float, default=0.05,
                       help="sign-test significance level (default 0.05)")
    p_cmp.add_argument("--min-effect", type=float, default=1.0,
                       metavar="PCT",
                       help="minimum median shift (%%) for a quality "
                            "verdict to count (default 1.0)")
    p_cmp.add_argument("--time-min-effect", type=float, default=25.0,
                       metavar="PCT",
                       help="minimum median shift (%%) for a runtime "
                            "verdict to count (default 25.0 — CI "
                            "machines breathe)")
    p_cmp.add_argument("--no-time-gate", action="store_true",
                       help="report runtime regressions but never fail "
                            "the gate on them (quality only)")
    p_cmp.set_defaults(fn=_cmd_compare)

    p_rep = sub.add_parser(
        "report", parents=[common],
        help="render the run ledger (and optional trace convergence "
             "analytics) as markdown or HTML")
    p_rep.add_argument("--ledger", default=None, metavar="FILE",
                       help="ledger to read (default: the active one, "
                            "per REPRO_LEDGER)")
    p_rep.add_argument("--trace", default=None, metavar="FILE",
                       help="also include convergence tables from this "
                            "trace file")
    p_rep.add_argument("--record", default=None, metavar="FILE",
                       help="also include decision analytics (gain "
                            "histogram, cut-vs-move curve) from this "
                            "recording file")
    p_rep.add_argument("--format", choices=["markdown", "html"],
                       default="markdown")
    p_rep.add_argument("--last", type=int, default=50,
                       help="read at most this many trailing ledger "
                            "entries (default 50)")
    p_rep.add_argument("-o", "--output", default=None,
                       help="write the report here instead of stdout")
    p_rep.set_defaults(fn=_cmd_report)

    p_srv = sub.add_parser(
        "serve", parents=[common],
        help="run the partitioning service daemon (HTTP/JSON; "
             "fingerprint-keyed result cache, request coalescing)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    from .service import DEFAULT_PORT as _DEFAULT_PORT
    p_srv.add_argument("--port", type=int, default=_DEFAULT_PORT,
                       help=f"bind port (default {_DEFAULT_PORT}; 0 picks "
                            "a free port, printed on the readiness line)")
    p_srv.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes per executed portfolio")
    p_srv.add_argument("--cache-size", type=int, default=256,
                       metavar="N",
                       help="result-cache entries before LRU eviction "
                            "(default 256)")
    p_srv.add_argument("--spool-dir", default=None, metavar="DIR",
                       help="directory for served trace files (default: "
                            "a fresh temp dir)")
    p_srv.add_argument("--drain-seconds", type=float, default=30.0,
                       metavar="SEC",
                       help="graceful-shutdown budget: wait this long "
                            "for the in-flight portfolio on "
                            "SIGTERM/SIGINT (default 30)")
    p_srv.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                       help="kernel mode the daemon executes under "
                            "(default: csr; result-cache keys carry the "
                            "mode's cut class, so answers never leak "
                            "across modes that could disagree)")
    p_srv.add_argument("--deadline-ms", type=int, default=300_000,
                       metavar="MS",
                       help="default per-request deadline when the "
                            "request carries no deadline_ms (default "
                            "300000; bounds queue wait + execution)")
    p_srv.add_argument("--max-queued", type=int, default=32, metavar="N",
                       help="execution-lane high-watermark: beyond this "
                            "many queued requests, new work is shed "
                            "with 429 + Retry-After (default 32)")
    p_srv.add_argument("--max-connections", type=int, default=128,
                       metavar="N",
                       help="open-connection cap; excess connections "
                            "get 503 and are closed (default 128)")
    p_srv.add_argument("--read-timeout", type=float, default=30.0,
                       metavar="SEC",
                       help="slow-client defense: budget for reading a "
                            "request head/body once started (default 30)")
    p_srv.add_argument("--job-ttl", type=float, default=3600.0,
                       metavar="SEC",
                       help="finished sweep jobs are evicted after this "
                            "long (default 3600)")
    p_srv.add_argument("--max-jobs", type=int, default=64, metavar="N",
                       help="live sweep-job cap; beyond it POST /sweep "
                            "is shed with 429 (default 64)")
    p_srv.add_argument("--breaker-failures", type=int, default=3,
                       metavar="N",
                       help="consecutive unhealthy executions on one "
                            "netlist before its circuit breaker opens "
                            "and requests degrade (default 3)")
    p_srv.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="SEC",
                       help="seconds an open breaker serves degraded "
                            "answers before probing recovery "
                            "(default 30)")
    p_srv.add_argument("--retries", type=int, default=0, metavar="N",
                       help="per-start retry budget for served "
                            "portfolios (failed/invalid starts only, "
                            "as in 'repro partition')")
    p_srv.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="arm a deterministic FaultPlan on every "
                            "served portfolio (chaos testing; same "
                            "SPEC as 'repro partition --inject-faults')")
    p_srv.add_argument("--trace", default=None, metavar="FILE",
                       help="write a daemon-lifetime trace of every "
                            "request and execution to FILE (Chrome "
                            "trace-event JSONL; spans carry "
                            "request/trace IDs, so 'repro "
                            "trace-summary' regroups them per request)")
    p_srv.add_argument("--access-log", default=None, metavar="FILE",
                       help="append one JSONL record per request "
                            "(request_id, route, status, latency_ms, "
                            "cache/coalesce/degraded flags)")
    p_srv.add_argument("--profile-dir", default=None, metavar="DIR",
                       help="enable continuous profiling: sampled wall "
                            "stacks served at GET /profile and written "
                            "to DIR/profile.collapsed on shutdown, "
                            "plus per-portfolio tracemalloc peaks in "
                            "the ledger")
    p_srv.add_argument("--profile-interval", type=float, default=0.01,
                       metavar="SEC",
                       help="wall-profiler sampling interval "
                            "(default 0.01)")
    p_srv.set_defaults(fn=_cmd_serve)

    p_top = sub.add_parser(
        "top", parents=[common],
        help="live ops console for a running daemon (polls /status)")
    p_top.add_argument("--server", default="127.0.0.1",
                       metavar="HOST[:PORT]",
                       help=f"daemon address (default "
                            f"127.0.0.1:{_DEFAULT_PORT})")
    p_top.add_argument("--interval", type=float, default=2.0,
                       metavar="SEC",
                       help="refresh interval (default 2)")
    p_top.add_argument("--once", action="store_true",
                       help="print one frame and exit (scriptable)")
    p_top.add_argument("--timeout", type=float, default=10.0)
    p_top.add_argument("--no-color", action="store_true",
                       help="plain text even on a TTY")
    p_top.set_defaults(fn=_cmd_top)

    p_cli = sub.add_parser(
        "client", parents=[common],
        help="talk to a running 'repro serve' daemon")
    p_cli.add_argument("action",
                       choices=["health", "version", "metrics",
                                "status", "profile", "partition"])
    p_cli.add_argument("file", nargs="?", default=None,
                       help="netlist (.hgr/.json) for 'partition' "
                            "(sent inline)")
    p_cli.add_argument("--server", default="127.0.0.1",
                       metavar="HOST[:PORT]",
                       help=f"daemon address (default "
                            f"127.0.0.1:{_DEFAULT_PORT})")
    p_cli.add_argument("--timeout", type=float, default=300.0)
    p_cli.add_argument("--retries", type=int, default=2,
                       help="client-side retry budget for connection "
                            "failures and 429 load sheds (default 2)")
    p_cli.add_argument("--deadline-ms", type=int, default=None,
                       metavar="MS",
                       help="per-request deadline forwarded to the "
                            "daemon (default: the server's)")
    p_cli.add_argument("--trace-id", default=None, metavar="ID",
                       help="correlation ID sent as X-Trace-Id; the "
                            "daemon stamps it into every span the "
                            "request produces and its ledger entry")
    p_cli.add_argument("--algorithm", choices=ALGORITHMS, default="mlc")
    p_cli.add_argument("-k", type=int, default=2)
    p_cli.add_argument("--runs", type=int, default=1)
    p_cli.add_argument("--seed", type=int, default=0)
    p_cli.add_argument("-R", "--ratio", type=float, default=0.5)
    p_cli.add_argument("-T", "--threshold", type=int, default=35)
    p_cli.add_argument("--tolerance", type=float, default=0.1)
    p_cli.set_defaults(fn=_cmd_client)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(verbosity=getattr(args, "verbose", 0),
                      level=getattr(args, "log_level", None))
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader (e.g. ``repro trace-summary ... | head``)
        # closed the pipe; suppress the traceback and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
