"""Name-to-algorithm resolution shared by the CLI and the service.

The CLI's ``repro partition`` and the daemon's ``POST /partition`` must
produce *fingerprint-identical* results for the same (netlist, config,
seed) — that is the service's correctness contract, and the only way to
guarantee it is for both to build their runnable from the same code.
This module is that one place: :func:`single_run` maps an algorithm
name plus the paper's knobs to one seeded execution, and
:func:`build_algorithm` wraps it as the :class:`~repro.harness.runner.
Algorithm` shape the portfolio runtime consumes.
"""

from __future__ import annotations

from .baselines.lsmc import lsmc_bipartition
from .baselines.spectral import spectral_bipartition
from .core.config import MLConfig
from .core.ml import ml_bipartition
from .core.quadrisection import ml_kway
from .core.vcycle import ml_vcycle
from .errors import ReproError
from .fm.config import FMConfig
from .fm.engine import fm_bipartition
from .harness.runner import Algorithm
from .hypergraph import Hypergraph

__all__ = ["ALGORITHMS", "single_run", "build_algorithm", "ml_config_for"]

#: Algorithm names accepted by the CLI and the service protocol.
ALGORITHMS = ("mlc", "mlf", "fm", "clip", "lsmc", "spectral")


def ml_config_for(algorithm: str, ratio: float = 0.5, threshold: int = 35,
                  tolerance: float = 0.1, k: int = 0) -> MLConfig:
    """The :class:`MLConfig` a multilevel algorithm name resolves to.

    ``k`` raises the coarsening floor for k-way runs (a hierarchy must
    bottom out with at least k clusters); bipartitioning passes no k
    and keeps the threshold untouched.
    """
    return MLConfig(engine="clip" if algorithm == "mlc" else "fm",
                    matching_ratio=ratio,
                    coarsening_threshold=max(threshold, k),
                    fm=FMConfig(tolerance=tolerance))


def single_run(algorithm: str, hg: Hypergraph, k: int = 2,
               ratio: float = 0.5, threshold: int = 35,
               tolerance: float = 0.1, descents: int = 20,
               seed: int = 0, vcycles: int = 0):
    """One seeded run of ``algorithm`` on ``hg`` with the paper's knobs.

    Raises :class:`ReproError` for unknown names or invalid
    algorithm/k combinations — the shared validation both entry points
    rely on.
    """
    fm_config = FMConfig(tolerance=tolerance)
    if k != 2:
        if algorithm not in ("mlc", "mlf"):
            raise ReproError(
                f"k={k} requires a multilevel algorithm (mlc/mlf), "
                f"got {algorithm!r}")
        config = ml_config_for(algorithm, ratio, threshold, tolerance, k=k)
        return ml_kway(hg, k=k, config=config, seed=seed)
    if algorithm in ("mlc", "mlf"):
        config = ml_config_for(algorithm, ratio, threshold, tolerance)
        if vcycles > 0:
            return ml_vcycle(hg, cycles=vcycles, config=config, seed=seed)
        return ml_bipartition(hg, config=config, seed=seed)
    if algorithm == "fm":
        return fm_bipartition(hg, config=fm_config, seed=seed)
    if algorithm == "clip":
        return fm_bipartition(
            hg, config=FMConfig(clip=True, tolerance=tolerance), seed=seed)
    if algorithm == "lsmc":
        return lsmc_bipartition(hg, descents=descents, config=fm_config,
                                seed=seed)
    if algorithm == "spectral":
        return spectral_bipartition(hg, config=fm_config, seed=seed)
    raise ReproError(f"unknown algorithm {algorithm!r}")


def build_algorithm(algorithm: str, k: int = 2, ratio: float = 0.5,
                    threshold: int = 35, tolerance: float = 0.1,
                    descents: int = 20, vcycles: int = 0) -> Algorithm:
    """An :class:`Algorithm` running :func:`single_run` with these knobs.

    The returned object's ``name`` is the bare algorithm name — what
    the CLI has always recorded in the ledger — so service-run and
    CLI-run portfolios of the same cell aggregate together.
    """
    if algorithm not in ALGORITHMS:
        raise ReproError(f"unknown algorithm {algorithm!r} "
                         f"(expected one of {', '.join(ALGORITHMS)})")
    return Algorithm(
        algorithm,
        lambda h, s: single_run(algorithm, h, k=k, ratio=ratio,
                                threshold=threshold, tolerance=tolerance,
                                descents=descents, seed=s,
                                vcycles=vcycles))
