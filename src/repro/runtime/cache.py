"""Keyed cache of coarsening hierarchies.

Coarsening is the per-start fixed cost of multilevel partitioning: a
multi-start portfolio on one (circuit, config) pair rebuilds the same
kind of hierarchy N times.  The cache builds it once per key and hands
the same (read-only) :class:`Hierarchy` to every start — refinement
only projects and refines, it never mutates the coarse netlists, which
the test suite pins with a deep-equality check.

Keys combine the netlist's identity with the ML configuration and the
hierarchy seed.  ``id(hg)`` keeps two live netlists distinct even when
a generator reuses a name; the structural fields guard against id reuse
after garbage collection.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..core.config import MLConfig
from ..core.ml import Hierarchy, build_hierarchy
from ..errors import ConfigError
from ..hypergraph import Hypergraph
from ..rng import SeedLike

__all__ = ["HierarchyCache", "default_hierarchy_cache"]


class HierarchyCache:
    """A small LRU mapping (netlist, config, seed) -> built hierarchy."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ConfigError(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, Hierarchy]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, hg: Hypergraph, config: Optional[MLConfig] = None,
            seed: SeedLike = 0) -> Hierarchy:
        """The hierarchy for ``(hg, config, seed)``, building on miss."""
        config = config or MLConfig()
        if isinstance(seed, random.Random):
            # A live stream is stateful; caching it would alias state.
            return build_hierarchy(hg, config, rng=seed)
        key = (id(hg), hg.name, hg.num_modules, hg.num_nets, config, seed)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        built = build_hierarchy(hg, config, seed=seed)
        with self._lock:
            self.misses += 1
            self._entries[key] = built
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return built

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide cache used by :func:`repro.runtime.ml_portfolio` when
#: the caller does not supply one.
default_hierarchy_cache = HierarchyCache()
