"""Sweep checkpointing: stream records to JSONL, resume a killed sweep.

The paper's tables are long multi-start sweeps (20+ starts per cell,
many cells); at production scale those runs must survive the machine
dying under them.  :class:`MatrixCheckpoint` makes a
:func:`~repro.harness.run_matrix` sweep resumable at (cell, start)
granularity:

* line 1 is a **header** pinning the sweep configuration (seed, runs,
  algorithm and circuit names) — resuming with a different
  configuration raises :class:`~repro.errors.CheckpointError` instead
  of silently mixing incompatible records;
* every finished :class:`~repro.runtime.RunRecord` is appended as one
  JSON line *as it completes* (flushed and fsynced, so a ``kill -9``
  loses at most the in-flight start);
* a truncated final line — the signature of a mid-write kill — is
  ignored on load; corruption anywhere else raises.

Because every start is an independent pure function of its
position-stable seed, skipping finished (cell, start) pairs and running
the rest reproduces the uninterrupted sweep's outcomes exactly (the
fingerprint contract tested in ``tests/test_faults.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import CheckpointError
from .records import RunRecord

__all__ = ["MatrixCheckpoint"]

_VERSION = 1

CellKey = Tuple[str, str]  # (circuit name, algorithm name)


class MatrixCheckpoint:
    """Append-only JSONL checkpoint of a ``run_matrix`` sweep."""

    def __init__(self, path: Union[str, Path], *, seed: object, runs: int,
                 algorithms: List[str], circuits: List[str]):
        self.path = Path(path)
        self._header = {"kind": "header", "version": _VERSION,
                        "seed": str(seed), "runs": runs,
                        "algorithms": list(algorithms),
                        "circuits": list(circuits)}
        self._done: Dict[CellKey, Dict[int, RunRecord]] = {}
        self.resumed = self.path.exists() and self.path.stat().st_size > 0
        if self.resumed:
            self._load()
        self._fh = open(self.path, "a", encoding="utf-8")
        if not self.resumed:
            self._append(self._header)

    # ------------------------------------------------------------------

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        entries = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entries.append((lineno, json.loads(line)))
            except json.JSONDecodeError:
                if lineno == len(lines):
                    # Killed mid-write: the partial trailing record was
                    # never acknowledged, so dropping it is safe.
                    break
                raise CheckpointError(
                    f"{self.path}: corrupt checkpoint line {lineno}")
        if not entries:
            raise CheckpointError(f"{self.path}: checkpoint has no header")
        _, header = entries[0]
        if header.get("kind") != "header":
            raise CheckpointError(
                f"{self.path}: first line is not a checkpoint header")
        for key in ("version", "seed", "runs", "algorithms", "circuits"):
            if header.get(key) != self._header[key]:
                raise CheckpointError(
                    f"{self.path}: checkpoint {key} {header.get(key)!r} "
                    f"does not match this sweep's {self._header[key]!r}; "
                    "refusing to resume")
        for lineno, entry in entries[1:]:
            if entry.get("kind") != "record":
                raise CheckpointError(
                    f"{self.path}: unexpected entry kind "
                    f"{entry.get('kind')!r} at line {lineno}")
            record = RunRecord.from_json_dict(entry["record"])
            cell = self._done.setdefault(
                (entry["circuit"], entry["algorithm"]), {})
            cell[record.index] = record

    def _append(self, entry: dict) -> None:
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------

    @property
    def finished_starts(self) -> int:
        """Total (cell, start) pairs already on disk."""
        return sum(len(cell) for cell in self._done.values())

    def done(self, circuit: str, algorithm: str) -> Dict[int, RunRecord]:
        """Finished records for one cell: ``{start index: record}``."""
        return dict(self._done.get((circuit, algorithm), {}))

    def write(self, circuit: str, algorithm: str,
              record: RunRecord) -> None:
        """Persist one newly finished record (flushed immediately)."""
        self._append({"kind": "record", "circuit": circuit,
                      "algorithm": algorithm,
                      "record": record.to_json_dict()})
        self._done.setdefault((circuit, algorithm), {})[record.index] = \
            record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "MatrixCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
