"""Parallel multi-start execution runtime.

The paper's whole evaluation is multi-start: N seeded runs per
(algorithm, circuit) cell, reported as min/avg/std cut plus CPU time.
This package turns that start portfolio into a first-class job that can
be executed serially or across a ``fork``-based worker pool with the
identical seed stream (:func:`repro.rng.child_seeds`), per-run fault
isolation, wall-clock budgets, retries, and structured per-run records.

Layers
------
* :mod:`.job`      — :class:`Portfolio`: N seeded starts of one algorithm.
* :mod:`.executor` — :class:`SerialExecutor` / :class:`ProcessExecutor`
  plus the :func:`get_executor` / :func:`execute` entry points.
* :mod:`.records`  — :class:`RunRecord` / :class:`PortfolioResult`,
  aggregating into the harness's ``CellStats``.
* :mod:`.checkpoint` — :class:`MatrixCheckpoint`: JSONL streaming of
  finished records; resume a killed sweep at (cell, start) granularity.
* :mod:`.cache`    — :class:`HierarchyCache`: coarsen once per
  (circuit, config, seed), refine many.
* :mod:`.mlstart`  — :func:`ml_portfolio`: the hierarchy-reusing ML
  multi-start protocol.

Determinism contract: a portfolio's successful cut list is a pure
function of its seed — identical at any worker count — because every
start derives from the same position-stable child-seed sequence and
runs independently.  Only the timing fields differ between executors.
"""

from .cache import HierarchyCache, default_hierarchy_cache
from .checkpoint import MatrixCheckpoint
from .executor import (DEFAULT_COLLECT_TIMEOUT, ProcessExecutor,
                       SerialExecutor, execute, get_executor)
from .job import BatchPortfolio, Job, Portfolio, backoff_delay
from .mlstart import (MLStartAlgorithm, ml_portfolio, ml_reuse_algorithm)
from .records import (FINGERPRINT_DIGEST_LENGTH, FailureReport,
                      PortfolioResult, RunRecord, RETRYABLE_STATUSES,
                      STATUS_FAILED, STATUS_INVALID, STATUS_OK,
                      STATUS_TIMEOUT, fingerprint_digest)

__all__ = [
    "Job",
    "Portfolio",
    "BatchPortfolio",
    "backoff_delay",
    "fingerprint_digest",
    "FINGERPRINT_DIGEST_LENGTH",
    "RunRecord",
    "PortfolioResult",
    "FailureReport",
    "MatrixCheckpoint",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_INVALID",
    "RETRYABLE_STATUSES",
    "DEFAULT_COLLECT_TIMEOUT",
    "SerialExecutor",
    "ProcessExecutor",
    "get_executor",
    "execute",
    "HierarchyCache",
    "default_hierarchy_cache",
    "MLStartAlgorithm",
    "ml_reuse_algorithm",
    "ml_portfolio",
]
