"""Portfolio job descriptions.

A :class:`Portfolio` is the unit the executors run: ``runs`` seeded
starts of one algorithm on one circuit.  Per-start seeds come from
:func:`repro.rng.child_seeds`, the same derivation the serial harness
uses, so the seed sequence — and therefore the cut set — is independent
of how the starts are scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, child_seeds

__all__ = ["Job", "Portfolio"]


@dataclass(frozen=True)
class Job:
    """One start: position in the portfolio plus its derived seed."""

    index: int
    seed: int


@dataclass
class Portfolio:
    """``runs`` seeded starts of ``algorithm`` on ``hg``.

    ``algorithm`` is anything with a ``name`` and an
    ``fn(hg, seed) -> result`` whose result exposes ``cut`` —
    :class:`repro.harness.Algorithm` in practice.

    ``budget_seconds`` bounds each start's wall clock (best effort: the
    process executor stops waiting and kills stragglers at shutdown;
    the serial executor can only flag an overrun after it finishes).
    ``retries`` re-executes raising starts with the same seed; retry is
    for flaky environments, a deterministic crash fails every attempt.
    ``keep_results`` stores each start's full result object on its
    record (needed to recover the best partition, costs memory).
    """

    algorithm: object
    hg: Hypergraph
    runs: int
    seed: SeedLike = 0
    budget_seconds: Optional[float] = None
    retries: int = 0
    keep_results: bool = False

    def __post_init__(self):
        if self.runs < 1:
            raise ConfigError(f"runs must be >= 1, got {self.runs}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ConfigError(
                f"budget_seconds must be > 0, got {self.budget_seconds}")
        if not callable(getattr(self.algorithm, "fn", None)):
            raise ConfigError(
                "algorithm must expose a callable .fn(hg, seed)")

    @property
    def name(self) -> str:
        return getattr(self.algorithm, "name", "anonymous")

    @property
    def fn(self) -> Callable[[Hypergraph, int], object]:
        return self.algorithm.fn

    def jobs(self) -> List[Job]:
        """The start list; position-stable in ``runs`` like the paper's
        10-of-100 prefix protocol."""
        return [Job(index=i, seed=s)
                for i, s in enumerate(child_seeds(self.seed, self.runs))]
