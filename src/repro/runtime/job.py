"""Portfolio job descriptions.

A :class:`Portfolio` is the unit the executors run: ``runs`` seeded
starts of one algorithm on one circuit.  Per-start seeds come from
:func:`repro.rng.child_seeds`, the same derivation the serial harness
uses, so the seed sequence — and therefore the cut set — is independent
of how the starts are scheduled.

Robustness knobs live here too: an armed :class:`~repro.faults.FaultPlan`
(``faults=``), trust-but-verify recomputation of returned solutions
(``verify=``), and bounded exponential retry backoff whose jitter is
drawn from the portfolio's own seed stream (``backoff_seconds=``), so
retry timing — like everything else — is a pure function of the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..errors import ConfigError
from ..hypergraph import Hypergraph
from ..rng import SeedLike, child_seeds, stable_seed

__all__ = ["Job", "Portfolio", "BatchPortfolio", "backoff_delay"]


def backoff_delay(base: float, cap: float, seed: SeedLike, index: int,
                  attempt: int) -> float:
    """Bounded exponential backoff with deterministic jitter.

    ``min(cap, base * 2^(attempt-2)) * U`` where ``U`` in ``[0.5, 1.0)``
    is drawn from an RNG keyed on ``(seed, index, attempt)`` — the same
    derivation style as the child seeds, so every consumer (portfolio
    retries, the service client's reconnect loop) sleeps a schedule
    that is a pure function of its seed.  ``attempt`` 1 (the first
    execution) and a zero base never sleep.
    """
    if attempt <= 1 or base <= 0.0:
        return 0.0
    bounded = min(cap, base * 2.0 ** (attempt - 2))
    rng = random.Random(stable_seed("backoff", str(seed), index, attempt))
    return bounded * (0.5 + 0.5 * rng.random())


@dataclass(frozen=True)
class Job:
    """One start: position in the portfolio plus its derived seed."""

    index: int
    seed: int


@dataclass
class Portfolio:
    """``runs`` seeded starts of ``algorithm`` on ``hg``.

    ``algorithm`` is anything with a ``name`` and an
    ``fn(hg, seed) -> result`` whose result exposes ``cut`` —
    :class:`repro.harness.Algorithm` in practice.

    ``budget_seconds`` bounds each start's wall clock (best effort: the
    process executor stops waiting and kills stragglers at shutdown;
    the serial executor can only flag an overrun after it finishes).
    ``retries`` re-executes raising starts with the same seed; retry is
    for flaky environments, a deterministic crash fails every attempt.
    ``keep_results`` stores each start's full result object on its
    record (needed to recover the best partition, costs memory).

    ``verify`` recomputes each returned solution's cut (and, when a
    balance tolerance float is given, its balance) from scratch with
    the reference objectives; a mismatch demotes the record to
    ``invalid``, which is retried like a failure.  ``faults`` arms a
    :class:`~repro.faults.FaultPlan` on every start.
    ``backoff_seconds`` (base) and ``backoff_cap`` shape the bounded
    exponential backoff slept before each retry.

    ``trace`` controls observability for this portfolio: ``None``/
    ``False`` leaves the ambient tracer alone (no events unless the
    caller already enabled one), ``True`` emits into whatever tracer is
    ambient, and a path string writes the whole run — including events
    shipped back from worker processes — to that file as a Chrome
    trace-event stream.  Tracing never touches the RNG streams, so the
    outcome fingerprint is identical with it on or off.
    """

    algorithm: object
    hg: Hypergraph
    runs: int
    seed: SeedLike = 0
    budget_seconds: Optional[float] = None
    #: Wall-clock deadline for the *whole portfolio*, measured from the
    #: moment an executor starts running it.  Once exhausted, starts
    #: that have not begun are recorded ``timeout`` without running,
    #: in-flight pool workers are killed at shutdown, and the partial
    #: result (every start that did finish) is returned — the
    #: time-budgeted "best answer you have" contract the service's
    #: per-request deadlines ride on.  The serial executor cannot
    #: pre-empt a running start, so serially the deadline only gates
    #: *starting* work.
    deadline_seconds: Optional[float] = None
    retries: int = 0
    keep_results: bool = False
    faults: Optional[object] = None
    verify: Union[bool, float] = False
    backoff_seconds: float = 0.0
    backoff_cap: float = 30.0
    trace: Union[None, bool, str] = None
    #: Decision recording for this portfolio, with the same shape as
    #: ``trace``: ``None``/``False`` leaves the ambient recorder alone,
    #: ``True`` emits into whatever recorder is ambient, and a path
    #: string writes the run's decision stream — per-start blocks
    #: shipped back from worker processes included — to that file (see
    #: :mod:`repro.obs.recorder`).  Like tracing, recording never
    #: touches the RNG streams: same seed, same cuts, on or off.
    record: Union[None, bool, str] = None
    #: Correlation ID for request-scoped tracing.  When set, every span
    #: and instant this portfolio's execution emits — in the parent or
    #: shipped back from forked workers — carries ``trace_id`` in its
    #: args, and the ledger entry records it, so a merged service trace
    #: can be regrouped into one tree per originating request.  Pure
    #: metadata: never touches seeds, scheduling, or the fingerprint.
    trace_id: Optional[str] = None

    def __post_init__(self):
        if self.runs < 1:
            raise ConfigError(f"runs must be >= 1, got {self.runs}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ConfigError(
                f"budget_seconds must be > 0, got {self.budget_seconds}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}")
        if not callable(getattr(self.algorithm, "fn", None)):
            raise ConfigError(
                "algorithm must expose a callable .fn(hg, seed)")
        if self.faults is not None and \
                not callable(getattr(self.faults, "decide", None)):
            raise ConfigError(
                "faults must be a FaultPlan (expose decide(index, attempt))")
        if isinstance(self.verify, float) and not isinstance(self.verify,
                                                             bool):
            if not 0.0 <= self.verify < 1.0:
                raise ConfigError(
                    f"verify tolerance must be in [0, 1), got {self.verify}")
        if self.backoff_seconds < 0:
            raise ConfigError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}")
        if self.backoff_cap <= 0:
            raise ConfigError(
                f"backoff_cap must be > 0, got {self.backoff_cap}")
        if self.trace is not None and not isinstance(self.trace, (bool, str)):
            raise ConfigError(
                f"trace must be None, a bool, or a path string, "
                f"got {type(self.trace).__name__}")
        if self.record is not None and \
                not isinstance(self.record, (bool, str)):
            raise ConfigError(
                f"record must be None, a bool, or a path string, "
                f"got {type(self.record).__name__}")
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise ConfigError(
                f"trace_id must be None or a string, "
                f"got {type(self.trace_id).__name__}")

    @property
    def name(self) -> str:
        return getattr(self.algorithm, "name", "anonymous")

    @property
    def fn(self) -> Callable[[Hypergraph, int], object]:
        return self.algorithm.fn

    def jobs(self) -> List[Job]:
        """The start list; position-stable in ``runs`` like the paper's
        10-of-100 prefix protocol."""
        return [Job(index=i, seed=s)
                for i, s in enumerate(child_seeds(self.seed, self.runs))]

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Sleep before running ``attempt`` of start ``index``.

        Bounded exponential backoff with deterministic jitter:
        ``min(cap, base * 2^(attempt-2)) * U`` where ``U`` in
        ``[0.5, 1.0)`` is drawn from an RNG keyed on the portfolio's
        own seed and the start's identity — the same derivation style
        as the child seeds, so serial and pooled retries sleep the
        same schedule.  ``attempt`` 1 (the first execution) and a zero
        base never sleep.
        """
        return backoff_delay(self.backoff_seconds, self.backoff_cap,
                             self.seed, index, attempt)


@dataclass
class BatchPortfolio(Portfolio):
    """A portfolio whose start list is supplied explicitly.

    The normal :class:`Portfolio` derives its seeds from one parent
    seed; a batch portfolio instead carries a caller-built ``job_list``
    whose seeds may come from *several* parent seeds.  This is the
    runtime primitive behind the service's request batcher: N
    same-netlist/same-config requests with different seeds merge their
    child-seed streams into one executor invocation (one pool spin-up,
    one shared netlist), and the collector's records are split back per
    request afterwards.

    Indices must be exactly ``0..runs-1`` in order — the executors key
    retries, checkpoints, and record ordering on the index, so a batch
    is position-stable the same way a plain portfolio is.
    """

    job_list: Optional[List[Job]] = None

    def __post_init__(self):
        super().__post_init__()
        if not self.job_list:
            raise ConfigError("BatchPortfolio requires a non-empty job_list")
        if len(self.job_list) != self.runs:
            raise ConfigError(
                f"job_list length {len(self.job_list)} != runs {self.runs}")
        for position, job in enumerate(self.job_list):
            if job.index != position:
                raise ConfigError(
                    f"job_list indices must be 0..runs-1 in order; "
                    f"position {position} holds index {job.index}")

    def jobs(self) -> List[Job]:
        return list(self.job_list)
